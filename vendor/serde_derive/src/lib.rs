//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal `serde` whose `Serialize`/`Deserialize` traits convert through a
//! JSON-like `Value` tree. This proc-macro crate derives those traits for
//! the shapes actually used in this repository:
//!
//! * structs with named fields,
//! * tuple structs,
//! * enums with unit, tuple and struct variants (externally tagged, like the
//!   real serde default representation).
//!
//! Generic types are intentionally unsupported (none of the workspace types
//! that derive serde traits are generic); the macro panics with a clear
//! message if it meets one, which surfaces as a compile error at the derive
//! site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Item {
    Struct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derive `serde::Serialize` (the vendored stub trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (the vendored stub trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing (token-tree level; no syn available offline)
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                let _ = toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                return match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Item::Struct { name, fields: parse_named_fields(g.stream()) }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
                    }
                    other => panic!("unsupported struct shape for `{name}`: {other:?}"),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                return match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Item::Enum { name, variants: parse_variants(g.stream()) }
                    }
                    other => panic!("unsupported enum shape for `{name}`: {other:?}"),
                };
            }
            Some(_) => continue,
            None => panic!("expected `struct` or `enum` in derive input"),
        }
    }
}

fn expect_ident(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn reject_generics(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive does not support generic type `{name}`");
        }
    }
}

/// Parse `name: Type, ...` from the body of a braced struct or variant,
/// returning the field names. Attributes and visibility are skipped; the type
/// tokens are consumed up to the next top-level comma (tracking `<`/`>`
/// nesting so `HashMap<K, V>` does not split a field).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = toks.next();
                    let _ = toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    let _ = toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("expected field name, found {tok:?}");
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{id}`, found {other:?}"),
        }
        fields.push(id.to_string());
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = toks.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    let _ = toks.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                _ => {}
            }
            let _ = toks.next();
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant: comma-separated type
/// runs at the top level of the parenthesised group, ignoring attributes.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0i32;
    let mut toks = stream.into_iter().peekable();
    while let Some(tok) = toks.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = toks.next(); // the attribute's bracket group
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                in_segment = true;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes (`#[default]`, doc comments, ...).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                let _ = toks.next();
                let _ = toks.next();
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("expected variant name, found {tok:?}");
        };
        let name = id.to_string();
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                let _ = toks.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                let _ = toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                let _ = toks.next();
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Arr(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Arr(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?})?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __m = __v.as_map().ok_or_else(|| ::serde::Error::new(concat!(\"expected map for struct \", stringify!({name}))))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __a = __v.as_arr().ok_or_else(|| ::serde::Error::new(concat!(\"expected array for tuple struct \", stringify!({name}))))?;\n\
                         if __a.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::new(\"tuple struct arity mismatch\")); }}\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                        // Also accept the tagged form `{"Variant": null}`.
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __a = __payload.as_arr().ok_or_else(|| ::serde::Error::new(\"expected array payload\"))?;\n\
                                 if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::new(\"variant arity mismatch\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?})?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __m = __payload.as_map().ok_or_else(|| ::serde::Error::new(\"expected map payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::new(format!(concat!(\"unknown unit variant {{}} of \", stringify!({name})), __other))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::new(format!(concat!(\"unknown variant {{}} of \", stringify!({name})), __other))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::new(concat!(\"expected string or singleton map for enum \", stringify!({name})))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
