//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the only API the workspace uses: `crossbeam::channel::unbounded`,
//! an unbounded multi-producer multi-consumer channel. The implementation is
//! a `Mutex<VecDeque>` plus a `Condvar` — simple, correct, and fast enough
//! for the coarse-grained jobs (whole sweep batches, whole workload runs)
//! this workspace pushes through it.

pub mod channel {
    //! Unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel. Cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded channel. Cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect. Taking the queue lock first closes
                // the lost-wakeup window against a receiver that has already
                // checked `senders` under the lock but not yet parked on the
                // condvar — the notify cannot fire inside that gap.
                let guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                drop(guard);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one is available or every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn workers_drain_shared_receiver() {
            let (tx, rx) = unbounded::<usize>();
            let total = std::sync::Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let total = std::sync::Arc::clone(&total);
                    std::thread::spawn(move || {
                        while let Ok(v) = rx.recv() {
                            total.fetch_add(v, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(Ordering::Relaxed), (0..100).sum());
        }
    }
}
