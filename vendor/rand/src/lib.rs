//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements exactly what the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over float and integer
//! ranges, and [`distributions::Uniform`] sampled through
//! [`distributions::Distribution`]. The generator is splitmix64 — not
//! cryptographic, but statistically solid and fully deterministic from its
//! seed, which is all the synthetic data generator needs.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64 (deterministic from its seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod distributions {
    //! Distribution sampling.

    use super::RngCore;
    use std::ops::Range;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: Copy + PartialOrd> Uniform<X> {
        /// Uniform over `[low, high)`.
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + rng.next_f64() * (self.high - self.low)
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            super::SampleRange::sample_single(Range { start: self.low, end: self.high }, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
