//! Offline stand-in for the real `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the small slice of serde the workspace actually uses: a
//! [`Serialize`]/[`Deserialize`] trait pair that converts through a JSON-like
//! [`Value`] tree, plus derive macros re-exported from the sibling
//! `serde_derive` stub. The companion `serde_json` stub prints and parses the
//! [`Value`] tree as real JSON, so serialisation round-trips behave exactly
//! like the code expects.
//!
//! The representation matches serde's default externally-tagged JSON form for
//! the shapes used here (named structs, tuple structs, unit / newtype / tuple
//! / struct enum variants), so swapping the real serde back in later will not
//! change any on-disk format.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation all serialisation
/// goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics are carried as `f64`, like JavaScript).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Error produced by deserialisation.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Create an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Look up a key in an object, with a descriptive error on absence.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{key}`")))
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::new(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(f64, f32, usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_string())
    }
}

impl Deserialize for std::borrow::Cow<'static, str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| std::borrow::Cow::Owned(s.to_string()))
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr().ok_or_else(|| Error::new("expected array"))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_arr().ok_or_else(|| Error::new("expected array for tuple"))?;
                let expected = [$($i),+].len();
                if a.len() != expected {
                    return Err(Error::new("tuple length mismatch"));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}
