//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`] and [`Bencher::iter`] —
//! backed by a simple wall-clock harness: each benchmark is warmed up once
//! and then timed over enough iterations to fill a short measurement window,
//! reporting the mean time per iteration. No statistics, no HTML reports,
//! but `cargo bench` runs and prints meaningful numbers offline.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then time batches until the window is filled.
        black_box(f());
        let window = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn report(name: &str, b: &Bencher) {
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {name:<56} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub harness has no sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub uses a fixed window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into_benchmark_id().label), &b);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Close the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Things accepted as benchmark ids by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Convert to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
