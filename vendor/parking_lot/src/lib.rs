//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (the
//! only part of parking_lot this workspace uses): `lock()` returns the guard
//! directly, recovering from poisoning instead of propagating it.

/// A poison-free mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
