//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / collection / oneof
//! strategies, and the `proptest!`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_oneof!` macros. Cases are sampled from a deterministic splitmix64
//! stream seeded per test function, so failures are reproducible run to run.
//! There is no shrinking: a failing case reports its index and message.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic random stream backing every strategy.

    /// splitmix64 stream, seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, func }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        strategy: S,
        func: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.func)(self.strategy.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Box a strategy for use in heterogeneous unions.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random booleans.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Half-open range of lengths for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub use strategy::Strategy;

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::strategy::{boxed, Just, Map, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` block is run
/// over many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}` (both {:?})",
                stringify!($left),
                stringify!($right),
                __left
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
