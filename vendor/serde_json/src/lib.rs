//! Offline stand-in for the real `serde_json` crate.
//!
//! Prints and parses real JSON over the vendored `serde` stub's
//! [`serde::Value`] tree. Floating-point numbers are printed with Rust's
//! shortest round-trippable representation, so `to_string` → `from_str`
//! round-trips reproduce every `f64` bit-exactly (NaN and infinities, which
//! JSON cannot represent, serialise to `null` like the real serde_json).

pub use serde::Value;

/// Error produced by JSON printing or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialise `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialise `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => print_number(*n, out),
        Value::Str(s) => print_string(s, out),
        Value::Arr(items) => {
            print_seq(items.iter(), out, indent, depth, ('[', ']'), |item, out, indent, depth| {
                print_value(item, out, indent, depth);
            })
        }
        Value::Map(entries) => print_seq(
            entries.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, val), out, indent, depth| {
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(val, out, indent, depth);
            },
        ),
    }
}

fn print_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut print_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, Option<usize>, usize),
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        print_item(item, out, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(brackets.1);
}

fn print_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 {
        out.push_str(if n.is_sign_negative() { "-0.0" } else { "0" });
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Whole numbers print without a fractional part, like serde_json ints.
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest round-trippable float formatting.
        out.push_str(&format!("{n}"));
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one UTF-8 character from a bounded window (a
                    // char is at most four bytes; validating the whole rest
                    // of the input per character would be quadratic).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let s = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(Error::new("invalid utf-8 in string")),
                    };
                    let c = s.chars().next().ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("k\"means".into())),
            ("f".into(), Value::Num(0.99985)),
            ("n".into(), Value::Num(256.0)),
            ("flags".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        for text in [
            to_string(&Wrapped(v.clone())).unwrap(),
            to_string_pretty(&Wrapped(v.clone())).unwrap(),
        ] {
            let back = parse(&text).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789012345, -0.0, 2.0f64.powi(60)] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} printed as {text}");
        }
    }

    struct Wrapped(Value);
    impl serde::Serialize for Wrapped {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
