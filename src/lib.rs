//! # merging-phases — reproduction of the ICPP 2011 merging-phases study
//!
//! This facade crate re-exports the whole workspace so applications can depend
//! on a single crate:
//!
//! * [`model`] — the extended Amdahl/Hill–Marty speedup models (the paper's
//!   primary contribution): classic Amdahl, symmetric/asymmetric Hill–Marty,
//!   the merging-phase extension (Eq. 4/5), and the communication-aware model
//!   (Eq. 6–8).
//! * [`par`] — the fork-join primitives and the three reduction strategies
//!   (serial linear, logarithmic tree, privatised parallel).
//! * [`runtime`] — the phase-graph execution runtime: workloads declare
//!   their phase structure ([`runtime::PhaseGraph`]) and a scheduler executes
//!   it with automatic per-phase, per-thread instrumentation.
//! * [`profile`] — phase instrumentation, streaming record sinks and
//!   extraction of the model parameters (`f`, `fcon`, `fred`, `fored`) from
//!   instrumented runs.
//! * [`workloads`] — MineBench-style clustering workloads (kmeans, fuzzy
//!   c-means, HOP, the kd-tree scenario) declared as phased workloads over a
//!   synthetic data generator.
//! * [`cmpsim`] — an abstract CMP/ACMP timing simulator (cores with
//!   area-dependent performance, two-level cache cost model, 2-D-mesh NoC)
//!   standing in for the SESC simulator used by the paper.
//! * [`dse`] — a parallel, cache-aware design-space exploration engine:
//!   cartesian scenario spaces over every model axis, pluggable evaluation
//!   backends (analytic, communication-aware, simulation), a sharded work
//!   queue with memoisation, top-k / per-axis / Pareto analysis and
//!   streaming JSON/CSV export. The paper's figure sweeps run through it.
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every table and figure.
//!
//! ```
//! use merging_phases::prelude::*;
//!
//! let app = AppParams::table2_kmeans();
//! let model = ExtendedModel::new(app, GrowthFunction::Linear, PerfModel::Pollack);
//! let chip = ChipBudget::paper_default();
//! let best = best_symmetric(&model, chip).unwrap();
//! assert!(best.speedup > 1.0);
//! ```

#![warn(missing_docs)]

pub use mp_cmpsim as cmpsim;
pub use mp_dse as dse;
pub use mp_model as model;
pub use mp_par as par;
pub use mp_profile as profile;
pub use mp_runtime as runtime;
pub use mp_workloads as workloads;

/// Convenience prelude re-exporting the most commonly used items from every
/// workspace crate.
pub mod prelude {
    pub use mp_model::prelude::*;
    pub use mp_par::{ReductionStrategy, ThreadPool};
    pub use mp_profile::{PhaseKind, Profiler, RunProfile, StreamingExtractor};
    pub use mp_runtime::prelude::*;
    pub use mp_workloads::prelude::*;

    pub use mp_cmpsim::prelude::*;

    pub use mp_dse::{
        AnalyticBackend, ChipSpec, CommBackend, CostAxis, Engine, EvalBackend, EvalCache,
        EvalRecord, MeasuredBackend, ScenarioSpace, SimBackend, SweepConfig, SweepResult,
    };
}
