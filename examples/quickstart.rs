//! Quickstart: evaluate the merging-phase speedup model for one application.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Takes the kmeans parameters of the paper's Table II, compares Amdahl's Law
//! against the extended model on a 256-BCE chip, and reports the best
//! symmetric and asymmetric designs under both assumptions.

use merging_phases::model::explore;
use merging_phases::model::hill_marty;
use merging_phases::prelude::*;

fn main() {
    let params = AppParams::table2_kmeans();
    let budget = ChipBudget::paper_default();

    println!(
        "application: {} (f = {}, fcon = {:.0}%, fred = {:.0}%, fored = {:.0}%)",
        params.name,
        params.f,
        params.split.fcon * 100.0,
        params.split.fred * 100.0,
        params.fored * 100.0,
    );
    println!();

    // What plain Amdahl's Law promises on 256 unit cores.
    let amdahl = amdahl_speedup(params.f, 256.0).unwrap();
    println!("Amdahl's Law, 256 unit cores:            speedup = {amdahl:7.1}");

    // What the extended model (linear reduction growth) predicts instead.
    let model = ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
    let extended = model.speedup_unit_cores(256.0).unwrap();
    println!("with merging-phase overhead, 256 cores:  speedup = {extended:7.1}");
    println!("overestimation factor:                   {:.2}x", amdahl / extended);
    println!();

    // Best symmetric design under each model.
    let hm_best = budget
        .power_of_two_core_sizes()
        .into_iter()
        .map(|r| {
            let d = SymmetricDesign::new(budget, r).unwrap();
            (r, hill_marty::symmetric_speedup(params.f, &d, &PerfModel::Pollack).unwrap())
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let ext_best = explore::best_symmetric(&model, budget).unwrap();
    println!("best symmetric CMP (Hill-Marty):  r = {:>3}  speedup = {:7.1}", hm_best.0, hm_best.1);
    println!(
        "best symmetric CMP (extended):    r = {:>3}  speedup = {:7.1}   ({} cores)",
        ext_best.area, ext_best.speedup, ext_best.cores
    );

    // Best asymmetric design under the extended model.
    let (small_r, asym_best) = explore::best_asymmetric(&model, budget).unwrap();
    println!(
        "best asymmetric CMP (extended):   rl = {:>3} r = {:>2}  speedup = {:7.1}",
        asym_best.area, small_r, asym_best.speedup
    );
    println!("ACMP advantage over CMP:          {:.2}x", asym_best.speedup / ext_best.speedup);
}
