//! Run instrumented parallel k-means on synthetic data, extract the paper's
//! model parameters from the measured phase profile, and feed them back into
//! the analytical model — the full pipeline the paper's characterisation
//! section describes, on real threads.
//!
//! ```text
//! cargo run --release --example clustering_profile -- [points] [dims] [clusters]
//! cargo run --release --example clustering_profile -- 17695 9 8
//! ```

use merging_phases::model::explore::best_symmetric;
use merging_phases::prelude::*;
use merging_phases::profile::extract_params;
use merging_phases::workloads::runner::{default_thread_sweep, run_sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let points: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(17_695);
    let dims: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(9);
    let clusters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let spec = DatasetSpec::new(points, dims, clusters, 0x5EED);
    println!("generating data set: N = {points}, D = {dims}, C = {clusters}");
    let data = spec.generate();

    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let sweep = default_thread_sweep(max_threads.min(16));
    println!("running instrumented kmeans at thread counts {sweep:?}\n");

    let job = ClusteringWorkload::kmeans(data);
    let profiles = run_sweep(&job, &sweep);

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "threads", "total (ms)", "speedup", "serial (us)", "serial growth"
    );
    let base_total = profiles[0].total_time();
    let base_serial = profiles[0].serial_time();
    for p in &profiles {
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>14.1} {:>14.2}",
            p.threads,
            p.total_time() * 1e3,
            base_total / p.total_time(),
            p.serial_time() * 1e6,
            p.serial_time() / base_serial,
        );
    }

    let extracted = extract_params(&profiles, &GrowthFunction::Linear)
        .expect("sweep contains a single-thread run");
    println!("\nextracted parameters (paper Table II format):");
    println!("  f      = {:.6}", extracted.f);
    println!("  serial = {:.4} %", extracted.serial_fraction * 100.0);
    println!("  fcon   = {:.1} % of serial", extracted.fcon * 100.0);
    println!("  fred   = {:.1} % of serial", extracted.fred * 100.0);
    println!("  fored  = {:.1} %", extracted.fored * 100.0);

    let params = extracted.to_app_params();
    let model = ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
    let budget = ChipBudget::paper_default();
    let best = best_symmetric(&model, budget).unwrap();
    let amdahl = amdahl_speedup(params.f, 256.0).unwrap();
    println!("\nmodel projection to a 256-BCE chip:");
    println!("  Amdahl's Law @ 256 unit cores : {amdahl:8.1}");
    println!(
        "  extended model, best design   : {:8.1}  (r = {} BCE, {} cores)",
        best.speedup, best.area, best.cores
    );
}
