//! Run a clustering phase program on the abstract CMP timing simulator and
//! report per-phase cycles — the stand-in for the paper's SESC experiments.
//!
//! ```text
//! cargo run --release --example simulate_machine -- [kmeans|fuzzy|hop] [cores]
//! cargo run --release --example simulate_machine -- hop 16
//! ```

use merging_phases::cmpsim::program::ReductionKind;
use merging_phases::cmpsim::{
    fuzzy_program, hop_program, kmeans_program, simulate, Machine, WorkloadShape,
};
use merging_phases::profile::PhaseKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args.first().map(String::as_str).unwrap_or("kmeans").to_string();
    let cores: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    let program = match app.as_str() {
        "kmeans" => kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear),
        "fuzzy" => fuzzy_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear),
        "hop" => hop_program(&WorkloadShape::hop_default(), ReductionKind::SerialLinear, 4),
        other => {
            eprintln!("unknown application `{other}` (expected kmeans, fuzzy or hop)");
            std::process::exit(1);
        }
    };

    println!("simulating `{app}` on the Table I machine at 1 and {cores} cores\n");

    for &c in &[1usize, cores] {
        let machine = Machine::table1(c);
        let report = simulate(&program, &machine);
        println!("--- {c} core(s): total {:.3e} cycles", report.total_cycles());
        for kind in [
            PhaseKind::Parallel,
            PhaseKind::SerialConstant,
            PhaseKind::Reduction,
            PhaseKind::Communication,
        ] {
            let cycles = report.cycles_in(kind);
            if cycles > 0.0 {
                println!(
                    "    {:<14} {:>12.3e} cycles  ({:5.2} % of total)",
                    kind.name(),
                    cycles,
                    100.0 * cycles / report.total_cycles()
                );
            }
        }
        println!(
            "    serial section (constant + merge) = {:.4} % of total\n",
            100.0 * report.serial_cycles() / report.total_cycles()
        );
    }

    let base = simulate(&program, &Machine::table1(1)).total_cycles();
    let scaled = simulate(&program, &Machine::table1(cores)).total_cycles();
    println!("speedup at {cores} cores: {:.2}x", base / scaled);
}
