//! Large-scale design-space exploration through the `mp-dse` engine.
//!
//! Sweeps more than 10⁵ (application × machine × strategy) scenarios through
//! the analytic extended-model backend on all available cores, then prints
//! the best designs, the Pareto frontier of speedup against core count, and
//! re-sweeps to demonstrate the memoisation cache.
//!
//! ```text
//! cargo run --release --example dse_sweep
//! ```

use merging_phases::dse::prelude::*;
use merging_phases::prelude::*;

fn main() {
    // Eleven applications: the eight Table III classes plus Table II's
    // measured kmeans / fuzzy / hop parameter sets.
    let apps = AppParams::paper_catalog();

    // A fine symmetric grid (512 core sizes), an asymmetric grid, three
    // budgets, four growth laws and two performance models: > 10⁵ scenarios.
    let space = ScenarioSpace::new()
        .with_apps(apps)
        .with_budgets(vec![256.0, 512.0, 1024.0])
        .clear_designs()
        .add_symmetric_grid((0..512).map(|i| 256f64.powf(i as f64 / 511.0)))
        .add_asymmetric_grid([1.0, 2.0, 4.0, 8.0], [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0])
        .with_growths(vec![
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Logarithmic,
            GrowthFunction::Superlinear(1.55),
        ])
        .with_perfs(vec![PerfModel::Pollack, PerfModel::Power(0.75)]);
    assert!(space.len() > 100_000, "space holds {} scenarios", space.len());

    let engine = Engine::with_all_cores();
    let result = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
    println!(
        "swept {} scenarios ({} valid) on {} thread(s) in {:.3}s ({:.0}/s)",
        result.stats.scenarios,
        result.stats.valid,
        result.stats.threads,
        result.stats.elapsed_seconds,
        result.stats.scenarios as f64 / result.stats.elapsed_seconds.max(1e-9),
    );

    println!("\ntop 5 designs:");
    for (rank, record) in top_k(&result.records, 5).iter().enumerate() {
        let s = space.scenario(record.index);
        println!(
            "  {}. speedup {:>8.2}  {} under {} BCE ({} cores), {} growth, {}",
            rank + 1,
            record.speedup,
            match s.design {
                ChipSpec::Symmetric { r } => format!("symmetric r={r:.2}"),
                ChipSpec::Asymmetric { r, rl } => format!("asymmetric r={r:.0} rl={rl:.0}"),
            },
            s.budget.total_bce(),
            record.cores.round(),
            s.growth.name(),
            s.perf.name(),
        );
    }

    let frontier = pareto_frontier(&result.records, CostAxis::Cores);
    println!("\nPareto frontier (speedup vs cores): {} points", frontier.len());
    for record in frontier.iter().take(8) {
        println!("  {:>8.2} cores -> speedup {:>8.2}", record.cores, record.speedup);
    }

    // A second sweep is answered entirely from the memoisation cache and
    // reproduces the first bit-for-bit.
    let again = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
    let identical = result
        .records
        .iter()
        .zip(again.records.iter())
        .all(|(a, b)| a.speedup.to_bits() == b.speedup.to_bits());
    println!(
        "\nre-sweep: {} cache hits, {} misses in {:.3}s — bit-identical: {identical}",
        again.stats.cache_hits, again.stats.cache_misses, again.stats.elapsed_seconds,
    );
}
