//! Design-space exploration for a chosen application class (Figures 4/5 style).
//!
//! ```text
//! cargo run --release --example design_space -- [f] [fcon%] [fored%]
//! cargo run --release --example design_space -- 0.99 60 80
//! ```
//!
//! Prints the symmetric speedup curve (per-core area sweep) under linear and
//! logarithmic reduction growth, and the asymmetric curves (large-core area
//! sweep) for small-core areas 1, 4 and 16 BCE.

use merging_phases::model::explore::{asymmetric_curve, symmetric_curve};
use merging_phases::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let f: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.99);
    let fcon_pct: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60.0);
    let fored_pct: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80.0);

    let params = AppParams::new("custom", f, fcon_pct / 100.0, fored_pct / 100.0, 0.0)
        .expect("invalid parameters: f and fcon% must be fractions, fored% non-negative");
    let budget = ChipBudget::paper_default();

    println!(
        "class: f = {f}, fcon = {fcon_pct}% of serial, fored = {fored_pct}%  (256-BCE chip, perf(r) = sqrt(r))\n"
    );

    println!("symmetric CMPs — speedup vs per-core area r:");
    println!("{:>8} {:>8} {:>12} {:>12}", "r", "cores", "linear", "log");
    let linear = ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
    let log = ExtendedModel::new(params.clone(), GrowthFunction::Logarithmic, PerfModel::Pollack);
    let lin_curve = symmetric_curve(&linear, budget, "linear").unwrap();
    let log_curve = symmetric_curve(&log, budget, "log").unwrap();
    for (a, b) in lin_curve.points.iter().zip(log_curve.points.iter()) {
        println!("{:>8} {:>8} {:>12.1} {:>12.1}", a.area, a.cores, a.speedup, b.speedup);
    }
    let peak = lin_curve.peak().unwrap();
    println!("--> peak (linear growth): speedup {:.1} at r = {}\n", peak.speedup, peak.area);

    println!("asymmetric CMPs (linear growth) — speedup vs large-core area rl:");
    print!("{:>8}", "rl");
    for r in [1.0, 4.0, 16.0] {
        print!(" {:>11}", format!("r={r}"));
    }
    println!();
    let curves: Vec<_> = [1.0, 4.0, 16.0]
        .iter()
        .map(|&r| asymmetric_curve(&linear, budget, r, format!("r={r}")).unwrap())
        .collect();
    for point in &curves[0].points {
        print!("{:>8}", point.area);
        for curve in &curves {
            match curve.points.iter().find(|p| p.area == point.area) {
                Some(p) => print!(" {:>11.1}", p.speedup),
                None => print!(" {:>11}", "-"),
            }
        }
        println!();
    }
    let best = curves
        .iter()
        .filter_map(|c| c.peak().map(|p| (c.label.clone(), p)))
        .max_by(|a, b| a.1.speedup.partial_cmp(&b.1.speedup).unwrap())
        .unwrap();
    println!(
        "--> best asymmetric design: {} with rl = {} (speedup {:.1})",
        best.0, best.1.area, best.1.speedup
    );
}
