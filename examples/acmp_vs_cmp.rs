//! Symmetric vs asymmetric CMPs under growing merging overhead, including the
//! communication-aware model (the narrative of the paper's Sections V-D/V-E).
//!
//! ```text
//! cargo run --release --example acmp_vs_cmp
//! ```

use merging_phases::model::explore::{
    asymmetric_curve_comm, best_asymmetric, best_symmetric, symmetric_curve_comm,
};
use merging_phases::model::params::AppClass;
use merging_phases::prelude::*;

fn main() {
    let budget = ChipBudget::paper_default();

    println!("256-BCE chip, perf(r) = sqrt(r), linear reduction growth\n");
    println!(
        "{:<28} {:>10} {:>8} {:>10} {:>8} {:>8} {:>10}",
        "application class", "CMP best", "@r", "ACMP best", "@rl", "r", "advantage"
    );
    for class in AppClass::table3_all() {
        let model = ExtendedModel::new(class.params(), GrowthFunction::Linear, PerfModel::Pollack);
        let sym = best_symmetric(&model, budget).unwrap();
        let (small_r, asym) = best_asymmetric(&model, budget).unwrap();
        println!(
            "{:<28} {:>10.1} {:>8} {:>10.1} {:>8} {:>8} {:>9.2}x",
            class.name(),
            sym.speedup,
            sym.area,
            asym.speedup,
            asym.area,
            small_r,
            asym.speedup / sym.speedup
        );
    }

    // The communication-aware refinement for the non-embarrassingly-parallel,
    // moderate-constant class (paper Figure 7).
    let class = AppClass {
        embarrassingly_parallel: false,
        high_constant: false,
        high_reduction_overhead: true,
    };
    let comm = CommModel::paper_figure7(class.params()).unwrap();
    let sym = symmetric_curve_comm(&comm, budget, "symmetric").unwrap();
    let sym_peak = sym.peak().unwrap();
    let asym_peaks: Vec<(f64, f64)> = [1.0, 4.0, 16.0]
        .iter()
        .map(|&r| {
            let c = asymmetric_curve_comm(&comm, budget, r, format!("r={r}")).unwrap();
            (r, c.peak().unwrap().speedup)
        })
        .collect();

    println!("\nwith the 2-D-mesh communication model ({}):", class.name());
    println!("  best symmetric CMP : speedup {:.1} at r = {}", sym_peak.speedup, sym_peak.area);
    for (r, s) in &asym_peaks {
        println!("  best ACMP (r = {r:>2})  : speedup {s:.1}");
    }
    let best_asym = asym_peaks.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    println!(
        "  ACMP advantage      : {:.2}x  (compare ~2x under constant-serial Amdahl)",
        best_asym / sym_peak.speedup
    );
}
