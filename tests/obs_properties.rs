//! Property tests of the mp-obs metrics layer: concurrent counter traffic is
//! never lost (a snapshot equals the sum of every thread's increments),
//! histogram merging is associative and order-independent, and the
//! percentile estimators stay monotone and bracketed by the data.

use mp_obs::hist::{percentile_of_sorted, HistogramSnapshot, LATENCY_BOUNDS_MS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads hammering one counter (and one gauge) concurrently lose
    /// nothing: the snapshot equals the arithmetic sum. The registry is
    /// process-global, so the expectation is a *delta* against the value the
    /// series held when the case started.
    #[test]
    fn concurrent_counter_traffic_is_never_lost(
        threads in 2usize..8,
        increments in 1u64..400,
    ) {
        let counter = mp_obs::counter("obs_prop_counter");
        let gauge = mp_obs::gauge("obs_prop_gauge");
        let before = mp_obs::registry().snapshot();
        let before_count = before.counter("obs_prop_counter").unwrap_or(0);
        let before_level = before.gauge("obs_prop_gauge").unwrap_or(0);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..increments {
                        counter.inc();
                        gauge.add(2);
                        gauge.sub(1);
                    }
                });
            }
        });

        let after = mp_obs::registry().snapshot();
        prop_assert_eq!(
            after.counter("obs_prop_counter").unwrap() - before_count,
            threads as u64 * increments,
        );
        prop_assert_eq!(
            after.gauge("obs_prop_gauge").unwrap() - before_level,
            (threads as u64 * increments) as i64,
        );
    }

    /// Merging histogram snapshots is associative and order-independent:
    /// however a value stream is partitioned and regrouped, the merged
    /// buckets are identical and the total matches a single-pass build.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0.01f64..10_000.0, 0..40),
        b in proptest::collection::vec(0.01f64..10_000.0, 0..40),
        c in proptest::collection::vec(0.01f64..10_000.0, 0..40),
    ) {
        let snap = |values: &[f64]| HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, values);

        // (a ⊕ b) ⊕ c
        let mut left = snap(&a);
        left.merge(&snap(&b));
        left.merge(&snap(&c));
        // a ⊕ (b ⊕ c)
        let mut right_tail = snap(&b);
        right_tail.merge(&snap(&c));
        let mut right = snap(&a);
        right.merge(&right_tail);

        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert_eq!(&left.bounds, &right.bounds);
        // Bucket counts are exact; the sums may associate differently as
        // floats, so they only need to agree to rounding.
        prop_assert!((left.sum - right.sum).abs() <= 1e-9 * left.sum.abs().max(1.0));

        // Both equal the single-pass build over the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let whole = snap(&all);
        prop_assert_eq!(&left.counts, &whole.counts);
        prop_assert_eq!(left.count(), all.len() as u64);
    }

    /// The exact (sorted-sample) percentile is monotone in the fraction,
    /// bracketed by the extremes, and always returns an actual sample.
    #[test]
    fn exact_percentiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(0.0f64..1e6, 1..200),
        f_lo in 0.0f64..=1.0,
        f_hi in 0.0f64..=1.0,
    ) {
        let mut values = values;
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let (lo, hi) = if f_lo <= f_hi { (f_lo, f_hi) } else { (f_hi, f_lo) };
        let p_lo = percentile_of_sorted(&values, lo);
        let p_hi = percentile_of_sorted(&values, hi);
        prop_assert!(p_lo <= p_hi, "p({lo}) = {p_lo} > p({hi}) = {p_hi}");
        prop_assert!(*values.first().unwrap() <= p_lo && p_hi <= *values.last().unwrap());
        prop_assert!(values.contains(&p_lo) && values.contains(&p_hi));
    }

    /// The bucketed percentile estimate always lands on a bucket boundary
    /// that *covers* the exact percentile: the histogram may round a value
    /// up to its bucket's upper bound, but never past the next boundary.
    #[test]
    fn bucketed_percentiles_cover_the_exact_ones(
        // Stay below the last finite bound: the +inf bucket has no upper
        // bound to return, so values beyond it are legitimately clamped.
        values in proptest::collection::vec(0.01f64..8000.0, 1..200),
        fraction in 0.0f64..=1.0,
    ) {
        let mut values = values;
        let histogram = HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, &values);
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let exact = percentile_of_sorted(&values, fraction);
        let bucketed = histogram.percentile(fraction);
        prop_assert!(bucketed >= exact, "bucketed {bucketed} under-reports exact {exact}");
        // The estimate is the upper bound of the covering bucket, so no
        // smaller boundary may separate it from the exact value.
        let gap = LATENCY_BOUNDS_MS.iter().any(|&b| exact <= b && b < bucketed);
        prop_assert!(!gap, "a tighter bound separates exact {exact} from bucketed {bucketed}");
    }
}

/// Sampled gauges re-read their closure at every snapshot, so consecutive
/// snapshots observe the live value, not the value at registration time.
#[test]
fn sampled_gauges_track_their_source() {
    use std::sync::atomic::{AtomicI64, Ordering};
    static SOURCE: AtomicI64 = AtomicI64::new(7);
    mp_obs::registry().gauge_sampled("obs_prop_sampled", || SOURCE.load(Ordering::Relaxed));
    assert_eq!(mp_obs::registry().snapshot().gauge("obs_prop_sampled"), Some(7));
    SOURCE.store(42, Ordering::Relaxed);
    assert_eq!(mp_obs::registry().snapshot().gauge("obs_prop_sampled"), Some(42));
}
