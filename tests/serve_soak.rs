//! Concurrency soak of the reactor server: many pipelined clients of mixed
//! queries against 1- and 4-shard servers, with injected slow-reader and
//! mid-request-disconnect clients, under a hard wall-clock deadline (a
//! wedged reactor fails fast instead of hanging CI). Results must stay
//! bit-identical to a direct `Engine::sweep`, the server must stay healthy
//! after every fault, and — measured with the counting allocator installed
//! as this binary's global allocator — serving a sweep to a slow reader
//! must not buffer the answer: peak live memory stays bounded by the
//! write-side watermarks, far below the full response size.

use std::io::{Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use merging_phases::dse::prelude::*;
use merging_phases::model::params::AppParams;
use mp_bench::alloc_track::{self, CountingAllocator};
use mp_serve::prelude::*;

/// Count every allocation in this test binary, including the in-process
/// server's, so the soak can assert *live-memory* bounds, not just success.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The tests measure global allocator state; run their bodies one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

/// Run `body` under a hard deadline: a deadlock (stuck connection, wedged
/// loop) fails the test in `seconds` instead of hanging the whole suite.
fn with_deadline<F>(seconds: u64, body: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(seconds))
        .expect("soak scenario exceeded its deadline: stuck connection or wedged reactor");
    worker.join().expect("soak scenario panicked");
}

fn soak_space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .with_budgets(vec![64.0, 256.0])
        .clear_designs()
        .add_symmetric_grid((0..40).map(|i| 1.0 + i as f64 * 3.0))
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
        .with_growths(vec![
            merging_phases::model::growth::GrowthFunction::Linear,
            merging_phases::model::growth::GrowthFunction::Logarithmic,
        ])
}

fn assert_identical(got: &[EvalRecord], want: &[EvalRecord], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: record count");
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.index, b.index, "{what}: order");
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{what}: speedup @{}", a.index);
        assert_eq!(a.cores.to_bits(), b.cores.to_bits(), "{what}: cores @{}", a.index);
        assert_eq!(a.area.to_bits(), b.area.to_bits(), "{what}: area @{}", a.index);
    }
}

/// One pipelined worker: three waves of mixed queries, each wave written
/// back-to-back before any response is read; every answer verified bitwise.
fn pipelined_worker(endpoint: &Endpoint, space: &ScenarioSpace, truth: &SweepResult, id: usize) {
    let mut client = Client::connect(endpoint).unwrap();
    let n = space.len();
    let spec = || SpaceSpec::Explicit(space.clone());
    for wave in 0..3 {
        let window = ((id * 131 + wave * 17) % n)..n.min((id * 131 + wave * 17) % n + n / 3 + 1);
        let requests = vec![
            Request::Sweep { space: spec(), start: 0, end: n, chunk: 96 },
            Request::Ping,
            Request::Sweep { space: spec(), start: window.start, end: window.end, chunk: 0 },
            Request::TopK { space: spec(), k: 7 },
            Request::Pareto { space: spec(), cost: CostAxis::Cores },
            Request::Stats,
        ];
        let responses = client.call_pipelined(requests).unwrap();
        assert_eq!(responses.len(), 6);
        let [full, pong, ranged, top, pareto, stats] =
            <[Vec<Response>; 6]>::try_from(responses).expect("six answers");
        let (records, sweep_stats) = assemble_sweep(full, &(0..n)).unwrap();
        assert_identical(&records, &truth.records, &format!("worker {id} wave {wave} full"));
        assert_eq!(sweep_stats.scenarios, n);
        assert!(matches!(pong.as_slice(), [Response::Pong { .. }]));
        let (ranged, _) = assemble_sweep(ranged, &window).unwrap();
        assert_identical(
            &ranged,
            &truth.records[window],
            &format!("worker {id} wave {wave} range"),
        );
        match top.as_slice() {
            [Response::Records { records }] => assert_identical(
                &from_wire(records),
                &top_k(&truth.records, 7),
                &format!("worker {id} top"),
            ),
            other => panic!("worker {id}: unexpected top-k answer: {other:?}"),
        }
        match pareto.as_slice() {
            [Response::Records { records }] => assert_identical(
                &from_wire(records),
                &pareto_frontier(&truth.records, CostAxis::Cores),
                &format!("worker {id} pareto"),
            ),
            other => panic!("worker {id}: unexpected pareto answer: {other:?}"),
        }
        assert!(matches!(stats.as_slice(), [Response::Stats(_)]));
    }
}

/// A client that asks for a full sweep and vanishes mid-answer — or sends
/// half a request line and vanishes. The server must shrug both off.
fn disconnect_worker(endpoint: &Endpoint, space: &ScenarioSpace, half_line: bool) {
    let mut stream = Stream::connect(endpoint).unwrap();
    let line = encode_line(&RequestEnvelope {
        id: 1,
        request: Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 32,
        },
    });
    let wire = format!("{line}\n").into_bytes();
    let cut = if half_line { wire.len() / 2 } else { wire.len() };
    stream.write_all(&wire[..cut]).unwrap();
    stream.flush().unwrap();
    if !half_line {
        // Take a bite of the answer so the server is mid-stream when the
        // connection dies.
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
    }
    drop(stream);
}

/// A reader that drains its full-sweep answer in small, slow sips; verifies
/// chunk contiguity and the final count without retaining the records.
fn slow_reader(endpoint: &Endpoint, space: &ScenarioSpace, chunk: usize) -> SweepStats {
    let mut stream = Stream::connect(endpoint).unwrap();
    let line = encode_line(&RequestEnvelope {
        id: 1,
        request: Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk,
        },
    });
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut decoder = LineDecoder::new(usize::MAX / 2);
    let mut expected_next = 0usize;
    let mut buf = [0u8; 32 * 1024];
    loop {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed before the sweep finished");
        decoder.push(&buf[..n]);
        while let Some(line) = decoder.next_line() {
            let envelope: ResponseEnvelope = decode_line(&line.unwrap()).unwrap();
            match envelope.response {
                Response::SweepChunk { start, records } => {
                    assert_eq!(start, expected_next, "chunks arrive contiguously");
                    expected_next += records.len();
                }
                Response::SweepDone { stats } => {
                    assert_eq!(expected_next, space.len(), "every record arrived");
                    return stats;
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn pipelined_soak_with_faulty_clients_stays_bit_identical_and_unstuck() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    with_deadline(180, || {
        let space = soak_space();
        let truth =
            Arc::new(Engine::new(2).sweep(&space, &AnalyticBackend, &SweepConfig::default()));
        for shards in [1usize, 4] {
            let service = Arc::new(SweepService::new(
                Arc::new(AnalyticBackend),
                &ServiceConfig { shards, threads_per_shard: 2, ..ServiceConfig::default() },
            ));
            let server = Server::bind_with(
                &Endpoint::Tcp("127.0.0.1:0".into()),
                service,
                ServerConfig { event_loops: 2, executors: 3 },
            )
            .unwrap();
            let endpoint = server.endpoint().clone();
            let serving = std::thread::spawn(move || server.run().unwrap());

            std::thread::scope(|scope| {
                for id in 0..8 {
                    let endpoint = endpoint.clone();
                    let space = &space;
                    let truth = Arc::clone(&truth);
                    scope.spawn(move || pipelined_worker(&endpoint, space, &truth, id));
                }
                for half_line in [false, true, false, true] {
                    let endpoint = endpoint.clone();
                    let space = &space;
                    scope.spawn(move || disconnect_worker(&endpoint, space, half_line));
                }
                {
                    let endpoint = endpoint.clone();
                    let space = &space;
                    scope.spawn(move || {
                        let stats = slow_reader(&endpoint, space, 64);
                        assert_eq!(stats.scenarios, space.len());
                    });
                }
            });

            // After every fault the server still answers, coherently.
            let mut control = Client::connect(&endpoint).unwrap();
            assert_eq!(control.ping().unwrap(), PROTOCOL_VERSION);
            let (records, _) = control.sweep(&space, None, 0).unwrap();
            assert_identical(&records, &truth.records, &format!("{shards}-shard post-fault"));
            let stats = control.stats().unwrap();
            assert_eq!(stats.shards.len(), shards);
            assert!(stats.queries > 0);
            control.shutdown().unwrap();
            serving.join().unwrap();
        }
    });
}

#[test]
fn slow_reader_memory_stays_bounded_by_the_watermarks() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    with_deadline(300, || {
        // A space whose full wire answer dwarfs every buffer bound, so
        // unbounded buffering would be unmistakable in the live-byte gauge.
        // The scenario count is scaled through the budget/growth axes (not
        // the design axis) to keep the *request* line — whose transient
        // parse tree is also live memory — small next to the response.
        use merging_phases::model::growth::GrowthFunction;
        let space = ScenarioSpace::new()
            .with_apps(AppParams::table2_all())
            .with_budgets((1..=10).map(|i| 64.0 * i as f64).collect())
            .with_growths(vec![
                GrowthFunction::Constant,
                GrowthFunction::Linear,
                GrowthFunction::Logarithmic,
                GrowthFunction::Superlinear(1.4),
            ])
            .clear_designs()
            .add_symmetric_grid((0..1200).map(|i| 1.0 + i as f64 * 0.4))
            .add_asymmetric_grid([1.0, 2.0, 4.0], (0..200).map(|i| 2.0 + i as f64 * 2.0));
        let n = space.len();
        let full_wire_estimate = n * 60; // ~60 encoded bytes per record
        assert!(n > 100_000, "space must be large: {n}");

        let service = Arc::new(SweepService::new(
            Arc::new(AnalyticBackend),
            &ServiceConfig { shards: 2, threads_per_shard: 1, ..ServiceConfig::default() },
        ));
        let server = Server::bind_with(
            &Endpoint::Tcp("127.0.0.1:0".into()),
            service,
            ServerConfig { event_loops: 1, executors: 2 },
        )
        .unwrap();
        let endpoint = server.endpoint().clone();
        let serving = std::thread::spawn(move || server.run().unwrap());

        // Warm everything that legitimately stays resident — the prepared
        // handle, the shard caches, the allocator's recycled buffers — with
        // one fast drain, so the measured phase isolates *streaming* memory.
        let warm = slow_reader_fast(&endpoint, &space);
        assert_eq!(warm, n);

        // Read the allocator through the metrics registry — the same sampled
        // gauges the serve `metrics` verb exports — so this bound holds for
        // exactly the numbers an operator would scrape.
        alloc_track::register_metrics();
        alloc_track::reset_peak();
        let before = mp_obs::registry()
            .snapshot()
            .gauge("alloc_live_bytes")
            .expect("alloc gauges registered");
        let stats = slow_reader(&endpoint, &space, 512);
        assert_eq!(stats.scenarios, n);
        let peak_growth = mp_obs::registry()
            .snapshot()
            .gauge("alloc_peak_bytes")
            .expect("alloc gauges registered")
            - before;

        // The server produced (and this process briefly held) tens of
        // megabytes of wire data, but never more than the watermark-bounded
        // working set at once. The bound is generous (transient per-window
        // copies on both sides of the loopback live here too) yet far below
        // the ~`full_wire_estimate` an unbounded outbox would pin.
        let bound = (full_wire_estimate / 3) as i64;
        assert!(
            peak_growth < bound,
            "peak live growth {peak_growth} bytes exceeds {bound} (full answer ~{full_wire_estimate}); \
             the server is buffering instead of parking"
        );

        let mut control = Client::connect(&endpoint).unwrap();
        control.shutdown().unwrap();
        serving.join().unwrap();
    });
}

/// Drain a full sweep as fast as possible, discarding records; returns the
/// record count.
fn slow_reader_fast(endpoint: &Endpoint, space: &ScenarioSpace) -> usize {
    let mut stream = Stream::connect(endpoint).unwrap();
    let line = encode_line(&RequestEnvelope {
        id: 1,
        request: Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 512,
        },
    });
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut decoder = LineDecoder::new(usize::MAX / 2);
    let mut seen = 0usize;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed early");
        decoder.push(&buf[..n]);
        while let Some(line) = decoder.next_line() {
            let envelope: ResponseEnvelope = decode_line(&line.unwrap()).unwrap();
            match envelope.response {
                Response::SweepChunk { records, .. } => seen += records.len(),
                Response::SweepDone { .. } => return seen,
                other => panic!("unexpected response: {other:?}"),
            }
        }
    }
}
