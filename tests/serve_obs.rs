//! Observability tests of the serve stack: the protocol v2 `metrics` verb
//! round-trips the registry snapshot through the real client across shard
//! counts, the `stats` response carries the same snapshot, and every socket
//! request leaves exactly one trace with monotone stage timestamps.

use std::collections::HashMap;
use std::sync::Arc;

use merging_phases::dse::prelude::*;
use merging_phases::model::params::AppParams;
use mp_obs::trace::Stage;
use mp_serve::prelude::*;

fn space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .with_budgets(vec![256.0])
        .clear_designs()
        .add_symmetric_grid((0..32).map(|i| 1.0 + i as f64 * 4.0))
        .with_growths(vec![merging_phases::model::growth::GrowthFunction::Linear])
}

fn service(shards: usize) -> SweepService {
    SweepService::new(
        Arc::new(AnalyticBackend),
        &ServiceConfig { shards, threads_per_shard: 2, ..ServiceConfig::default() },
    )
}

/// Pull one named series out of a metrics-snapshot JSON document.
fn series(json: &str, section: &str, name: &str) -> Option<f64> {
    let value = serde_json::parse(json).expect("metrics json parses");
    let section = value.as_map()?.iter().find(|(key, _)| key == section)?.1.clone();
    section.as_map()?.iter().find(|(key, _)| key == name)?.1.as_f64()
}

/// A histogram series' total observation count (histograms export as
/// `{"count":..,"sum":..,"buckets":[..]}` objects, not bare numbers).
fn histogram_count(json: &str, name: &str) -> Option<f64> {
    let value = serde_json::parse(json).expect("metrics json parses");
    let section = value.as_map()?.iter().find(|(key, _)| key == "histograms")?.1.clone();
    let entry = section.as_map()?.iter().find(|(key, _)| key == name)?.1.clone();
    entry.as_map()?.iter().find(|(key, _)| key == "count")?.1.as_f64()
}

#[test]
fn metrics_verb_round_trips_through_the_real_client() {
    // The registry is process-global, so assert *deltas* across the driven
    // load rather than absolute values other tests may have contributed to.
    for shards in [1usize, 4] {
        let server =
            Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), Arc::new(service(shards))).unwrap();
        let endpoint = server.endpoint().clone();
        let serving = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(&endpoint).unwrap();

        let (before_json, _) = client.metrics().unwrap();
        let count = |json: &str, name: &str| series(json, "counters", name).unwrap_or(0.0);

        let space = space();
        client.ping().unwrap();
        let (cold, _) = client.sweep(&space, None, 0).unwrap();
        let (warm, _) = client.sweep(&space, None, 0).unwrap();
        assert_eq!(cold.len(), space.len());
        assert_eq!(warm.len(), space.len());
        client.top_k(&space, 5).unwrap();

        let (after_json, prometheus) = client.metrics().unwrap();
        let delta = |name: &str| count(&after_json, name) - count(&before_json, name);
        assert_eq!(delta("requests_total_ping"), 1.0, "shards={shards}");
        assert_eq!(delta("requests_total_sweep"), 2.0, "shards={shards}");
        assert_eq!(delta("requests_total_top_k"), 1.0, "shards={shards}");
        assert!(delta("cache_hits") >= space.len() as f64, "shards={shards}: warm pass hits");
        assert!(
            series(&after_json, "gauges", "executor_queue_depth").is_some(),
            "shards={shards}: queue depth gauge exported"
        );
        let sweep_latency = histogram_count(&after_json, "serve_request_ms_sweep");
        assert!(
            sweep_latency.unwrap_or(0.0) >= 2.0,
            "shards={shards}: per-verb latency histogram counts both sweeps"
        );

        // The planner's always-registered series: counters exported from
        // service construction (zero here — one client, no overlap), and the
        // Merge-Path histogram observed once per banded sweep (two sweeps
        // plus top_k's internal full sweep).
        for planner_counter in
            ["planner_coalesced_requests", "planner_shared_scenarios", "planner_cost_rejections"]
        {
            assert!(
                series(&after_json, "counters", planner_counter).is_some(),
                "shards={shards}: {planner_counter} always exported"
            );
        }
        assert_eq!(delta("planner_coalesced_requests"), 0.0, "shards={shards}: no overlap here");
        let merges = histogram_count(&after_json, "planner_merge_ms").unwrap_or(0.0)
            - histogram_count(&before_json, "planner_merge_ms").unwrap_or(0.0);
        assert!(merges >= 3.0, "shards={shards}: band merges are timed, got {merges}");

        // The Prometheus rendering carries the same series under the
        // scrape-friendly names.
        assert!(prometheus.contains("requests_total_sweep"), "shards={shards}");
        assert!(prometheus.contains("serve_request_ms_sweep"), "shards={shards}");
        assert!(prometheus.contains("planner_merge_ms"), "shards={shards}");

        // `stats` embeds the very same snapshot shape.
        let stats = client.stats().unwrap();
        assert!(
            series(&stats.metrics, "counters", "requests_total_sweep").unwrap_or(0.0)
                >= count(&after_json, "requests_total_sweep"),
            "shards={shards}: stats carries the registry snapshot"
        );

        client.shutdown().unwrap();
        serving.join().unwrap();
    }
}

#[test]
fn sweep_stats_stay_exact_under_the_stealing_scheduler() {
    // Per-service result stats must stay exact whichever worker evaluated
    // each unit: scenarios/hits counted once globally, `warm_entries` the
    // participating homes' residency at dispatch (each home once), never a
    // per-unit or per-thief multiple. Global counters are asserted by
    // *presence* only — other tests in this binary drive them concurrently.
    let space = space();
    let n = space.len();
    let service = service(4);

    let cold = service.sweep(&space, None).unwrap();
    assert_eq!(cold.stats.scenarios, n, "each scenario evaluated exactly once");
    assert_eq!(cold.stats.cache_hits, 0);
    assert_eq!(cold.stats.cache_misses as usize, n);
    assert_eq!(cold.stats.warm_entries, 0, "nothing resident at cold dispatch");

    let warm = service.sweep(&space, None).unwrap();
    assert_eq!(warm.stats.scenarios, n);
    assert_eq!(warm.stats.cache_hits as usize, n, "warm hits counted once, not per worker");
    assert_eq!(warm.stats.cache_misses, 0, "a fully warm pass re-evaluates nothing");
    assert_eq!(
        warm.stats.warm_entries, n,
        "residency summed over participating homes, each home once"
    );
    assert!(warm.stats.threads > 0, "evaluation lanes are reported");
    assert!(
        warm.stats.threads <= 4 * 2,
        "lanes are bounded by shards x threads/shard, not inflated by steals: {}",
        warm.stats.threads
    );

    // The scheduler's series are registered up front: a scrape shows them
    // even before (or without) any steal happening.
    let snapshot = mp_obs::registry().snapshot();
    for counter in ["sched_units_total", "sched_units_stolen", "sched_rebands"] {
        assert!(snapshot.counter(counter).is_some(), "{counter} always exported");
    }
    assert!(snapshot.histogram("sched_shard_busy_ms").is_some(), "busy histogram exported");
    assert!(
        snapshot.counter("sched_units_total").unwrap() >= 2,
        "both sweeps decomposed into scheduled units"
    );
}

#[test]
fn every_request_traces_exactly_once_with_monotone_stages() {
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), Arc::new(service(2))).unwrap();
    let endpoint = server.endpoint().clone();
    let trace_log = server.trace_log();
    let serving = std::thread::spawn(move || server.run().unwrap());

    // Drive a mixed load over two connections; every socket request must
    // produce exactly one trace.
    let space = space();
    let mut requests = 0usize;
    for _ in 0..2 {
        let mut client = Client::connect(&endpoint).unwrap();
        client.ping().unwrap();
        client.stats().unwrap();
        client.sweep(&space, None, 0).unwrap();
        client.top_k(&space, 3).unwrap();
        client.metrics().unwrap();
        requests += 5;
    }
    let mut control = Client::connect(&endpoint).unwrap();
    control.shutdown().unwrap();
    requests += 1;
    serving.join().unwrap();

    let traces = trace_log.snapshot();
    assert_eq!(traces.len(), requests, "one trace per socket request");

    let mut seen: HashMap<u64, usize> = HashMap::new();
    for trace in &traces {
        *seen.entry(trace.id).or_default() += 1;
    }
    for (id, occurrences) in &seen {
        assert_eq!(*occurrences, 1, "request id {id} traced more than once");
    }

    let mut verbs: HashMap<&str, usize> = HashMap::new();
    for trace in &traces {
        *verbs.entry(trace.verb).or_default() += 1;
        // Stage timestamps are stamped off one monotonic clock in pipeline
        // order; every stamped stage must be >= the stages before it.
        let mut previous = 0u64;
        for stage in Stage::ALL {
            let at = trace.stage_ns[stage.index()];
            if at != 0 {
                assert!(
                    at >= previous,
                    "request {} verb {}: stage {} at {at} precedes {previous}",
                    trace.id,
                    trace.verb,
                    stage.name(),
                );
                previous = at;
            }
        }
        // A completed request carries the full pipeline: decode and flush
        // are stamped for everything the server answered.
        assert!(trace.stage_ns[Stage::Decode.index()] > 0, "decode stamped");
        assert!(trace.stage_ns[Stage::Flush.index()] > 0, "flush stamped");
        assert!(trace.total_ms().unwrap() >= 0.0);
        // The plan stage is stamped for planned verbs (sweeps) only.
        let planned = trace.stage_ns[Stage::Plan.index()] > 0;
        match trace.verb {
            "sweep" => assert!(planned, "sweeps pass through the planner"),
            "ping" | "stats" | "metrics" | "shutdown" => {
                assert!(!planned, "{} requests are not planned", trace.verb)
            }
            _ => {}
        }
    }
    assert_eq!(verbs.get("ping"), Some(&2));
    assert_eq!(verbs.get("sweep"), Some(&2));
    assert_eq!(verbs.get("metrics"), Some(&2));
    assert_eq!(verbs.get("shutdown"), Some(&1));
}
