//! End-to-end integration test: instrumented workload execution → phase
//! profiles → parameter extraction → analytical model → design-space
//! exploration. This is the full pipeline the paper's methodology describes,
//! exercised across crate boundaries on real threads.

use merging_phases::model::explore::{best_asymmetric, best_symmetric};
use merging_phases::prelude::*;
use merging_phases::profile::extract_params;
use merging_phases::workloads::runner::run_sweep;

fn small_dataset() -> Dataset {
    DatasetSpec::new(3000, 6, 4, 0xABCD).generate()
}

#[test]
fn kmeans_pipeline_from_threads_to_design_space() {
    let job = ClusteringWorkload::kmeans(small_dataset());
    let profiles = run_sweep(&job, &[1, 2, 4]);
    assert_eq!(profiles.len(), 3);

    // Every profile contains a merging phase and is dominated by parallel work.
    for p in &profiles {
        assert!(p.reduction_time() > 0.0, "threads={}", p.threads);
        assert!(p.parallel_fraction() > 0.5, "threads={}", p.threads);
    }

    let extracted = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
    assert!(extracted.f > 0.9);
    assert!(extracted.fcon + extracted.fred > 0.99 && extracted.fcon + extracted.fred < 1.01);

    // The extracted parameters feed the analytical model and produce a finite,
    // meaningful design space.
    let params = extracted.to_app_params();
    let model = ExtendedModel::new(params, GrowthFunction::Linear, PerfModel::Pollack);
    let budget = ChipBudget::paper_default();
    let sym = best_symmetric(&model, budget).unwrap();
    let (_, asym) = best_asymmetric(&model, budget).unwrap();
    assert!(sym.speedup > 1.0 && sym.speedup < 256.0);
    assert!(asym.speedup > 1.0 && asym.speedup < 256.0);
}

#[test]
fn all_three_workloads_produce_extractable_profiles() {
    let cluster_data = small_dataset();
    let hop_data = DatasetSpec::new(2000, 3, 4, 0x77).generate();
    let jobs = vec![
        ClusteringWorkload::kmeans(cluster_data.clone()),
        ClusteringWorkload::fuzzy(cluster_data),
        ClusteringWorkload::hop(hop_data),
    ];
    for job in jobs {
        let profiles = run_sweep(&job, &[1, 2]);
        let extracted = extract_params(&profiles, &GrowthFunction::Linear)
            .unwrap_or_else(|| panic!("{}: extraction failed", job.kind().name()));
        assert!(
            extracted.f > 0.5,
            "{}: expected a mostly parallel workload, got f = {}",
            job.kind().name(),
            extracted.f
        );
        assert!(extracted.serial_fraction < 0.5);
    }
}

#[test]
fn reduction_strategy_changes_merge_cost_but_not_results() {
    // The privatised merge should not change the clustering outcome; its
    // recorded reduction stats differ, but extraction still works.
    let data = small_dataset();
    let serial = ClusteringWorkload::kmeans(data.clone())
        .with_reduction(merging_phases::par::ReductionStrategy::SerialLinear);
    let privat = ClusteringWorkload::kmeans(data)
        .with_reduction(merging_phases::par::ReductionStrategy::ParallelPrivatized);

    let serial_profiles = run_sweep(&serial, &[1, 4]);
    let privat_profiles = run_sweep(&privat, &[1, 4]);
    for profiles in [&serial_profiles, &privat_profiles] {
        assert!(extract_params(profiles, &GrowthFunction::Linear).is_some());
    }
}

#[test]
fn speedup_series_is_reported_relative_to_single_thread() {
    let job = ClusteringWorkload::kmeans(small_dataset());
    let profiles = run_sweep(&job, &[1, 2, 4]);
    let series = merging_phases::profile::speedup_series(&profiles);
    assert_eq!(series[0], (1, 1.0));
    // Multi-thread runs should not be slower than half the ideal (generous
    // bound: CI machines can be noisy and oversubscribed).
    for &(threads, speedup) in &series {
        assert!(speedup > 0.3, "threads={threads}: implausible speedup {speedup}");
    }
}
