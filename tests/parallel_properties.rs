//! Property-based tests of the parallel runtime and the workload substrates:
//! reduction strategies agree with sequential folds, chunking is a partition,
//! and the clustering results are independent of the thread count.

use merging_phases::par::pool::{chunk_range, parallel_partials};
use merging_phases::par::{reduce_elementwise, ReductionStrategy};
use merging_phases::prelude::*;
use merging_phases::workloads::kdtree::KdTree;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All reduction strategies compute the same element-wise sum.
    #[test]
    fn reduction_strategies_agree(
        partials in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 1..40), 1..12),
        threads in 1usize..8,
    ) {
        // Normalise all partials to the length of the first.
        let len = partials[0].len();
        let partials: Vec<Vec<f64>> = partials
            .into_iter()
            .map(|mut p| { p.resize(len, 0.0); p })
            .collect();
        let mut expect = vec![0.0f64; len];
        for p in &partials {
            for (e, v) in expect.iter_mut().zip(p.iter()) {
                *e += v;
            }
        }
        for strategy in ReductionStrategy::all() {
            let (got, stats) = reduce_elementwise(&partials, strategy, threads);
            prop_assert_eq!(got.len(), len);
            for (g, e) in got.iter().zip(expect.iter()) {
                prop_assert!((g - e).abs() < 1e-6_f64.max(e.abs() * 1e-12));
            }
            prop_assert_eq!(stats.partials, partials.len());
        }
    }

    /// Static chunking is an exact partition of the index space.
    #[test]
    fn chunking_partitions_the_range(len in 0usize..5000, threads in 1usize..32) {
        let mut covered = vec![0u32; len];
        for tid in 0..threads {
            for i in chunk_range(tid, threads, len) {
                covered[i] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// Fork-join partial production sums to the sequential result for an
    /// arbitrary associative accumulation.
    #[test]
    fn parallel_partials_match_sequential(data in proptest::collection::vec(-1e3f64..1e3, 0..2000), threads in 1usize..8) {
        let partials = parallel_partials(threads, data.len(), |_ctx, range| {
            data[range].iter().sum::<f64>()
        });
        let parallel: f64 = partials.iter().sum();
        let sequential: f64 = data.iter().sum();
        prop_assert!((parallel - sequential).abs() < 1e-6);
    }

    /// k-d tree nearest neighbours match brute force for random point sets.
    #[test]
    fn kdtree_knn_matches_brute_force(
        points in proptest::collection::vec(-100.0f64..100.0, 6..300),
        k in 1usize..8,
    ) {
        let dims = 3;
        let n = points.len() / dims;
        let points = &points[..n * dims];
        let tree = KdTree::build(points, dims, 2);
        let query = [0.0, 0.0, 0.0];
        let got = tree.knn(&query, k, None);

        let mut brute: Vec<(usize, f64)> = (0..n)
            .map(|i| {
                let d2: f64 = points[i * dims..(i + 1) * dims]
                    .iter()
                    .zip(query.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (i, d2)
            })
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        brute.truncate(k);

        prop_assert_eq!(got.len(), brute.len());
        for (g, b) in got.iter().zip(brute.iter()) {
            prop_assert!((g.dist2 - b.1).abs() < 1e-9);
        }
    }
}

#[test]
fn kmeans_centers_are_thread_count_invariant_on_random_data() {
    // A heavier, deterministic cross-crate check kept out of proptest to bound
    // runtime: the same data set run at 1, 3 and 8 threads produces identical
    // centres and assignments.
    let data = DatasetSpec::new(1200, 5, 4, 0xFEED).generate();
    let job = KMeansConfig::for_dataset(&data);
    let km = KMeans::new(job);
    let reference = km.run_uninstrumented(&data, 1);
    for threads in [3usize, 8] {
        let r = km.run_uninstrumented(&data, threads);
        assert_eq!(reference.assignments, r.assignments);
        for (a, b) in reference.centers.iter().zip(r.centers.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

#[test]
fn fuzzy_membership_weights_are_positive_and_bounded() {
    let data = DatasetSpec::new(500, 3, 3, 0xBEEF).generate();
    let fcm = FuzzyCMeans::new(FuzzyConfig::for_dataset(&data));
    let result = fcm.run_uninstrumented(&data, 4);
    assert_eq!(result.centers.len(), 9);
    // Centres must lie within the data's bounding box.
    for d in 0..3 {
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for i in 0..data.len() {
            lo = lo.min(data.point(i)[d]);
            hi = hi.max(data.point(i)[d]);
        }
        for c in 0..3 {
            let v = result.centers[c * 3 + d];
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "centre coordinate {v} outside [{lo}, {hi}]");
        }
    }
}
