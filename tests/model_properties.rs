//! Property-based tests of the analytical models' invariants.

use merging_phases::model::explore::symmetric_curve;
use merging_phases::model::hill_marty;
use merging_phases::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = AppParams> {
    (0.5f64..=0.9999, 0.0f64..=1.0, 0.0f64..=2.0)
        .prop_map(|(f, fcon, fored)| AppParams::new("prop", f, fcon, fored, 0.0).unwrap())
}

fn arb_core_area() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(1.0),
        Just(2.0),
        Just(4.0),
        Just(8.0),
        Just(16.0),
        Just(32.0),
        Just(64.0),
        Just(128.0),
        Just(256.0)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The extended model can never predict more speedup than Hill–Marty with
    /// the same parallel fraction: reduction overhead only removes performance.
    #[test]
    fn extended_speedup_never_exceeds_hill_marty(params in arb_params(), r in arb_core_area()) {
        let budget = ChipBudget::paper_default();
        let design = SymmetricDesign::new(budget, r).unwrap();
        let model = ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
        let extended = model.speedup_symmetric(&design).unwrap();
        let hm = hill_marty::symmetric_speedup(params.f, &design, &PerfModel::Pollack).unwrap();
        prop_assert!(extended <= hm + 1e-9);
    }

    /// Zero reduction overhead collapses the extended model onto Hill–Marty.
    #[test]
    fn zero_overhead_matches_hill_marty(f in 0.5f64..=0.9999, fcon in 0.0f64..=1.0, r in arb_core_area()) {
        let params = AppParams::new("p", f, fcon, 0.0, 0.0).unwrap();
        let budget = ChipBudget::paper_default();
        let design = SymmetricDesign::new(budget, r).unwrap();
        let model = ExtendedModel::new(params, GrowthFunction::Linear, PerfModel::Pollack);
        let extended = model.speedup_symmetric(&design).unwrap();
        let hm = hill_marty::symmetric_speedup(f, &design, &PerfModel::Pollack).unwrap();
        prop_assert!((extended - hm).abs() < 1e-9);
    }

    /// Speedups are always at least ~the serial-core performance share and
    /// bounded by the chip's aggregate throughput.
    #[test]
    fn symmetric_speedup_is_bounded(params in arb_params(), r in arb_core_area()) {
        let budget = ChipBudget::paper_default();
        let design = SymmetricDesign::new(budget, r).unwrap();
        let model = ExtendedModel::new(params, GrowthFunction::Linear, PerfModel::Pollack);
        let speedup = model.speedup_symmetric(&design).unwrap();
        let upper = PerfModel::Pollack.perf(r).unwrap() * design.cores();
        prop_assert!(speedup > 0.0);
        prop_assert!(speedup <= upper + 1e-9, "speedup {speedup} exceeds throughput bound {upper}");
    }

    /// The serial-section multiplier is 1 at one thread and non-decreasing in
    /// the thread count for every growth function.
    #[test]
    fn serial_multiplier_monotone(params in arb_params(), log in proptest::bool::ANY) {
        let growth = if log { GrowthFunction::Logarithmic } else { GrowthFunction::Linear };
        let model = ExtendedModel::new(params, growth, PerfModel::Pollack);
        prop_assert!((model.serial_multiplier(1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for p in [1usize, 2, 4, 8, 16, 64, 256] {
            let m = model.serial_multiplier(p as f64);
            prop_assert!(m >= prev - 1e-12);
            prev = m;
        }
    }

    /// Increasing the reduction-overhead coefficient never increases speedup
    /// and never moves the optimal core size toward smaller cores.
    #[test]
    fn more_overhead_means_less_speedup(f in 0.9f64..=0.999, fcon in 0.1f64..=0.9, r in arb_core_area()) {
        let budget = ChipBudget::paper_default();
        let design = SymmetricDesign::new(budget, r).unwrap();
        let low = AppParams::new("low", f, fcon, 0.1, 0.0).unwrap();
        let high = AppParams::new("high", f, fcon, 0.8, 0.0).unwrap();
        let low_m = ExtendedModel::new(low, GrowthFunction::Linear, PerfModel::Pollack);
        let high_m = ExtendedModel::new(high, GrowthFunction::Linear, PerfModel::Pollack);
        prop_assert!(high_m.speedup_symmetric(&design).unwrap() <= low_m.speedup_symmetric(&design).unwrap() + 1e-9);

        let low_best = symmetric_curve(&low_m, budget, "l").unwrap().peak().unwrap();
        let high_best = symmetric_curve(&high_m, budget, "h").unwrap().peak().unwrap();
        prop_assert!(high_best.area >= low_best.area - 1e-9);
    }

    /// The communication-aware model is never more optimistic than Hill–Marty
    /// either, and better topologies never hurt.
    #[test]
    fn comm_model_bounded_and_topology_monotone(params in arb_params(), r in arb_core_area()) {
        let budget = ChipBudget::paper_default();
        let design = SymmetricDesign::new(budget, r).unwrap();
        let comm = CommModel::paper_figure7(params.clone()).unwrap();
        let mesh = comm.speedup_symmetric(&design).unwrap();
        let hm = hill_marty::symmetric_speedup(params.f, &design, &PerfModel::Pollack).unwrap();
        prop_assert!(mesh <= hm + 1e-9);
        let ideal = comm.clone().with_topology(Topology::Ideal).speedup_symmetric(&design).unwrap();
        prop_assert!(ideal + 1e-9 >= mesh);
    }

    /// Amdahl's law brackets: speedup is between 1 and min(p, 1/s).
    #[test]
    fn amdahl_bracket(f in 0.0f64..=1.0, p in 1.0f64..=4096.0) {
        let s = amdahl_speedup(f, p).unwrap();
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= p + 1e-9);
        if f < 1.0 {
            prop_assert!(s <= 1.0 / (1.0 - f) + 1e-9);
        }
    }

    /// Parameter extraction inverts the model: profiles generated from known
    /// parameters yield those parameters back.
    #[test]
    fn extraction_roundtrip(f in 0.9f64..=0.9999, fcon in 0.05f64..=0.95, fored in 0.05f64..=1.5) {
        use merging_phases::profile::{extract_params, PhaseKind, PhaseRecord, RunProfile};
        let s = 1.0 - f;
        let profiles: Vec<RunProfile> = [1usize, 2, 4, 8, 16].iter().map(|&p| {
            let mut profile = RunProfile::new("roundtrip", p);
            let mut push = |kind, seconds| profile.push(PhaseRecord::new(kind, "x", seconds, p));
            push(PhaseKind::Parallel, f / p as f64);
            push(PhaseKind::SerialConstant, s * fcon);
            push(PhaseKind::Reduction, s * (1.0 - fcon) * (1.0 + fored * (p as f64 - 1.0)));
            profile
        }).collect();
        let ex = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        prop_assert!((ex.f - f).abs() < 1e-6);
        prop_assert!((ex.fcon - fcon).abs() < 1e-6);
        prop_assert!((ex.fored - fored).abs() < 1e-4);
    }
}
