//! Property tests of the sweep analysis invariants, driven by
//! proptest-generated scenario spaces evaluated through the real engine
//! (not synthetic record clouds):
//!
//! * the Pareto frontier is **mutually non-dominated** and **complete** —
//!   every valid record that no other record dominates appears in the
//!   frontier (up to exact `(cost, speedup)` duplicates, of which the
//!   frontier keeps one);
//! * `top_k` is a **sorted prefix of the full ranking**: extending `k` never
//!   reorders earlier entries, and the ranking is speedup-descending with
//!   deterministic tie-breaks.

use merging_phases::dse::prelude::*;
use merging_phases::prelude::*;
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = ScenarioSpace> {
    (
        proptest::collection::vec((0.9f64..=0.9999, 0.1f64..=0.9, 0.0f64..=2.0), 1..4),
        1usize..40,
        prop_oneof![Just(64.0f64), Just(256.0), Just(1024.0)],
        prop_oneof![
            Just(vec![GrowthFunction::Linear]),
            Just(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic]),
            Just(vec![GrowthFunction::Superlinear(1.55)]),
        ],
    )
        .prop_map(|(app_params, sym_designs, budget, growths)| {
            let apps: Vec<AppParams> = app_params
                .into_iter()
                .enumerate()
                .map(|(i, (f, fcon, fored))| {
                    AppParams::new(format!("app{i}"), f, fcon, fored, 0.0).unwrap()
                })
                .collect();
            // A mix of fitting and non-fitting designs, so invalid (NaN)
            // records flow through the analyses too.
            ScenarioSpace::new()
                .with_apps(apps)
                .with_budgets(vec![budget])
                .clear_designs()
                .add_symmetric_grid((0..sym_designs).map(|i| 1.0 + i as f64 * 7.0))
                .add_asymmetric_grid([1.0, 4.0], [4.0, 64.0, 512.0])
                .with_growths(growths)
        })
}

fn sweep(space: &ScenarioSpace) -> Vec<EvalRecord> {
    Engine::new(1).sweep(space, &AnalyticBackend, &SweepConfig::default()).records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pareto: mutual non-domination plus completeness, on both cost axes.
    #[test]
    fn pareto_front_is_mutually_nondominated_and_complete(space in arb_space()) {
        let records = sweep(&space);
        for cost in [CostAxis::Cores, CostAxis::Area] {
            let frontier = pareto_frontier(&records, cost);
            // Mutually non-dominated (and all valid).
            for a in &frontier {
                prop_assert!(a.is_valid());
                for b in &frontier {
                    if a.index != b.index {
                        prop_assert!(
                            !dominates(a, b, cost),
                            "frontier point {} dominates {} on {}", a.index, b.index, cost.name()
                        );
                    }
                }
            }
            // Complete: every valid record no other valid record dominates is
            // on the frontier, up to exact (cost, speedup) duplicates.
            let valid: Vec<&EvalRecord> = records.iter().filter(|r| r.is_valid()).collect();
            for record in &valid {
                let dominated = valid
                    .iter()
                    .any(|other| other.index != record.index && dominates(other, record, cost));
                if !dominated {
                    prop_assert!(
                        frontier.iter().any(|f| {
                            f.speedup.to_bits() == record.speedup.to_bits()
                                && cost.cost(f).to_bits() == cost.cost(record).to_bits()
                        }),
                        "non-dominated record {} (speedup {}, {} {}) missing from the {} frontier",
                        record.index, record.speedup, cost.name(), cost.cost(record), cost.name()
                    );
                }
            }
            // And conversely the frontier only contains non-dominated records.
            for f in &frontier {
                prop_assert!(
                    !valid.iter().any(|other| other.index != f.index && dominates(other, f, cost)),
                    "frontier point {} is dominated", f.index
                );
            }
        }
    }

    /// top-k: a sorted prefix of the full ranking, for every k.
    #[test]
    fn top_k_is_a_sorted_prefix_of_the_full_ranking(space in arb_space()) {
        let records = sweep(&space);
        let valid = records.iter().filter(|r| r.is_valid()).count();
        let ranking = top_k(&records, usize::MAX);
        // The full ranking holds every valid record.
        prop_assert_eq!(ranking.len(), valid);
        // Sorted: speedup descending, ties toward fewer cores then lower index.
        for pair in ranking.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            prop_assert!(
                a.speedup > b.speedup
                    || (a.speedup == b.speedup
                        && (a.cores < b.cores || (a.cores == b.cores && a.index < b.index))),
                "ranking misordered at indices {} / {}", a.index, b.index
            );
        }
        // Prefix: every k returns exactly the first k entries of the ranking.
        for k in [0usize, 1, 2, 5, valid / 2, valid, valid + 7] {
            let top = top_k(&records, k);
            prop_assert_eq!(&top[..], &ranking[..k.min(valid)]);
        }
    }
}
