//! Golden-file regression tests for the paper's engine-reproduced figure
//! curves (Figures 3, 4, 5 and 7, via `mp_dse::curves::figure_curves`).
//!
//! Each figure's full curve family is serialised to JSON and compared
//! **byte-for-byte** against a checked-in snapshot under `tests/golden/`.
//! The workspace JSON printer emits every `f64` in its shortest
//! round-trippable form, so byte equality of the serialisation is exactly
//! bit equality of every speedup — any change to the models, the engine, the
//! backends or the batched evaluation path that perturbs a single mantissa
//! bit fails these tests.
//!
//! ## Regenerating the snapshots
//!
//! After an *intentional* numeric change, regenerate and commit the files:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test golden_curves
//! git diff tests/golden/   # review every changed number!
//! ```
//!
//! The regeneration path never deletes: it rewrites the four files and the
//! test passes, so a forgotten `REGEN_GOLDEN` in CI would still pin the
//! committed state on the next plain run.

use std::path::PathBuf;

use merging_phases::dse::curves::{figure_curves, Figure};

fn golden_path(figure: Figure) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{figure}.json"))
}

fn check(figure: Figure) {
    let curves = figure_curves(figure).expect("paper figures always evaluate");
    let rendered = serde_json::to_string_pretty(&curves).expect("curves serialise");
    let path = golden_path(figure);
    if std::env::var("REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, rendered.as_bytes()).expect("golden file is writable");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `REGEN_GOLDEN=1 cargo test --test golden_curves`",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "{figure} diverged from its golden snapshot; if the change is intentional, regenerate \
         with `REGEN_GOLDEN=1 cargo test --test golden_curves` and review the diff"
    );
}

#[test]
fn fig3_scalability_curves_match_golden() {
    check(Figure::Fig3);
}

#[test]
fn fig4_symmetric_design_space_matches_golden() {
    check(Figure::Fig4);
}

#[test]
fn fig5_asymmetric_design_space_matches_golden() {
    check(Figure::Fig5);
}

#[test]
fn fig7_communication_model_matches_golden() {
    check(Figure::Fig7);
}

/// The snapshot mechanism itself: golden JSON round-trips to the exact
/// in-memory curves, so byte equality really is bit equality.
#[test]
fn golden_serialisation_round_trips_bitwise() {
    for figure in Figure::ALL {
        let curves = figure_curves(figure).expect("paper figures always evaluate");
        let rendered = serde_json::to_string_pretty(&curves).expect("curves serialise");
        let parsed: Vec<merging_phases::model::explore::Curve> =
            serde_json::from_str(&rendered).expect("golden JSON parses");
        assert_eq!(parsed.len(), curves.len());
        for (a, b) in parsed.iter().zip(curves.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.points.len(), b.points.len());
            for (p, q) in a.points.iter().zip(b.points.iter()) {
                assert_eq!(p.area.to_bits(), q.area.to_bits());
                assert_eq!(p.cores.to_bits(), q.cores.to_bits());
                assert_eq!(p.speedup.to_bits(), q.speedup.to_bits());
            }
        }
    }
}
