//! Differential tests of the mp-serve service: every query answer must be
//! **bit-identical** to a direct `Engine::sweep` over the same space —
//! across shard counts, cold and warm caches, the in-process API and the
//! real socket protocol (where records additionally survive the hex-bits
//! wire encoding).

use std::sync::Arc;

use merging_phases::dse::prelude::*;
use merging_phases::model::params::AppParams;
use mp_serve::prelude::*;

fn space() -> ScenarioSpace {
    // Small-budget points make some designs unfit, so NaN records cross the
    // wire too.
    ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .with_budgets(vec![64.0, 256.0])
        .clear_designs()
        .add_symmetric_grid((0..48).map(|i| 1.0 + i as f64 * 2.5))
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0, 128.0])
        .with_growths(vec![
            merging_phases::model::growth::GrowthFunction::Linear,
            merging_phases::model::growth::GrowthFunction::Logarithmic,
        ])
}

fn direct_sweep(space: &ScenarioSpace) -> SweepResult {
    Engine::new(2).sweep(space, &AnalyticBackend, &SweepConfig::default())
}

fn assert_records_identical(got: &[EvalRecord], want: &[EvalRecord], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: record count");
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.index, b.index, "{what}: index order");
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{what}: speedup @{}", a.index);
        assert_eq!(a.cores.to_bits(), b.cores.to_bits(), "{what}: cores @{}", a.index);
        assert_eq!(a.area.to_bits(), b.area.to_bits(), "{what}: area @{}", a.index);
    }
}

fn service(shards: usize) -> SweepService {
    SweepService::new(
        Arc::new(AnalyticBackend),
        &ServiceConfig { shards, threads_per_shard: 2, ..ServiceConfig::default() },
    )
}

#[test]
fn in_process_queries_are_bit_identical_across_shard_counts_and_cache_states() {
    let space = space();
    let direct = direct_sweep(&space);
    let direct_top = top_k(&direct.records, 12);
    let direct_pareto = pareto_frontier(&direct.records, CostAxis::Cores);

    for shards in [1usize, 4] {
        let service = service(shards);
        // Cold pass.
        let cold = service.sweep(&space, None).unwrap();
        assert_records_identical(&cold.records, &direct.records, &format!("{shards}-shard cold"));
        assert_eq!(cold.stats.cache_hits, 0, "{shards}-shard cold pass must not hit");
        // Warm pass: answered from the shard caches, still bit-identical.
        let warm = service.sweep(&space, None).unwrap();
        assert_records_identical(&warm.records, &direct.records, &format!("{shards}-shard warm"));
        assert_eq!(warm.stats.cache_hits, space.len() as u64);
        assert_eq!(warm.stats.cache_misses, 0);
        // Analysis queries on both cache states.
        assert_records_identical(
            &service.top_k(&space, 12).unwrap(),
            &direct_top,
            &format!("{shards}-shard top_k"),
        );
        assert_records_identical(
            &service.pareto(&space, CostAxis::Cores).unwrap(),
            &direct_pareto,
            &format!("{shards}-shard pareto"),
        );
    }
}

#[test]
fn socket_protocol_preserves_bit_identity_across_shard_counts_and_cache_states() {
    let space = space();
    let direct = direct_sweep(&space);
    let direct_top = top_k(&direct.records, 7);
    let direct_pareto = pareto_frontier(&direct.records, CostAxis::Area);

    for shards in [1usize, 4] {
        let server =
            Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), Arc::new(service(shards))).unwrap();
        let endpoint = server.endpoint().clone();
        let serving = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(&endpoint).unwrap();
        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);

        for pass in ["cold", "warm"] {
            let what = format!("{shards}-shard {pass} socket");
            // Tiny chunk size so reassembly of many streamed chunks is
            // exercised, not just the single-chunk path.
            let (records, stats) = client.sweep(&space, None, 100).unwrap();
            assert_records_identical(&records, &direct.records, &what);
            assert_eq!(stats.scenarios, space.len());
            if pass == "warm" {
                assert_eq!(stats.cache_hits, space.len() as u64, "{what}");
            }
            assert_records_identical(&client.top_k(&space, 7).unwrap(), &direct_top, &what);
            assert_records_identical(
                &client.pareto(&space, CostAxis::Area).unwrap(),
                &direct_pareto,
                &what,
            );
        }

        // Sub-range sweeps (the incremental/resumable path) over the wire.
        let n = space.len();
        for window in [0..n / 3, n / 3..n - 1, n - 1..n] {
            let (records, _) = client.sweep(&space, Some(window.clone()), 64).unwrap();
            assert_records_identical(
                &records,
                &direct.records[window],
                &format!("{shards}-shard range sweep"),
            );
        }

        client.shutdown().unwrap();
        serving.join().unwrap();
    }
}

#[test]
fn concurrent_socket_clients_all_observe_identical_answers() {
    let space = space();
    let direct = Arc::new(direct_sweep(&space));
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), Arc::new(service(4))).unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());

    std::thread::scope(|scope| {
        for client_index in 0..8 {
            let endpoint = endpoint.clone();
            let space = &space;
            let direct = Arc::clone(&direct);
            scope.spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                for _ in 0..3 {
                    let (records, _) = client.sweep(space, None, 0).unwrap();
                    assert_records_identical(
                        &records,
                        &direct.records,
                        &format!("concurrent client {client_index}"),
                    );
                }
            });
        }
    });

    let mut control = Client::connect(&endpoint).unwrap();
    let stats = control.stats().unwrap();
    assert_eq!(stats.shards.len(), 4);
    assert!(stats.queries >= 24);
    let totals = stats.cache_totals();
    assert!(totals.hits > 0, "repeat queries must hit the shard caches");
    control.shutdown().unwrap();
    serving.join().unwrap();
}

#[test]
fn overlapping_sweeps_coalesce_without_breaking_bit_identity() {
    // The planner's coalescing table shares one evaluation among overlapping
    // in-flight sweeps; every subscriber must still observe records
    // bit-identical to a direct engine sweep — across shard counts, client
    // counts and cache states.
    let space = space();
    let direct = Arc::new(direct_sweep(&space));

    for shards in [1usize, 4] {
        for clients in [2usize, 8] {
            let service = Arc::new(service(shards));
            for pass in ["cold", "warm"] {
                let barrier = std::sync::Barrier::new(clients);
                std::thread::scope(|scope| {
                    for client_index in 0..clients {
                        let service = Arc::clone(&service);
                        let direct = Arc::clone(&direct);
                        let space = &space;
                        let barrier = &barrier;
                        scope.spawn(move || {
                            // Release every client at once so their windows
                            // genuinely overlap in flight.
                            barrier.wait();
                            let result = service.sweep(space, None).unwrap();
                            assert_records_identical(
                                &result.records,
                                &direct.records,
                                &format!(
                                    "{shards}-shard {pass} overlap client {client_index}/{clients}"
                                ),
                            );
                            assert_eq!(result.stats.scenarios, space.len());
                        });
                    }
                });
            }
        }
    }
}

#[test]
fn overlapping_socket_clients_get_identical_answers_and_shared_stats_markers() {
    // Same property over the real protocol: concurrent duplicate sweeps,
    // answers byte-identical to an uncoalesced run, and any response served
    // from a shared evaluation carries `stats.coalesced` (never on the
    // records themselves — those are always bit-exact).
    let space = space();
    let direct = Arc::new(direct_sweep(&space));
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), Arc::new(service(4))).unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());

    let barrier = std::sync::Barrier::new(6);
    std::thread::scope(|scope| {
        for client_index in 0..6 {
            let endpoint = endpoint.clone();
            let space = &space;
            let direct = Arc::clone(&direct);
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(&endpoint).unwrap();
                barrier.wait();
                for pass in 0..2 {
                    let (records, stats) = client.sweep(space, None, 0).unwrap();
                    assert_records_identical(
                        &records,
                        &direct.records,
                        &format!("overlap socket client {client_index} pass {pass}"),
                    );
                    assert_eq!(stats.scenarios, space.len());
                }
            });
        }
    });

    let mut control = Client::connect(&endpoint).unwrap();
    let stats = control.stats().unwrap();
    assert!(stats.queries >= 12);
    control.shutdown().unwrap();
    serving.join().unwrap();
}

#[test]
fn skewed_query_mixes_stay_bit_identical_under_stealing() {
    // The workload the work-stealing scheduler exists for: most clients
    // hammer sub-ranges of one shard's band (the "hot quarter") while a
    // few sweep the full space. Thieves drain the hot shard's deque, but
    // every stolen unit still evaluates against its home shard's engine
    // and fuses back in index order — so every answer, skewed or not,
    // must stay bit-identical to the direct engine sweep.
    let space = space();
    let n = space.len();
    let direct = Arc::new(direct_sweep(&space));
    let service = Arc::new(service(4));
    let hot_span = n / 4;

    let barrier = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for client_index in 0..8usize {
            let service = Arc::clone(&service);
            let direct = Arc::clone(&direct);
            let space = &space;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..6usize {
                    // One query in eight is a full sweep; the rest are
                    // varied windows inside the hot quarter, deliberately
                    // misaligned so they neither coalesce nor line up with
                    // placement segments.
                    let range = if (client_index + round) % 8 == 0 {
                        0..n
                    } else {
                        let start = (client_index * 11 + round * 29) % (hot_span / 2).max(1);
                        start..start + hot_span / 2
                    };
                    let result = service.sweep(space, Some(range.clone())).unwrap();
                    assert_eq!(result.stats.scenarios, range.len());
                    assert_records_identical(
                        &result.records,
                        &direct.records[range],
                        &format!("skewed client {client_index} round {round}"),
                    );
                }
            });
        }
    });
}

#[test]
fn curve_queries_match_the_figure_family_bitwise() {
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), Arc::new(service(1))).unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect(&endpoint).unwrap();
    for figure in Figure::ALL {
        let served = client.curves(figure).unwrap();
        let local = figure_curves(figure).unwrap();
        assert_eq!(served.len(), local.len(), "{figure}");
        for (a, b) in served.iter().zip(local.iter()) {
            assert_eq!(a.label, b.label);
            for (p, q) in a.points.iter().zip(b.points.iter()) {
                assert_eq!(p.speedup.to_bits(), q.speedup.to_bits(), "{figure}: {}", a.label);
            }
        }
    }
    client.shutdown().unwrap();
    serving.join().unwrap();
}

#[test]
fn unix_socket_transport_behaves_like_tcp() {
    let dir = std::env::temp_dir().join(format!("mp-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("parity.sock");
    let _ = std::fs::remove_file(&path);
    let server = Server::bind(&Endpoint::Unix(path.clone()), Arc::new(service(2))).unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());

    let space = space();
    let direct = direct_sweep(&space);
    let mut client = Client::connect(&endpoint).unwrap();
    let (records, _) = client.sweep(&space, None, 0).unwrap();
    assert_records_identical(&records, &direct.records, "unix socket");
    client.shutdown().unwrap();
    serving.join().unwrap();
    assert!(!path.exists(), "server unlinks its socket on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
