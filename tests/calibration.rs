//! End-to-end calibration tests: simulated/synthetic profiles with known
//! injected fractions must calibrate back to those fractions, and the
//! measured DSE backend must agree with the analytic backend when both are
//! given the same fractions.

use merging_phases::cmpsim::{kmeans_program, simulate_profile, Machine, WorkloadShape};
use merging_phases::dse::{AnalyticBackend, EvalBackend, MeasuredBackend, ScenarioSpace};
use merging_phases::model::calibrate::CalibratedParams;
use merging_phases::model::growth::GrowthFunction;
use merging_phases::prelude::*;
use merging_phases::profile::{extract_params, PhaseKind, PhaseRecord, StreamingExtractor};
use merging_phases::runtime::PhaseScheduler;

/// A synthetic profile following the extended model exactly: parallel `f/p`,
/// constant serial `s·fcon`, reduction `s·fred·(1 + fored·grow(p))`.
fn injected_profile(app: &str, p: usize, f: f64, fcon: f64, fored: f64) -> RunProfile {
    let s = 1.0 - f;
    let mut profile = RunProfile::new(app, p);
    profile.push(PhaseRecord::new(PhaseKind::Init, "init", 0.02, p));
    profile.push(PhaseRecord::new(PhaseKind::Parallel, "par", f / p as f64, p));
    profile.push(PhaseRecord::new(PhaseKind::SerialConstant, "ser", s * fcon, p));
    profile.push(PhaseRecord::new(
        PhaseKind::Reduction,
        "red",
        s * (1.0 - fcon) * (1.0 + fored * (p as f64 - 1.0)),
        p,
    ));
    profile
}

fn injected_calibration(f: f64, fcon: f64, fored: f64) -> CalibratedParams {
    let extractor = StreamingExtractor::new("injected");
    for p in [1usize, 2, 4, 8, 16] {
        extractor.absorb_profile(&injected_profile("injected", p, f, fcon, fored));
    }
    extractor.calibrate().expect("synthetic sweep calibrates")
}

#[test]
fn calibration_recovers_injected_fractions() {
    let (f, fcon, fored) = (0.99, 0.6, 0.8);
    let calibrated = injected_calibration(f, fcon, fored);
    let app = calibrated.app_params();
    assert!((app.f - f).abs() < 1e-9, "f: {}", app.f);
    assert!((app.split.fcon - fcon).abs() < 1e-9, "fcon: {}", app.split.fcon);
    assert!((app.split.fred - (1.0 - fcon)).abs() < 1e-9, "fred: {}", app.split.fred);
    assert!((app.fored - fored).abs() < 1e-6, "fored: {}", app.fored);
    assert_eq!(calibrated.growth(), &GrowthFunction::Linear);
}

#[test]
fn measured_backend_agrees_with_analytic_on_injected_fractions() {
    let calibrated = injected_calibration(0.995, 0.55, 1.1);
    let backend = MeasuredBackend::new(vec![calibrated]);
    // Same fractions, same (fitted linear) growth: the analytic backend on
    // the measured app axis must produce the same speedups.
    let space = ScenarioSpace::new()
        .with_apps(backend.apps())
        .with_budgets(vec![64.0, 256.0])
        .clear_designs()
        .add_symmetric_grid([1.0, 2.0, 4.0, 16.0, 64.0])
        .add_asymmetric_grid([1.0, 4.0], [8.0, 64.0]);
    assert!(space.len() > 10);
    for index in 0..space.len() {
        let scenario = space.scenario(index);
        if !scenario.design.fits(scenario.budget) {
            continue;
        }
        let measured = backend.evaluate(&scenario).unwrap();
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        assert!(
            (measured - analytic).abs() / analytic < 1e-6,
            "index {index}: measured {measured} vs analytic {analytic}"
        );
    }
}

#[test]
fn calibration_from_cmpsim_simulation_matches_direct_extraction() {
    use merging_phases::cmpsim::program::ReductionKind;
    // Deterministic source: the timing simulator's kmeans phase programs at
    // 1–16 cores, the same runs Figure 2 is generated from.
    let extractor = StreamingExtractor::new("kmeans-sim");
    let mut profiles = Vec::new();
    for cores in [1usize, 2, 4, 8, 16] {
        let machine = Machine::table1(cores);
        let program = kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
        let profile = simulate_profile(&program, &machine);
        extractor.absorb_profile(&profile);
        profiles.push(profile);
    }
    let calibrated = extractor.calibrate().unwrap();
    let extracted = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
    let app = calibrated.app_params();
    // The streaming calibration and the classic post-hoc extraction read the
    // same simulated runs, so the single-core fractions must agree exactly.
    assert!((app.f - extracted.f).abs() < 1e-12);
    assert!((app.split.fcon - extracted.fcon).abs() < 1e-12);
    assert!((app.split.fred - extracted.fred).abs() < 1e-12);
    // The simulated kmeans merge grows essentially linearly while the partial
    // tables stay cache-resident, so the calibrated closed form must track
    // the observed multipliers tightly.
    for &(p, observed) in calibrated.serial_multipliers() {
        let predicted = calibrated.predicted_multiplier(p as f64);
        assert!(
            (predicted - observed).abs() / observed < 0.25,
            "p={p}: predicted {predicted} vs observed {observed}"
        );
    }
}

#[test]
fn scheduler_run_calibrates_and_sweeps_end_to_end() {
    // The full pipeline on a real (tiny) workload: scheduler → streaming
    // extractor → calibration → measured backend → engine sweep.
    let data = DatasetSpec::new(600, 3, 3, 13).generate();
    let mut config = KMeansConfig::for_dataset(&data);
    config.threshold = -1.0; // fixed iteration count for stable ratios
    config.max_iters = 6;
    let workload = KMeans::new(config);
    let extractor = StreamingExtractor::new("kmeans");
    for threads in [1usize, 2, 4] {
        let sink = extractor.run_sink(threads);
        PhaseScheduler::new(threads).run(&workload.phased(&data), &sink);
    }
    let calibrated = extractor.calibrate().unwrap();
    let app = calibrated.app_params();
    assert!(app.f > 0.5 && app.f < 1.0, "f = {}", app.f);
    assert!((app.split.fcon + app.split.fred - 1.0).abs() < 1e-9);

    let backend = MeasuredBackend::new(vec![calibrated]);
    let space = ScenarioSpace::new()
        .with_apps(backend.apps())
        .clear_designs()
        .add_symmetric_grid((0..32).map(|i| 1.0 + i as f64));
    let engine = Engine::new(2);
    let result = engine.sweep(&space, &backend, &SweepConfig::default());
    assert_eq!(result.records.len(), space.len());
    assert_eq!(result.stats.valid, space.len());
    assert!(result.records.iter().all(|r| r.speedup > 0.0));
}
