//! Deterministic torture tests of the serve wire protocol: the incremental
//! parser fed byte-at-a-time and split at arbitrary boundaries, oversized
//! and garbage lines, interleaved pipelined exchanges over a real socket,
//! and property-based round-trips of the request/response encoding —
//! including the 16-hex-digit float bit patterns that carry `NaN` markers.

use std::io::{Read, Write};
use std::sync::Arc;

use merging_phases::dse::prelude::*;
use mp_serve::prelude::*;
use proptest::prelude::*;

fn request_lines() -> Vec<String> {
    let space = ScenarioSpace::new()
        .clear_designs()
        .add_symmetric_grid([1.0, 2.0, 4.0])
        .add_asymmetric_grid([1.0], [4.0, 16.0]);
    let requests = vec![
        Request::Ping,
        Request::Stats,
        Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 2,
        },
        Request::TopK { space: SpaceSpec::Explicit(space.clone()), k: 3 },
        Request::Pareto { space: SpaceSpec::Explicit(space), cost: CostAxis::Area },
        Request::Catalogue,
    ];
    requests
        .into_iter()
        .enumerate()
        .map(|(index, request)| encode_line(&RequestEnvelope { id: index as u64 + 1, request }))
        .collect()
}

#[test]
fn byte_at_a_time_feeding_recovers_every_line_exactly() {
    let lines = request_lines();
    let wire: Vec<u8> =
        lines.iter().flat_map(|line| line.bytes().chain(std::iter::once(b'\n'))).collect();
    let mut decoder = LineDecoder::new(MAX_REQUEST_LINE);
    let mut recovered = Vec::new();
    for &byte in &wire {
        decoder.push(std::slice::from_ref(&byte));
        while let Some(line) = decoder.next_line() {
            recovered.push(line.expect("valid lines decode"));
        }
    }
    assert_eq!(recovered, lines);
    assert_eq!(decoder.buffered(), 0);
}

#[test]
fn every_split_point_of_a_two_line_stream_decodes_identically() {
    let lines = request_lines();
    let wire: Vec<u8> = format!("{}\n{}\n", lines[2], lines[0]).into_bytes();
    for split in 0..=wire.len() {
        let mut decoder = LineDecoder::new(MAX_REQUEST_LINE);
        let mut recovered = Vec::new();
        decoder.push(&wire[..split]);
        while let Some(line) = decoder.next_line() {
            recovered.push(line.unwrap());
        }
        decoder.push(&wire[split..]);
        while let Some(line) = decoder.next_line() {
            recovered.push(line.unwrap());
        }
        assert_eq!(recovered, vec![lines[2].clone(), lines[0].clone()], "split at {split}");
    }
}

#[test]
fn oversized_garbage_and_empty_lines_never_desync_the_stream() {
    let lines = request_lines();
    let mut decoder = LineDecoder::new(256);
    // Oversized line delivered in pieces, then an empty line, then garbage
    // bytes, then a real request.
    decoder.push(&[b'{'; 200]);
    assert!(decoder.next_line().is_none(), "under the cap: keep waiting");
    decoder.push(&[b'{'; 200]);
    let oversized = decoder.next_line().unwrap().unwrap_err();
    assert!(oversized.contains("256-byte"), "{oversized}");
    assert!(decoder.next_line().is_none(), "still discarding the tail");
    decoder.push(b"{{{\n\r\n");
    assert!(decoder.next_line().is_none(), "tail + blank lines are consumed");
    decoder.push(&[0xC0, 0xAF, b'\n']); // invalid UTF-8
    assert!(decoder.next_line().unwrap().is_err());
    decoder.push(format!("{}\n", lines[0]).as_bytes());
    assert_eq!(decoder.next_line().unwrap().unwrap(), lines[0]);
    assert!(decoder.buffered() <= 512, "buffer stays bounded near the cap: {}", decoder.buffered());
}

/// Drive a real server over TCP with hand-built wire bytes, split
/// mid-request across writes, and two requests pipelined back-to-back in a
/// single write. The server must answer both, in order, on their own ids.
#[test]
fn interleaved_pipelined_requests_split_across_writes_answer_in_order() {
    let service = Arc::new(SweepService::new(
        Arc::new(AnalyticBackend),
        &ServiceConfig { shards: 2, ..ServiceConfig::default() },
    ));
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), service).unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());

    let space =
        ScenarioSpace::new().clear_designs().add_symmetric_grid((0..12).map(|i| 1.0 + i as f64));
    let sweep = encode_line(&RequestEnvelope {
        id: 7,
        request: Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 5,
        },
    });
    let ping = encode_line(&RequestEnvelope { id: 8, request: Request::Ping });
    // Garbage between pipelined requests must produce an id-0 error in
    // stream position, without touching either request.
    let wire = format!("{sweep}\nnot json at all\n{ping}\n").into_bytes();

    let mut stream = Stream::connect(&endpoint).unwrap();
    // Write in three odd-sized pieces with pauses, splitting the sweep
    // request mid-JSON.
    let first = wire.len() / 3;
    let second = (2 * wire.len() / 3 + 1).min(wire.len());
    for piece in [&wire[..first], &wire[first..second], &wire[second..]] {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Collect responses: sweep chunks + done on id 7, then the id-0 parse
    // error, then the pong on id 8 — strictly in that order.
    let mut decoder = LineDecoder::new(usize::MAX / 2);
    let mut envelopes: Vec<ResponseEnvelope> = Vec::new();
    let mut buf = [0u8; 4096];
    while envelopes.iter().filter(|e| e.response.is_terminal()).count() < 3 {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed early");
        decoder.push(&buf[..n]);
        while let Some(line) = decoder.next_line() {
            envelopes.push(decode_line(&line.unwrap()).unwrap());
        }
    }
    let ids: Vec<u64> = envelopes.iter().map(|e| e.id).collect();
    let chunks = space.len().div_ceil(5);
    let mut expected = vec![7u64; chunks + 1];
    expected.push(0);
    expected.push(8);
    assert_eq!(ids, expected, "responses arrive strictly in request order");
    assert!(matches!(envelopes[chunks].response, Response::SweepDone { .. }));
    assert!(matches!(envelopes[chunks + 1].response, Response::Error { .. }));
    assert!(matches!(envelopes.last().unwrap().response, Response::Pong { .. }));

    // And the sweep itself is bit-identical to the direct engine answer.
    let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
    let responses: Vec<Response> =
        envelopes.iter().take(chunks + 1).map(|e| e.response.clone()).collect();
    let (records, _) = assemble_sweep(responses, &(0..space.len())).unwrap();
    for (a, b) in records.iter().zip(direct.records.iter()) {
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }

    let mut control = Client::connect(&endpoint).unwrap();
    control.shutdown().unwrap();
    serving.join().unwrap();
}

/// Regression for the v1 client: responses arriving in arbitrary pieces
/// (short reads) must reassemble, and a connection closed mid-line must be
/// a clean transport error, never a truncated parse.
#[test]
fn client_tolerates_short_reads_and_reports_mid_line_closes() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake_server = std::thread::spawn(move || {
        let (mut socket, _) = listener.accept().unwrap();
        let mut request = Vec::new();
        let mut byte = [0u8; 1];
        // Read the ping request line.
        loop {
            socket.read_exact(&mut byte).unwrap();
            if byte[0] == b'\n' {
                break;
            }
            request.push(byte[0]);
        }
        let envelope: RequestEnvelope =
            decode_line(std::str::from_utf8(&request).unwrap()).unwrap();
        let response = encode_line(&ResponseEnvelope {
            id: envelope.id,
            response: Response::Pong { version: PROTOCOL_VERSION.to_string() },
        });
        // Dribble the response out in 3-byte pieces.
        let wire = format!("{response}\n").into_bytes();
        for piece in wire.chunks(3) {
            socket.write_all(piece).unwrap();
            socket.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Second request: answer with half a line, then slam the door.
        loop {
            socket.read_exact(&mut byte).unwrap();
            if byte[0] == b'\n' {
                break;
            }
        }
        socket.write_all(&wire[..wire.len() / 2]).unwrap();
        socket.flush().unwrap();
        drop(socket);
    });

    let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION, "short reads reassemble");
    let error = client.ping().unwrap_err();
    assert!(
        error.message.contains("mid-line"),
        "mid-line close is a clean transport error: {error}"
    );
    fake_server.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wire records round-trip bitwise for arbitrary bit patterns — every
    /// NaN payload, signed zero, subnormal and infinity included.
    #[test]
    fn wire_records_round_trip_any_bit_pattern(
        // Indices travel as JSON numbers (f64): exact for every index the
        // engine can produce (spaces are RAM-bounded), i.e. below 2^53.
        index in 0usize..(1usize << 53),
        speedup_bits in 0u64..u64::MAX,
        cores_bits in 0u64..u64::MAX,
        area_bits in 0u64..u64::MAX,
    ) {
        let record = EvalRecord {
            index,
            speedup: f64::from_bits(speedup_bits),
            cores: f64::from_bits(cores_bits),
            area: f64::from_bits(area_bits),
        };
        let line = encode_line(&WireRecord(record));
        let back: WireRecord = decode_line(&line).unwrap();
        prop_assert_eq!(back.0.index, index);
        prop_assert_eq!(back.0.speedup.to_bits(), speedup_bits);
        prop_assert_eq!(back.0.cores.to_bits(), cores_bits);
        prop_assert_eq!(back.0.area.to_bits(), area_bits);
        // Re-encoding is stable (what the golden files rely on).
        prop_assert_eq!(encode_line(&back), line);
    }

    /// Response envelopes round-trip through the wire for generated sweep
    /// chunk payloads.
    #[test]
    fn response_envelopes_round_trip(
        // Ids are JSON numbers too: exact below 2^53, and clients assign
        // small sequential ids.
        id in 1u64..(1u64 << 53),
        start in 0usize..1_000_000usize,
        bits in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..20),
    ) {
        let records: Vec<WireRecord> = bits
            .iter()
            .enumerate()
            .map(|(offset, (a, b))| WireRecord(EvalRecord {
                index: start + offset,
                speedup: f64::from_bits(*a),
                cores: f64::from_bits(*b),
                area: 1.0,
            }))
            .collect();
        let envelope = ResponseEnvelope {
            id,
            response: Response::SweepChunk { start, records: records.clone() },
        };
        let line = encode_line(&envelope);
        let back: ResponseEnvelope = decode_line(&line).unwrap();
        prop_assert_eq!(back.id, id);
        prop_assert_eq!(encode_line(&back), line.clone());
        // The dedicated chunk codec agrees with the generic path on every
        // generated payload: identical bytes out, identical records back.
        let plain = from_wire(&records);
        prop_assert_eq!(&encode_chunk_line(id, start, &plain), &line);
        let fast = decode_chunk_line(&line).expect("fast decoder accepts generic encoding");
        prop_assert_eq!(fast.id, id);
        match fast.response {
            Response::SweepChunk { start: got_start, records: got } => {
                prop_assert_eq!(got_start, start);
                prop_assert_eq!(encode_line(&ResponseEnvelope {
                    id,
                    response: Response::SweepChunk { start: got_start, records: got },
                }), line);
            }
            other => return Err(format!("fast decode yielded {other:?}")),
        }
    }

    /// Random byte streams never panic the decoder, and whatever it yields
    /// respects the size cap.
    #[test]
    fn arbitrary_bytes_never_break_the_decoder(
        bytes in proptest::collection::vec(0u8..=u8::MAX, 0..2048),
        cap in 16usize..512usize,
    ) {
        let mut decoder = LineDecoder::new(cap);
        for piece in bytes.chunks(7) {
            decoder.push(piece);
            while let Some(line) = decoder.next_line() {
                if let Ok(line) = line {
                    prop_assert!(line.len() <= cap);
                }
            }
        }
        prop_assert!(decoder.buffered() <= cap + 2048);
    }
}
