//! Property-based tests of the durable-job persistence formats: the
//! checksummed job manifest and the binary cache segment. The invariants
//! under test are the ones recovery leans on — round-trips are lossless
//! (bit-for-bit, NaNs included), and *any* torn write (truncation at every
//! byte boundary) or flipped byte is detected and reported as an error,
//! never a panic and never a silently half-true record.

// The `proptest!` blocks below expand deeply enough to trip the default
// macro recursion limit.
#![recursion_limit = "512"]

use merging_phases::dse::prelude::*;
use merging_phases::prelude::*;
use mp_dse::engine::space_fingerprint;
use mp_serve::prelude::*;
use proptest::prelude::*;

/// Small spaces (a few hundred scenarios at most) keep the every-byte
/// truncation sweep quadratic-but-cheap.
fn arb_space() -> impl Strategy<Value = ScenarioSpace> {
    (1usize..20, 1usize..=3).prop_map(|(points, apps)| {
        ScenarioSpace::new()
            .with_apps(AppParams::table2_all().into_iter().take(apps).collect::<Vec<_>>())
            .clear_designs()
            .add_symmetric_grid((0..points).map(|i| 1.0 + i as f64 * 0.5))
    })
}

fn arb_state() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("queued"),
        Just("running"),
        Just("suspended"),
        Just("cancelling"),
        Just("cancelled"),
        Just("completed"),
        Just("failed"),
    ]
}

/// Build a fully valid manifest over `space`: the range is an arbitrary
/// (possibly empty) slice of the space, the completed set an arbitrary
/// subset of its windows.
fn build_manifest(
    space: ScenarioSpace,
    cut_a: usize,
    cut_b: usize,
    window: usize,
    done: &[bool],
    state: &str,
    reason: String,
) -> Manifest {
    let (start, end) = {
        let (a, b) = (cut_a % (space.len() + 1), cut_b % (space.len() + 1));
        (a.min(b), a.max(b))
    };
    let total = (end - start).div_ceil(window);
    let completed: Vec<usize> =
        (0..total).filter(|&ordinal| done.get(ordinal).copied().unwrap_or(false)).collect();
    Manifest {
        version: MANIFEST_VERSION.to_string(),
        id: "j00042".to_string(),
        fingerprint: format!("{:016x}", space_fingerprint(&space)),
        start,
        end,
        window,
        checkpoint_every: 4,
        state: state.to_string(),
        reason,
        retries: done.len() as u64,
        checkpoints: completed.len() as u64,
        completed,
        space,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Manifest round-trip is lossless for arbitrary spaces, ranges
    /// (including empty), windows and completed subsets (none / some /
    /// all), in every lifecycle state.
    #[test]
    fn manifest_round_trips_bit_for_bit(
        space in arb_space(),
        cut_a in 0usize..10_000,
        cut_b in 0usize..10_000,
        window in 1usize..96,
        done in proptest::collection::vec(proptest::bool::ANY, 0..64),
        state in arb_state(),
    ) {
        let reason = if state == "failed" { "window 3 failed".to_string() } else { String::new() };
        let manifest = build_manifest(space, cut_a, cut_b, window, &done, state, reason);
        let bytes = manifest.to_bytes();
        let back = Manifest::from_bytes(&bytes).expect("a freshly written manifest parses");
        // Field-level equality plus byte-level: re-serialising the parsed
        // manifest reproduces the file exactly.
        prop_assert_eq!(&back.completed, &manifest.completed);
        prop_assert_eq!(&back.state, &manifest.state);
        prop_assert_eq!((back.start, back.end, back.window), (manifest.start, manifest.end, manifest.window));
        prop_assert_eq!(back.space.len(), manifest.space.len());
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// (b) Torn writes never survive: a manifest truncated at ANY byte
    /// boundary is a descriptive error, and a manifest with any single
    /// byte flipped either errors or (when the flip is semantically
    /// neutral, e.g. hex case in the checksum header) parses back to the
    /// identical manifest. Nothing panics.
    #[test]
    fn torn_or_flipped_manifests_are_always_detected(
        space in arb_space(),
        window in 1usize..64,
        done in proptest::collection::vec(proptest::bool::ANY, 0..32),
        mask in 1u8..=255,
    ) {
        let manifest =
            build_manifest(space, 0, 10_000, window, &done, "running", String::new());
        let bytes = manifest.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Manifest::from_bytes(&bytes[..cut]).is_err(),
                "truncation at byte {cut}/{} must not parse", bytes.len()
            );
        }
        for i in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[i] ^= mask;
            match Manifest::from_bytes(&torn) {
                Err(_) => {}
                Ok(back) => prop_assert!(
                    back.to_bytes() == bytes,
                    "flip at byte {} parsed to a DIFFERENT manifest", i
                ),
            }
        }
    }
}

/// An arbitrary cache payload: raw `u64` bit patterns (so NaNs with
/// arbitrary payloads occur), with extra NaN/infinity entries mixed in.
fn arb_entries() -> impl Strategy<Value = Vec<((u64, u64), u64)>> {
    proptest::collection::vec(
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            prop_oneof![
                0u64..u64::MAX,
                Just(f64::NAN.to_bits()),
                Just(f64::INFINITY.to_bits()),
                Just((-f64::NAN).to_bits()),
                Just(0u64),
            ],
        )
            .prop_map(|(hi, lo, bits)| ((hi, lo), bits)),
        0..160,
    )
}

fn filled(entries: &[((u64, u64), u64)]) -> EvalCache {
    let cache = EvalCache::new();
    for &(key, bits) in entries {
        cache.insert(key, f64::from_bits(bits));
    }
    cache
}

/// The de-duplicated (last write wins) expectation for `entries`.
fn expected(entries: &[((u64, u64), u64)]) -> Vec<((u64, u64), u64)> {
    let mut map = std::collections::BTreeMap::new();
    for &(key, bits) in entries {
        map.insert(key, bits);
    }
    map.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (c) The binary segment and the JSON spill carry exactly the same
    /// information: loading either into a fresh cache reproduces every
    /// entry bit-for-bit (NaN payloads included), and the two loaded
    /// caches re-serialise to identical segments.
    #[test]
    fn segment_and_json_spills_are_bit_equivalent(entries in arb_entries()) {
        let cache = filled(&entries);
        let want = expected(&entries);
        prop_assert_eq!(cache.len(), want.len());

        let from_segment = EvalCache::new();
        let n = from_segment.load_segment(&cache.save_segment()).expect("own segment loads");
        prop_assert_eq!(n, want.len());
        let from_json = EvalCache::new();
        let m = from_json.load_json(&cache.save_json()).expect("own JSON loads");
        prop_assert_eq!(m, want.len());

        for &(key, bits) in &want {
            let a = from_segment.get(key).expect("segment kept the key");
            let b = from_json.get(key).expect("JSON kept the key");
            prop_assert!(a.to_bits() == bits, "segment bits for {:?}", key);
            prop_assert!(b.to_bits() == bits, "JSON bits for {:?}", key);
        }
        // Same contents ⇒ same canonical bytes (segments sort entries).
        prop_assert_eq!(from_segment.save_segment(), from_json.save_segment());
    }

    /// (d) A segment truncated at ANY byte boundary (and any single
    /// flipped byte) is rejected and loads nothing — the cache under
    /// restore stays exactly as it was.
    #[test]
    fn torn_segments_load_nothing(
        entries in arb_entries(),
        mask in 1u8..=255,
    ) {
        let bytes = filled(&entries).save_segment();
        for cut in 0..bytes.len() {
            let target = EvalCache::new();
            prop_assert!(
                target.load_segment(&bytes[..cut]).is_err(),
                "truncation at byte {cut}/{} must not load", bytes.len()
            );
            prop_assert!(target.is_empty(), "rejected segment must insert nothing");
        }
        for i in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[i] ^= mask;
            let target = EvalCache::new();
            if target.load_segment(&torn).is_err() {
                prop_assert!(target.is_empty(), "rejected segment must insert nothing");
            }
            // A flip the CRC theoretically can't catch doesn't exist for a
            // single byte (8-bit burst), but the property we need is only
            // "no panic, no partial load" — asserted above.
        }
    }
}
