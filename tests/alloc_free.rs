//! Asserts the acceptance criterion of the columnar sweep path: after batch
//! setup, the analytic batched evaluation performs **zero** heap allocations
//! per scenario. A counting global allocator (installed for this test binary
//! only) measures exact allocation counts around the hot loops.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mp_dse::prelude::*;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::perf::PerfModel;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counter above is process-global, but the harness runs tests on
/// parallel threads — one test's (legitimate, setup-time) allocations would
/// race into another's counting window. Serialise the windows.
static WINDOW: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct Counting;

// SAFETY: delegates to `System`; counting does not affect behaviour.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(AppParams::paper_catalog())
        .with_budgets(vec![128.0, 256.0])
        .clear_designs()
        .add_symmetric_grid((0..96).map(|i| 1.0 + i as f64))
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
        .with_growths(vec![
            GrowthFunction::Linear,
            GrowthFunction::Superlinear(1.55),
            GrowthFunction::Measured(vec![(1.0, 0.0), (8.0, 6.0)]),
        ])
        .with_perfs(vec![PerfModel::Pollack, PerfModel::Power(0.75)])
}

#[test]
fn analytic_batched_path_allocates_nothing_per_scenario() {
    let _window = WINDOW.lock().unwrap();
    let space = space();
    let tables = SpaceTables::new(&space);
    let n = space.len();
    let mut out = vec![f64::NAN; n];

    // Warm-up covering every batch once (faults, lazily-initialised state).
    for start in (0..n).step_by(1024) {
        let end = (start + 1024).min(n);
        AnalyticBackend.evaluate_batch_prepared(&space, &tables, start..end, &mut out[start..end]);
    }

    let before = allocations();
    for _ in 0..3 {
        for start in (0..n).step_by(1024) {
            let end = (start + 1024).min(n);
            AnalyticBackend.evaluate_batch_prepared(
                &space,
                &tables,
                start..end,
                &mut out[start..end],
            );
        }
    }
    let after = allocations();
    assert_eq!(after - before, 0, "analytic batched evaluation must not allocate");
    assert!(out.iter().any(|v| v.is_finite()), "sweep produced real results");
}

#[test]
fn cache_probe_and_insert_allocate_nothing_after_reserve() {
    let _window = WINDOW.lock().unwrap();
    let space = space();
    let tables = SpaceTables::new(&space);
    let n = space.len();
    let mut out = vec![f64::NAN; n];
    AnalyticBackend.evaluate_batch_prepared(&space, &tables, 0..n, &mut out);
    let keys: Vec<(u64, u64)> =
        (0..n).map(|i| space.scenario(i).canonical_key("analytic")).collect();

    let cache = EvalCache::new();
    cache.reserve(n);
    let before = allocations();
    cache.prefetch(&keys);
    cache.insert_batch(&keys, &out);
    for &key in &keys {
        assert!(cache.peek(key).is_some());
    }
    let after = allocations();
    assert_eq!(after - before, 0, "reserved cache traffic must not allocate");
}

#[test]
fn lane_and_forced_scalar_paths_both_allocate_nothing() {
    let _window = WINDOW.lock().unwrap();
    let space = space();
    let tables = SpaceTables::new(&space);
    let n = space.len();
    let mut lane_out = vec![f64::NAN; n];
    let mut scalar_out = vec![f64::NAN; n];

    // Warm-up arms the dispatch state (feature detection, env override) so
    // the counting windows measure only the evaluation itself.
    AnalyticBackend.evaluate_batch_prepared(&space, &tables, 0..n, &mut lane_out);

    let before = allocations();
    AnalyticBackend.evaluate_batch_prepared(&space, &tables, 0..n, &mut lane_out);
    assert_eq!(allocations() - before, 0, "lane path must not allocate");

    mp_model::simd::set_forced_scalar(true);
    let before = allocations();
    AnalyticBackend.evaluate_batch_prepared(&space, &tables, 0..n, &mut scalar_out);
    let scalar_allocs = allocations() - before;
    mp_model::simd::set_forced_scalar(false);
    assert_eq!(scalar_allocs, 0, "forced-scalar path must not allocate");

    // Same window, both kernels: the dispatch toggle changes throughput
    // only, never bits.
    for (i, (a, b)) in lane_out.iter().zip(&scalar_out).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "lane/scalar divergence at {i}");
    }
}

#[test]
fn batched_cache_probe_allocates_nothing_after_reserve() {
    let _window = WINDOW.lock().unwrap();
    let space = space();
    let tables = SpaceTables::new(&space);
    let n = space.len();
    let mut out = vec![f64::NAN; n];
    AnalyticBackend.evaluate_batch_prepared(&space, &tables, 0..n, &mut out);
    let keys: Vec<(u64, u64)> =
        (0..n).map(|i| space.scenario(i).canonical_key("analytic")).collect();
    let mut speedups = vec![f64::NAN; n];
    let mut holes = vec![false; n];

    let cache = EvalCache::new();
    cache.reserve(n);
    cache.insert_batch(&keys, &out);
    let before = allocations();
    let missing = cache.get_batch(&keys, &mut speedups, &mut holes);
    let after = allocations();
    assert_eq!(after - before, 0, "batched probe must not allocate");
    assert_eq!(missing, 0, "every inserted key must probe back");
    for (got, want) in speedups.iter().zip(&out) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}

#[test]
fn full_engine_sweep_allocations_do_not_scale_with_scenario_count() {
    let _window = WINDOW.lock().unwrap();
    // The engine may allocate during setup (records vector, tables, scratch)
    // but per-scenario allocation must be zero: growing the space 16× must
    // not grow the allocation count beyond the setup's own (bounded) needs.
    let small = ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .clear_designs()
        .add_symmetric_grid((0..24).map(|i| 1.0 + i as f64));
    let large = ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .clear_designs()
        .add_symmetric_grid((0..24).map(|i| 1.0 + i as f64))
        .with_budgets(vec![64.0, 128.0, 192.0, 256.0])
        .with_perfs(vec![
            PerfModel::Pollack,
            PerfModel::Power(0.75),
            PerfModel::Power(0.6),
            PerfModel::Linear,
        ]);
    assert_eq!(large.len(), 16 * small.len());
    let engine = Engine::new(1);
    let config = SweepConfig { batch_size: 64, use_cache: false };

    // Warm both shapes once so lazily-allocated state exists.
    engine.sweep(&small, &AnalyticBackend, &config);
    engine.sweep(&large, &AnalyticBackend, &config);

    let before_small = allocations();
    engine.sweep(&small, &AnalyticBackend, &config);
    let small_allocs = allocations() - before_small;

    let before_large = allocations();
    engine.sweep(&large, &AnalyticBackend, &config);
    let large_allocs = allocations() - before_large;

    // Setup allocations grow with axis lengths (tables, records buffer), not
    // with the scenario product: 16× the scenarios must cost far less than
    // 16× the allocations, and both counts stay tiny in absolute terms.
    assert!(
        large_allocs < small_allocs + 64,
        "sweep allocations scale with the space: {small_allocs} -> {large_allocs}"
    );
}
