//! Property-based tests of the `mp-dse` exploration engine: Pareto frontiers
//! are minimal and dominating, memoisation never changes a single bit,
//! engine-backed sweeps reproduce the legacy `model::explore` loops, and the
//! analytic and simulation backends agree where their assumptions overlap.

// The `proptest!` blocks below expand deeply enough to trip the default
// macro recursion limit.
#![recursion_limit = "512"]

use merging_phases::dse::prelude::*;
use merging_phases::model::explore;
use merging_phases::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = AppParams> {
    (0.9f64..=0.9999, 0.1f64..=0.9, 0.0f64..=2.0)
        .prop_map(|(f, fcon, fored)| AppParams::new("prop", f, fcon, fored, 0.0).unwrap())
}

fn arb_growth() -> impl Strategy<Value = GrowthFunction> {
    prop_oneof![
        Just(GrowthFunction::Constant),
        Just(GrowthFunction::Linear),
        Just(GrowthFunction::Logarithmic),
        Just(GrowthFunction::Superlinear(1.55)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) The Pareto frontier is minimal (no frontier point dominates
    /// another) and dominates-or-equals every evaluated point, on both cost
    /// axes, for arbitrary record clouds including invalid (NaN) entries.
    #[test]
    fn pareto_frontier_is_minimal_and_dominating(
        points in proptest::collection::vec((0.1f64..1000.0, 1.0f64..512.0), 1..120),
        nans in 0usize..4,
    ) {
        let mut records: Vec<EvalRecord> = points
            .iter()
            .enumerate()
            .map(|(index, &(speedup, cores))| EvalRecord {
                index,
                speedup,
                cores,
                area: 256.0 / cores,
            })
            .collect();
        for i in 0..nans {
            records.push(EvalRecord { index: points.len() + i, speedup: f64::NAN, cores: 1.0, area: 1.0 });
        }
        for cost in [CostAxis::Cores, CostAxis::Area] {
            let frontier = merging_phases::dse::analysis::pareto_frontier(&records, cost);
            prop_assert!(!frontier.is_empty());
            // Minimal: frontier points never dominate each other.
            for a in &frontier {
                for b in &frontier {
                    if a.index != b.index {
                        prop_assert!(
                            !merging_phases::dse::analysis::dominates(a, b, cost),
                            "frontier point {} dominates {}", a.index, b.index
                        );
                    }
                }
            }
            // Dominating: every valid record is dominated-or-equal.
            for r in records.iter().filter(|r| r.is_valid()) {
                let covered = frontier.iter().any(|f| {
                    merging_phases::dse::analysis::dominates(f, r, cost)
                        || (cost.cost(f) == cost.cost(r) && f.speedup == r.speedup)
                });
                prop_assert!(covered, "record {} escapes the frontier", r.index);
            }
        }
    }

    /// (b) Memoised and un-memoised sweeps are bit-identical, as is a re-sweep
    /// answered entirely from the warm cache.
    #[test]
    fn cached_and_uncached_sweeps_are_bit_identical(
        params in arb_params(),
        growth in arb_growth(),
        budget in 16.0f64..512.0,
    ) {
        let space = ScenarioSpace::new()
            .with_apps(vec![params])
            .with_budgets(vec![budget])
            .with_growths(vec![growth])
            .clear_designs()
            .add_symmetric_grid((0..24).map(|i| 1.0 + i as f64 * 13.0))
            .add_asymmetric_grid([1.0, 4.0], [8.0, 64.0, 300.0]);
        let engine = Engine::new(2);
        let cold = engine.sweep(&space, &AnalyticBackend, &SweepConfig { batch_size: 8, use_cache: false });
        let caching = engine.sweep(&space, &AnalyticBackend, &SweepConfig { batch_size: 8, use_cache: true });
        let warm = engine.sweep(&space, &AnalyticBackend, &SweepConfig { batch_size: 8, use_cache: true });
        prop_assert_eq!(warm.stats.cache_misses, 0);
        prop_assert!(warm.stats.cache_hits as usize == space.len());
        for ((a, b), c) in cold.records.iter().zip(caching.records.iter()).zip(warm.records.iter()) {
            prop_assert!(a.speedup.to_bits() == b.speedup.to_bits(), "cold vs caching at {}", a.index);
            prop_assert!(a.speedup.to_bits() == c.speedup.to_bits(), "cold vs warm at {}", a.index);
        }
    }

    /// (c) The engine-backed figure sweeps reproduce the legacy
    /// `model::explore` loops bit-for-bit on the paper's power-of-two grid.
    #[test]
    fn analytic_sweeps_match_legacy_explore(params in arb_params(), growth in arb_growth()) {
        let budget = ChipBudget::paper_default();
        let model = ExtendedModel::new(params, growth, PerfModel::Pollack);

        let ours = merging_phases::dse::curves::symmetric_curve(&model, budget, "x").unwrap();
        let legacy = explore::symmetric_curve(&model, budget, "x").unwrap();
        prop_assert_eq!(ours.points.len(), legacy.points.len());
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            prop_assert!(a.area == b.area && a.cores == b.cores);
            prop_assert!(a.speedup.to_bits() == b.speedup.to_bits(), "r={}", a.area);
        }

        let ours = merging_phases::dse::curves::asymmetric_curve(&model, budget, 4.0, "x").unwrap();
        let legacy = explore::asymmetric_curve(&model, budget, 4.0, "x").unwrap();
        prop_assert_eq!(ours.points.len(), legacy.points.len());
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            prop_assert!(a.speedup.to_bits() == b.speedup.to_bits(), "rl={}", a.area);
        }
    }

    /// (d) Where the backends' assumptions overlap — linear growth with a
    /// unit overhead coefficient, unit cores, merge tables that stay
    /// L1-resident — the analytic and simulation backends agree within 2 %.
    #[test]
    fn analytic_and_sim_backends_agree_on_small_grids(
        f in 0.99f64..=0.9999,
        fcon in 0.2f64..=0.9,
    ) {
        let app = AppParams::new("overlap", f, fcon, 1.0, 0.0).unwrap();
        let space = ScenarioSpace::new()
            .with_apps(vec![app])
            .with_budgets(vec![2.0, 4.0, 8.0, 16.0])
            .with_growths(vec![GrowthFunction::Linear])
            .clear_designs()
            .add_symmetric_grid([1.0]);
        let engine = Engine::new(1);
        let config = SweepConfig { batch_size: 16, use_cache: false };
        let analytic = engine.sweep(&space, &AnalyticBackend, &config);
        let sim_backend = SimBackend::new().with_total_ops(1e5);
        let sim = engine.sweep(&space, &sim_backend, &config);
        for (a, s) in analytic.records.iter().zip(sim.records.iter()) {
            prop_assert!(a.is_valid() && s.is_valid());
            let rel = (a.speedup - s.speedup).abs() / a.speedup;
            prop_assert!(
                rel < 0.02,
                "cores={}: analytic {} vs sim {} (rel {rel})", a.cores, a.speedup, s.speedup
            );
        }
    }
}

#[test]
fn parallel_sweep_of_a_mixed_space_is_deterministic() {
    // A deterministic cross-backend smoke test kept out of proptest to bound
    // runtime: a mixed symmetric/asymmetric space with unfit designs, swept
    // in parallel with memoisation, twice, through two engines.
    let space = ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .with_budgets(vec![64.0, 256.0])
        .with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic])
        .clear_designs()
        .add_symmetric_grid((0..40).map(|i| 1.0 + i as f64 * 7.0))
        .add_asymmetric_grid([1.0, 2.0], [4.0, 32.0, 128.0]);
    let a = Engine::new(4);
    let b = Engine::new(1);
    let config = SweepConfig { batch_size: 32, use_cache: true };
    let first = a.sweep(&space, &AnalyticBackend, &config);
    let second = a.sweep(&space, &AnalyticBackend, &config);
    let reference =
        b.sweep(&space, &AnalyticBackend, &SweepConfig { batch_size: 1024, use_cache: false });
    assert_eq!(first.stats.scenarios, space.len());
    assert!(first.stats.valid < space.len(), "some designs must not fit the 64-BCE budget");
    assert_eq!(second.stats.cache_misses, 0);
    for ((x, y), z) in first.records.iter().zip(second.records.iter()).zip(reference.records.iter())
    {
        assert_eq!(x.speedup.to_bits(), y.speedup.to_bits());
        assert_eq!(x.speedup.to_bits(), z.speedup.to_bits());
    }
}

#[test]
fn comm_backend_tracks_the_paper_figure7_configuration() {
    // The comm backend on the fig7 grid must reproduce the CommModel peak
    // (46.6 at r = 8 for the non-emb/mod-con/high-ovh class).
    let class = merging_phases::model::params::AppClass {
        embarrassingly_parallel: false,
        high_constant: false,
        high_reduction_overhead: true,
    };
    let space = ScenarioSpace::new()
        .with_apps(vec![class.params()])
        .with_growths(vec![GrowthFunction::Constant])
        .clear_designs()
        .add_symmetric_grid(ChipBudget::paper_default().power_of_two_core_sizes());
    let engine = Engine::new(1);
    let result = engine.sweep(&space, &CommBackend::new(), &SweepConfig::default());
    let best = merging_phases::dse::analysis::top_k(&result.records, 1)[0];
    assert_eq!(best.area, 8.0, "peak should sit at r = 8");
    assert!((best.speedup - 46.6).abs() < 1.5, "got {}", best.speedup);
}

fn tagged_record(index: usize, run: usize, slot: usize) -> EvalRecord {
    // The payload encodes provenance so any reordering among equal keys (or
    // misattribution across runs) breaks bit-identity, not just ordering.
    EvalRecord {
        index,
        speedup: (run * 10_000 + slot) as f64,
        cores: run as f64,
        area: slot as f64,
    }
}

/// Body of (f): the Merge-Path partitioned merge is bit-identical to the
/// stable sequential k-way merge for arbitrary run shapes — empty runs,
/// single elements, heavy skew, duplicated keys across runs — at every
/// partition count.
fn check_merge_path_equals_sequential(raw: &[Vec<usize>], parts: usize) {
    let runs_owned: Vec<Vec<EvalRecord>> = raw
        .iter()
        .enumerate()
        .map(|(run, keys)| {
            let mut keys = keys.clone();
            keys.sort_unstable();
            keys.iter().enumerate().map(|(slot, &k)| tagged_record(k, run, slot)).collect()
        })
        .collect();
    let runs: Vec<&[EvalRecord]> = runs_owned.iter().map(|r| r.as_slice()).collect();
    let want = sequential_merge(&runs);
    let got = merge_runs(&runs, parts);
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "stability violated");
        assert_eq!(a.cores.to_bits(), b.cores.to_bits());
        assert_eq!(a.area.to_bits(), b.area.to_bits());
    }
}

/// Body of (g): `Engine::sweep_ranges` over any disjoint decomposition of a
/// space — in any order, including empty slices — merges back to exactly
/// the single full sweep, records and counts alike.
fn check_sweep_ranges_recombine(mut cuts: Vec<usize>, reverse: bool) {
    let space = ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .clear_designs()
        .add_symmetric_grid((0..18).map(|i| 1.0 + i as f64 * 6.0));
    let n = space.len();
    cuts.retain(|&c| c <= n);
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    let mut ranges: Vec<std::ops::Range<usize>> =
        cuts.windows(2).map(|pair| pair[0]..pair[1]).collect();
    if reverse {
        ranges.reverse();
    }

    let engine = Engine::new(2);
    let config = SweepConfig { batch_size: 16, use_cache: false };
    let handle = SweepHandle::new(&space);
    let full = engine.sweep_range(&handle, &AnalyticBackend, &config, 0..n);
    let pieced = engine.sweep_ranges(&handle, &AnalyticBackend, &config, &ranges);
    assert_eq!(pieced.stats.scenarios, full.stats.scenarios);
    assert_eq!(pieced.stats.valid, full.stats.valid);
    assert_eq!(pieced.records.len(), full.records.len());
    for (a, b) in pieced.records.iter().zip(full.records.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (f) Merge Path vs the stable sequential reference.
    #[test]
    fn merge_path_equals_sequential_merge_for_arbitrary_runs(
        raw in proptest::collection::vec(proptest::collection::vec(0usize..400, 0..60), 0..6),
        parts in 1usize..10,
    ) {
        check_merge_path_equals_sequential(&raw, parts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (g) `sweep_ranges` over arbitrary decompositions.
    #[test]
    fn sweep_ranges_recombines_to_the_full_sweep(
        cuts in proptest::collection::vec(0usize..=72, 0..5),
        reverse in proptest::bool::ANY,
    ) {
        check_sweep_ranges_recombine(cuts, reverse);
    }
}
