//! Lifecycle tests of the durable-job layer: submit → run → complete with
//! checkpoints on disk, failure-cap parking with an inspectable reason and
//! resume-after-fault, graceful cancellation, and the protocol's `job_*`
//! verb dispatch (with and without a manager attached).
//!
//! The crash/restart recovery drill lives in `tests/job_recovery.rs` — its
//! `dse_scenarios_evaluated` delta assertion needs a test process of its
//! own (the counter is process-global).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use merging_phases::dse::prelude::*;
use mp_dse::fault::{FaultPlan, FaultyBackend};
use mp_serve::prelude::*;

fn space(points: usize) -> ScenarioSpace {
    // Default budget, symmetric designs only: every scenario is valid, so
    // a fully swept space means a fully warm cache.
    ScenarioSpace::new()
        .clear_designs()
        .add_symmetric_grid((0..points).map(|i| 1.0 + i as f64 * 0.5))
}

fn service(shards: usize, backend: Arc<dyn EvalBackend + Send + Sync>) -> Arc<SweepService> {
    Arc::new(SweepService::new(
        backend,
        &ServiceConfig {
            shards,
            threads_per_shard: 1,
            batch_size: 256,
            ..ServiceConfig::default()
        },
    ))
}

/// A per-test scratch directory, removed on drop.
struct StoreDir(PathBuf);

impl StoreDir {
    fn new(tag: &str) -> StoreDir {
        let dir = std::env::temp_dir().join(format!("mp-serve-jobs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create store dir");
        StoreDir(dir)
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wait_for(
    manager: &JobManager,
    id: &str,
    timeout: Duration,
    good: impl Fn(&JobSnapshot) -> bool,
) -> JobSnapshot {
    let deadline = Instant::now() + timeout;
    loop {
        let snapshot = manager.status(id).expect("job exists");
        if good(&snapshot) {
            return snapshot;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting on job {id}; last snapshot: {snapshot:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Read the manifest at `path` once it reports `state` — the runner flips
/// the in-memory state first and persists the final checkpoint just after,
/// so a disk read can trail a settled status by a moment.
fn wait_manifest(path: &std::path::Path, state: &str) -> Manifest {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(bytes) = std::fs::read(path) {
            let manifest = Manifest::from_bytes(&bytes).expect("manifest stays valid");
            if manifest.state == state {
                return manifest;
            }
            assert!(
                Instant::now() < deadline,
                "manifest at {} never reached `{state}`: {manifest:?}",
                path.display()
            );
        } else {
            assert!(Instant::now() < deadline, "manifest at {} never appeared", path.display());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Wait for the jobs dir to settle clean: no manifests, cache segments or
/// `.tmp` leftovers. The completion GC runs just after the final status
/// checkpoint, so a settled status can precede the unlinks by a moment.
fn wait_clean(dir: &std::path::Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let leftovers: Vec<String> = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|name| {
                        name.ends_with(".manifest")
                            || name.ends_with(".seg")
                            || name.ends_with(".tmp")
                    })
                    .collect()
            })
            .unwrap_or_default();
        if leftovers.is_empty() {
            return;
        }
        assert!(Instant::now() < deadline, "jobs dir never came clean; leftovers: {leftovers:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Fast-backoff config so failure-path tests don't sleep for seconds.
fn test_config(failure_cap: u32) -> JobConfig {
    JobConfig { checkpoint_every: 2, failure_cap, retry: RetryPolicy::backoff_ms(1, 4) }
}

#[test]
fn submitted_job_completes_checkpoints_and_warms_the_cache() {
    let store = StoreDir::new("lifecycle");
    let space = space(512);
    let service = service(2, Arc::new(AnalyticBackend));
    let manager =
        JobManager::new(Arc::clone(&service), Some(store.0.clone()), test_config(5)).unwrap();

    let submitted = manager.submit(space.clone(), 0..space.len(), 64, 2).unwrap();
    assert_eq!(submitted.windows_total, 8);
    assert_eq!(submitted.window, 64);
    assert_eq!(submitted.checkpoint_every, 2);

    let done =
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "completed");
    assert_eq!(done.windows_completed, done.windows_total);
    assert_eq!(done.scenarios_completed, space.len());
    assert!(done.checkpoints >= 2, "cadence-2 over 8 windows checkpoints repeatedly: {done:?}");

    // Completion garbage-collects the durable artifacts: the manifest and
    // — with no other job left to resume — the spilled cache segments.
    wait_clean(&store.0);
    assert!(!store.0.join(format!("{}.manifest", done.id)).exists());
    assert!(!store.0.join("cache-shard-0.seg").exists());

    // The job's product: a warm cache answering the whole space, records
    // bit-identical to a direct engine sweep.
    let warm = service.sweep(&space, None).unwrap();
    assert_eq!(warm.stats.cache_hits as usize, space.len());
    let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
    for (a, b) in warm.records.iter().zip(direct.records.iter()) {
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }
}

#[test]
fn persistent_faults_park_the_job_failed_and_resume_completes_after_clearing() {
    let space = space(256);
    let plan = FaultPlan::new();
    let faulty: Arc<dyn EvalBackend + Send + Sync> =
        Arc::new(FaultyBackend::new(AnalyticBackend, Arc::clone(&plan)));
    let service = service(2, faulty);
    let manager = JobManager::new(Arc::clone(&service), None, test_config(3)).unwrap();

    plan.fail_all();
    let submitted = manager.submit(space.clone(), 0..space.len(), 64, 1).unwrap();
    let failed =
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "failed");
    assert!(
        failed.reason.contains("injected fault"),
        "the failure cause must be inspectable via status: {failed:?}"
    );
    assert!(failed.retries >= 3, "every attempt of the capped run counts: {failed:?}");
    assert_eq!(failed.windows_completed, 0);

    // Cancelling a failed job is allowed (clearer state), resume un-parks.
    plan.clear_fault();
    let resumed = manager.resume(&submitted.id).unwrap();
    // The snapshot can already show "running" if the runner wins the race.
    assert!(
        resumed.state == "queued" || resumed.state == "running",
        "resume un-parks the job: {resumed:?}"
    );
    assert!(resumed.reason.is_empty(), "resume clears the parked reason");
    let done =
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "completed");
    assert_eq!(done.windows_completed, done.windows_total);
    let warm = service.sweep(&space, None).unwrap();
    assert_eq!(warm.stats.cache_hits as usize, space.len());
}

#[test]
fn one_shot_fault_is_retried_in_place_and_the_job_still_completes() {
    let space = space(256);
    let plan = FaultPlan::new();
    let faulty: Arc<dyn EvalBackend + Send + Sync> =
        Arc::new(FaultyBackend::new(AnalyticBackend, Arc::clone(&plan)));
    let service = service(1, faulty);
    let manager = JobManager::new(Arc::clone(&service), None, test_config(5)).unwrap();

    // The second batch any thread evaluates panics once; the runner's
    // retry re-sweeps that window and succeeds.
    plan.fail_batch(1);
    let submitted = manager.submit(space.clone(), 0..space.len(), 64, 1).unwrap();
    let done =
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "completed");
    assert!(done.retries >= 1, "the injected failure must be visible as a retry: {done:?}");
    assert_eq!(done.windows_completed, done.windows_total);
}

#[test]
fn cancel_is_graceful_and_a_cancelled_job_resumes_to_completion() {
    let store = StoreDir::new("cancel");
    let space = space(2048);
    let plan = FaultPlan::new();
    plan.set_latency(Duration::from_millis(20));
    let faulty: Arc<dyn EvalBackend + Send + Sync> =
        Arc::new(FaultyBackend::new(AnalyticBackend, Arc::clone(&plan)));
    let service = service(2, faulty);
    let manager =
        JobManager::new(Arc::clone(&service), Some(store.0.clone()), test_config(5)).unwrap();

    let submitted = manager.submit(space.clone(), 0..space.len(), 128, 1).unwrap();
    // Let it make some progress, then cancel mid-run.
    wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.windows_completed >= 2);
    let cancelling = manager.cancel(&submitted.id).unwrap();
    assert!(
        cancelling.state == "cancelling" || cancelling.state == "cancelled",
        "cancel transitions immediately: {cancelling:?}"
    );
    let parked =
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "cancelled");
    assert!(parked.windows_completed < parked.windows_total, "cancelled before the end");
    assert!(parked.checkpoints >= 1, "graceful cancel checkpoints before parking");

    // The manifest on disk agrees with the parked snapshot.
    let manifest = wait_manifest(&store.0.join(format!("{}.manifest", parked.id)), "cancelled");
    assert_eq!(manifest.completed.len(), parked.windows_completed);

    // No faults to clear: speed the rest up and resume to completion.
    plan.set_latency(Duration::ZERO);
    manager.resume(&parked.id).unwrap();
    let done = wait_for(&manager, &parked.id, Duration::from_secs(30), |s| s.state == "completed");
    assert_eq!(done.windows_completed, done.windows_total);
    // Cancelling a completed job is refused.
    assert!(manager.cancel(&done.id).is_err());
    // The cancelled manifest was a live resume point and survived; the
    // eventual completion collects it along with the segments.
    wait_clean(&store.0);
}

#[test]
fn restart_after_completion_finds_a_clean_dir_and_sweeps_crash_leftovers() {
    let store = StoreDir::new("gc-restart");
    let space = space(256);
    {
        let service = service(2, Arc::new(AnalyticBackend));
        let manager =
            JobManager::new(Arc::clone(&service), Some(store.0.clone()), test_config(5)).unwrap();
        let submitted = manager.submit(space.clone(), 0..space.len(), 64, 2).unwrap();
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "completed");
        wait_clean(&store.0);
        manager.kill();
    }

    // Second process generation over the same dir: nothing to re-parse,
    // nothing restored, dir still clean.
    {
        let service = service(2, Arc::new(AnalyticBackend));
        let manager =
            JobManager::new(Arc::clone(&service), Some(store.0.clone()), test_config(5)).unwrap();
        assert!(manager.list().is_empty(), "a completed job leaves no manifest to restore");
        wait_clean(&store.0);
        manager.kill();
    }

    // Crash-equivalent leftovers: a *completed* manifest the previous
    // process died before collecting, plus an orphaned cache segment and a
    // torn tmp file. Fabricate the manifest by settling a real queued one.
    {
        let svc = service(2, Arc::new(AnalyticBackend));
        let manager =
            JobManager::new(Arc::clone(&svc), Some(store.0.clone()), test_config(5)).unwrap();
        let submitted = manager.submit(space.clone(), 0..space.len(), 64, 2).unwrap();
        wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "completed");
        wait_clean(&store.0);
        manager.kill();

        let mut manifest = Manifest {
            version: MANIFEST_VERSION.to_string(),
            id: submitted.id.clone(),
            fingerprint: String::new(),
            start: 0,
            end: space.len(),
            window: 64,
            checkpoint_every: 2,
            state: "completed".to_string(),
            reason: String::new(),
            retries: 0,
            checkpoints: 4,
            completed: (0..4).collect(),
            space: space.clone(),
        };
        // Round-trip a real queued manifest for the fingerprint the
        // validator recomputes from the space.
        let probe = JobManager::new(
            service(2, Arc::new(AnalyticBackend)),
            Some(store.0.clone()),
            JobConfig { checkpoint_every: 1_000_000, ..test_config(5) },
        )
        .unwrap();
        probe.kill();
        manifest.fingerprint = {
            let queued = probe.submit(space.clone(), 0..space.len(), 64, 1_000_000).unwrap();
            let path = store.0.join(format!("{}.manifest", queued.id));
            let parsed = wait_manifest(&path, "queued");
            std::fs::remove_file(&path).unwrap();
            parsed.fingerprint
        };
        drop(probe);
        atomic_write(&store.0.join(format!("{}.manifest", manifest.id)), &manifest.to_bytes())
            .unwrap();
        std::fs::write(store.0.join("cache-shard-0.seg"), b"orphan").unwrap();
        std::fs::write(store.0.join("j99999.manifest.tmp"), b"torn").unwrap();
    }

    // Restore sweeps all three leftovers but keeps the completion record
    // queryable in memory.
    let service = service(2, Arc::new(AnalyticBackend));
    let manager =
        JobManager::new(Arc::clone(&service), Some(store.0.clone()), test_config(5)).unwrap();
    let restored = manager.list();
    assert_eq!(restored.len(), 1, "the completed job restores in memory: {restored:?}");
    assert_eq!(restored[0].state, "completed");
    wait_clean(&store.0);
}

#[test]
fn one_scenario_jobs_complete_at_shard_counts_beyond_the_space() {
    for shards in [4, 8] {
        let space = space(1);
        assert_eq!(space.len(), 1);
        let service = service(shards, Arc::new(AnalyticBackend));
        let manager = JobManager::new(Arc::clone(&service), None, test_config(5)).unwrap();
        let submitted = manager.submit(space.clone(), 0..1, 0, 1).unwrap();
        assert_eq!(submitted.windows_total, 1, "one window at {shards} shards");
        let done =
            wait_for(&manager, &submitted.id, Duration::from_secs(30), |s| s.state == "completed");
        assert_eq!(done.scenarios_completed, 1);
        // The single scenario went through exactly one shard's cache; a
        // repeat sweep answers warm and bit-identical to the direct engine.
        let warm = service.sweep(&space, None).unwrap();
        assert_eq!(warm.stats.cache_hits, 1, "warm repeat at {shards} shards");
        assert_eq!(warm.records.len(), 1);
        let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
        assert_eq!(warm.records[0].speedup.to_bits(), direct.records[0].speedup.to_bits());
    }
}

#[test]
fn job_verbs_dispatch_through_the_service_and_answer_without_a_manager() {
    let space = space(128);

    // Without a manager: every job verb answers a descriptive error.
    let bare = service(1, Arc::new(AnalyticBackend));
    match bare.handle(&Request::JobStatus { id: "j00001".to_string() }).as_slice() {
        [Response::Error { message }] => {
            assert!(message.contains("durable jobs are not enabled"), "got: {message}")
        }
        other => panic!("expected an error response, got {other:?}"),
    }

    // With one: submit/status/cancel/resume round-trip as Job snapshots.
    let service = service(1, Arc::new(AnalyticBackend));
    let _manager = JobManager::new(Arc::clone(&service), None, test_config(5)).unwrap();
    let submitted = match service
        .handle(&Request::JobSubmit {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 32,
            checkpoint_every: 2,
        })
        .as_slice()
    {
        [Response::Job(snapshot)] => snapshot.clone(),
        other => panic!("expected a job snapshot, got {other:?}"),
    };
    assert_eq!(submitted.window, 32);
    match service.handle(&Request::JobStatus { id: submitted.id.clone() }).as_slice() {
        [Response::Job(snapshot)] => assert_eq!(snapshot.id, submitted.id),
        other => panic!("expected a job snapshot, got {other:?}"),
    }
    // Unknown ids are invalid, not busy.
    match service.handle(&Request::JobStatus { id: "nope".to_string() }).as_slice() {
        [Response::Error { message }] => assert!(message.contains("unknown job id")),
        other => panic!("expected an error response, got {other:?}"),
    }
    // Submitting an empty range is refused up front.
    match service
        .handle(&Request::JobSubmit {
            space: SpaceSpec::Explicit(space),
            start: 5,
            end: 5,
            chunk: 0,
            checkpoint_every: 0,
        })
        .as_slice()
    {
        [Response::Error { message }] => assert!(message.contains("invalid")),
        other => panic!("expected an error response, got {other:?}"),
    }
}
