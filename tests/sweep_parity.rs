//! Bit-parity regression suite for the columnar sweep path.
//!
//! The zero-allocation pipeline (prepared models, space tables, lock-free
//! memoisation cache, allocation-free simulator kernel) is only allowed to
//! be *faster* — every sweep must reproduce the reference per-scenario
//! evaluation bit for bit, NaN markers included, cached or not, single- or
//! multi-threaded. These tests sweep mixed analytic + cmpsim + measured
//! spaces through both paths and compare raw `f64` bit patterns.

use mp_dse::prelude::*;
use mp_model::calibrate::{CalibratedParams, MeasuredRun};
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::perf::PerfModel;
use proptest::prelude::*;

/// The reference path: per-scenario `evaluate` with the engine's
/// fit-check-then-NaN convention, no batching, no tables, no cache.
fn reference_sweep(space: &ScenarioSpace, backend: &dyn EvalBackend) -> Vec<EvalRecord> {
    (0..space.len())
        .map(|index| {
            let scenario = space.scenario(index);
            let speedup = if scenario.design.fits(scenario.budget) {
                backend.evaluate(&scenario).unwrap_or(f64::NAN)
            } else {
                f64::NAN
            };
            EvalRecord { index, speedup, cores: scenario.cores(), area: scenario.area() }
        })
        .collect()
}

fn assert_bit_identical(label: &str, reference: &[EvalRecord], got: &[EvalRecord]) {
    assert_eq!(reference.len(), got.len(), "{label}: record count");
    for (r, g) in reference.iter().zip(got) {
        assert_eq!(r.index, g.index, "{label}: index order");
        assert_eq!(
            r.speedup.to_bits(),
            g.speedup.to_bits(),
            "{label}: speedup bits at index {} ({} vs {})",
            r.index,
            r.speedup,
            g.speedup
        );
        assert_eq!(r.cores.to_bits(), g.cores.to_bits(), "{label}: cores at index {}", r.index);
        assert_eq!(r.area.to_bits(), g.area.to_bits(), "{label}: area at index {}", r.index);
    }
}

/// A space that mixes valid and invalid (over-budget) designs, symmetric and
/// asymmetric organisations, and parameterised growth/perf variants — the
/// shapes that exercise every branch of the columnar tables.
fn mixed_space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .with_budgets(vec![64.0, 256.0])
        .clear_designs()
        .add_symmetric_grid([1.0, 3.7, 16.0, 64.0, 100.0, 300.0])
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0, 256.0])
        .with_growths(vec![
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Superlinear(1.55),
            GrowthFunction::Measured(vec![(1.0, 0.0), (4.0, 2.0), (16.0, 40.0)]),
        ])
        .with_perfs(vec![PerfModel::Pollack, PerfModel::Power(0.75)])
}

fn synthetic_calibration(name: &str, f: f64, fcon: f64, fored: f64) -> CalibratedParams {
    let s = 1.0 - f;
    let runs: Vec<MeasuredRun> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&p| {
            MeasuredRun::new(
                p,
                f / p as f64,
                s * fcon,
                s * (1.0 - fcon) * (1.0 + fored * (p as f64 - 1.0)),
            )
        })
        .collect();
    CalibratedParams::fit(name, &runs).unwrap()
}

fn measured_backend() -> MeasuredBackend {
    MeasuredBackend::new(vec![
        synthetic_calibration("kmeans", 0.999, 0.6, 0.8),
        synthetic_calibration("fuzzy", 0.9999, 0.7, 0.3),
        synthetic_calibration("hop", 0.999, 0.88, 1.55),
    ])
}

fn parity_for(backend: &dyn EvalBackend, space: &ScenarioSpace, label: &str) {
    let reference = reference_sweep(space, backend);
    for threads in [1usize, 4] {
        let engine = Engine::new(threads);
        for (use_cache, batch_size) in [(false, 64), (true, 64), (true, 7), (true, 4096)] {
            let config = SweepConfig { batch_size, use_cache };
            let result = engine.sweep(space, backend, &config);
            assert_bit_identical(
                &format!("{label} threads={threads} cache={use_cache} batch={batch_size}"),
                &reference,
                &result.records,
            );
        }
        // Re-sweep against the now-warm cache: answered from memo bits.
        let warm = engine.sweep(space, backend, &SweepConfig { batch_size: 64, use_cache: true });
        assert_bit_identical(&format!("{label} warm threads={threads}"), &reference, &warm.records);
    }
}

#[test]
fn analytic_columnar_path_is_bit_identical() {
    parity_for(&AnalyticBackend, &mixed_space(), "analytic");
}

#[test]
fn comm_path_is_bit_identical() {
    parity_for(&CommBackend::new(), &mixed_space(), "comm");
}

#[test]
fn cmpsim_columnar_path_is_bit_identical() {
    // Integer core sizes so the simulated machines are meaningful; small
    // operation budget keeps the suite fast.
    let space = ScenarioSpace::new()
        .with_apps(AppParams::table2_all())
        .with_budgets(vec![16.0, 64.0])
        .clear_designs()
        .add_symmetric_grid([1.0, 2.0, 4.0, 8.0, 100.0])
        .add_asymmetric_grid([1.0, 2.0], [4.0, 16.0])
        .with_reductions(mp_par::ReductionStrategy::all().to_vec());
    let backend = SimBackend::new().with_total_ops(1e5);
    parity_for(&backend, &space, "cmpsim");
}

#[test]
fn measured_columnar_path_is_bit_identical_in_both_growth_modes() {
    let backend = measured_backend();
    let space = mixed_space().with_apps(backend.apps());
    parity_for(&backend, &space, "measured-fit");

    let exact = measured_backend().with_exact_growth();
    let space = mixed_space().with_apps(exact.apps());
    parity_for(&exact, &space, "measured-exact");
}

#[test]
fn unknown_apps_stay_nan_through_the_columnar_path() {
    // A measured backend swept over applications it has no calibration for:
    // whole runs must come back NaN, exactly like the reference path.
    let backend = measured_backend();
    let space = mixed_space(); // table2 names but *not* the calibrated values
    let with_unknown = space.with_apps(vec![
        AppParams::table2_kmeans().with_name("unknown-app"),
        backend.apps()[0].clone(),
    ]);
    parity_for(&backend, &with_unknown, "measured-unknown");
}

/// RAII pin of the scalar reference kernels (un-pins on drop, panics
/// included, so a failing case cannot leak a forced state into later tests).
struct ForceScalar;

impl ForceScalar {
    fn pin() -> ForceScalar {
        mp_model::simd::set_forced_scalar(true);
        ForceScalar
    }
}

impl Drop for ForceScalar {
    fn drop(&mut self) {
        mp_model::simd::set_forced_scalar(false);
    }
}

/// Sweep `space` at 1 and 4 threads, cache off.
fn sweeps_at_both_widths(space: &ScenarioSpace, backend: &dyn EvalBackend) -> Vec<SweepResult> {
    [1usize, 4]
        .iter()
        .map(|&threads| {
            Engine::new(threads).sweep(
                space,
                backend,
                &SweepConfig { batch_size: 64, use_cache: false },
            )
        })
        .collect()
}

/// The scalar-vs-SIMD equivalence pin for one backend over one space: the
/// forced-scalar sweep, the lane sweep (AVX2 where the host has it; the
/// same scalar path where it does not, making the comparison trivially
/// true there), and the per-scenario reference must agree bitwise.
fn lane_scalar_reference_parity(space: &ScenarioSpace, backend: &dyn EvalBackend, label: &str) {
    let scalar = {
        let _pin = ForceScalar::pin();
        sweeps_at_both_widths(space, backend)
    };
    let lanes = sweeps_at_both_widths(space, backend);
    let reference = reference_sweep(space, backend);
    for ((s, l), threads) in scalar.iter().zip(&lanes).zip([1usize, 4]) {
        assert_bit_identical(
            &format!("{label} lane-vs-scalar threads={threads}"),
            &s.records,
            &l.records,
        );
        assert_bit_identical(
            &format!("{label} lane-vs-reference threads={threads}"),
            &reference,
            &l.records,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary spaces — fitting, over-budget, and NaN-poisoned designs
    /// alike — swept through the lane kernels and the forced-scalar
    /// reference: every slot bitwise identical, NaN markers included. The
    /// `Measured` growth carries a NaN sample, so designs landing on the
    /// poisoned segment propagate NaN through the speedup arithmetic (not
    /// just the unfit-design blend), at 1 and 4 threads.
    #[test]
    fn lane_kernels_match_forced_scalar_bitwise(
        sym_rs in proptest::collection::vec(0.5f64..400.0, 1..8),
        asym_larges in proptest::collection::vec(1.0f64..300.0, 1..4),
        budget in 16.0f64..512.0,
        sigma in 1.0f64..2.0,
        poison in proptest::bool::ANY,
    ) {
        let mut growths = vec![
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Superlinear(sigma),
        ];
        if poison {
            growths.push(GrowthFunction::Measured(vec![
                (1.0, 0.0),
                (4.0, f64::NAN),
                (16.0, 40.0),
            ]));
        }
        let space = ScenarioSpace::new()
            .with_apps(AppParams::table2_all())
            .with_budgets(vec![budget])
            .clear_designs()
            .add_symmetric_grid(sym_rs.iter().copied())
            .add_asymmetric_grid([1.0, 4.0], asym_larges.iter().copied())
            .with_growths(growths)
            .with_perfs(vec![PerfModel::Pollack, PerfModel::Power(0.75)]);
        lane_scalar_reference_parity(&space, &AnalyticBackend, "analytic");

        let measured = measured_backend();
        let measured_space = space.clone().with_apps(vec![
            measured.apps()[0].clone(),
            AppParams::table2_kmeans().with_name("unknown-app"),
        ]);
        lane_scalar_reference_parity(&measured_space, &measured, "measured");

        let sim_space = space
            .with_growths(vec![GrowthFunction::Linear])
            .with_perfs(vec![PerfModel::Pollack])
            .with_reductions(mp_par::ReductionStrategy::all().to_vec());
        let sim = SimBackend::new().with_total_ops(1e5);
        lane_scalar_reference_parity(&sim_space, &sim, "sim");
    }

    /// Hammer the lock-free cache from 8 threads with overlapping key ranges
    /// and assert nothing is lost or corrupted — including entries written
    /// while shards migrate (the initial tables are small, so unreserved
    /// inserts migrate several times per run).
    #[test]
    fn concurrent_cache_hammering_loses_nothing(seed in 0u64..u64::MAX) {
        let cache = EvalCache::new();
        let per_thread = 1_500u64;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Overlapping ranges: neighbouring threads write the
                        // same keys with the same (deterministic) values.
                        let k = seed.wrapping_add(i + (t / 2) * per_thread);
                        let key = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k.rotate_left(23));
                        let value = f64::from_bits(k ^ 0x7ff8_0000_0000_0001);
                        cache.insert(key, value);
                        if i % 3 == 0 {
                            if let Some(got) = cache.peek(key) {
                                assert_eq!(got.to_bits(), value.to_bits());
                            }
                        }
                    }
                });
            }
        });
        // Every key of every thread is present with its exact bits.
        for t in 0..8u64 {
            for i in 0..per_thread {
                let k = seed.wrapping_add(i + (t / 2) * per_thread);
                let key = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k.rotate_left(23));
                let expect = k ^ 0x7ff8_0000_0000_0001;
                let got = cache.peek(key);
                prop_assert!(got.is_some(), "key of thread {} iteration {} lost", t, i);
                prop_assert_eq!(got.unwrap().to_bits(), expect);
            }
        }
    }
}
