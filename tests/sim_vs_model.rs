//! Cross-validation between the timing simulator and the analytical model —
//! the repository-level analogue of the paper's Figure 2(d) accuracy check.
//!
//! The extended model is fitted from the simulator's 1–16-core profiles and
//! must then predict the simulator's serial-section growth and speedups within
//! a reasonable tolerance for the near-linear workloads (kmeans, fuzzy).

use merging_phases::cmpsim::program::ReductionKind;
use merging_phases::cmpsim::{
    fuzzy_program, kmeans_program, simulate, simulate_profile, Machine, WorkloadShape,
};
use merging_phases::model::serial_time::serial_growth_factor;
use merging_phases::prelude::*;
use merging_phases::profile::{extract_params, serial_growth, RunProfile};

fn simulated_sweep(program_name: &str) -> Vec<RunProfile> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&cores| {
            let machine = Machine::table1(cores);
            let program = match program_name {
                "kmeans" => {
                    kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear)
                }
                "fuzzy" => {
                    fuzzy_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear)
                }
                _ => unreachable!(),
            };
            simulate_profile(&program, &machine)
        })
        .collect()
}

#[test]
fn model_predicts_simulated_serial_growth_for_linear_workloads() {
    for app in ["kmeans", "fuzzy"] {
        let profiles = simulated_sweep(app);
        let extracted = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        let params = extracted.to_app_params();
        for (threads, observed) in serial_growth(&profiles) {
            let predicted = serial_growth_factor(&params, &GrowthFunction::Linear, threads as f64);
            let ratio = predicted / observed;
            assert!(
                (ratio - 1.0).abs() < 0.25,
                "{app} at {threads} threads: predicted {predicted:.3}, observed {observed:.3}"
            );
        }
    }
}

#[test]
fn model_and_simulator_agree_on_sixteen_core_speedup() {
    for app in ["kmeans", "fuzzy"] {
        let profiles = simulated_sweep(app);
        let extracted = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        let params = extracted.to_app_params();
        let model = ExtendedModel::new(params, GrowthFunction::Linear, PerfModel::Pollack);

        let simulated_speedup = profiles[0].total_time()
            / profiles.iter().find(|p| p.threads == 16).unwrap().total_time();
        let predicted_speedup = model.speedup_unit_cores(16.0).unwrap();
        let rel_err = (simulated_speedup - predicted_speedup).abs() / simulated_speedup;
        assert!(
            rel_err < 0.15,
            "{app}: simulated {simulated_speedup:.2} vs predicted {predicted_speedup:.2}"
        );
    }
}

#[test]
fn simulator_reproduces_the_models_preference_for_larger_cores() {
    // Build a symmetric 256-BCE machine from r-BCE cores in the simulator and
    // check that, as in Figure 4, a high-overhead workload prefers r > 1.
    let shape = WorkloadShape { iterations: 5, ..WorkloadShape::kmeans_base() };
    // Exaggerate the merge so the overhead matters at 256 cores.
    let program = kmeans_program(&shape, ReductionKind::SerialLinear);

    let speedup_for = |r: f64| {
        let cores = (256.0 / r) as usize;
        let machine = Machine::symmetric(cores, r, Default::default());
        let base = simulate(&program, &Machine::symmetric(1, 1.0, Default::default()));
        let scaled = simulate(&program, &machine);
        base.total_cycles() / scaled.total_cycles()
    };
    let at_r1 = speedup_for(1.0);
    let at_r4 = speedup_for(4.0);
    // The merging overhead at 256 single-BCE cores is large enough that 64
    // four-BCE cores do at least comparably well (the paper's qualitative
    // "fewer, more capable cores" shift).
    assert!(
        at_r4 > at_r1 * 0.8,
        "r=4 speedup {at_r4:.1} should be competitive with r=1 speedup {at_r1:.1}"
    );
}

#[test]
fn privatized_merge_moves_simulated_cost_into_communication() {
    let program_lin = kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
    let program_par =
        kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::ParallelPrivatized);
    let machine = Machine::table1(16);
    let lin = simulate(&program_lin, &machine);
    let par = simulate(&program_par, &machine);
    assert_eq!(lin.cycles_in(merging_phases::profile::PhaseKind::Communication), 0.0);
    assert!(par.cycles_in(merging_phases::profile::PhaseKind::Communication) > 0.0);
    assert!(
        par.cycles_in(merging_phases::profile::PhaseKind::Reduction)
            < lin.cycles_in(merging_phases::profile::PhaseKind::Reduction)
    );
}
