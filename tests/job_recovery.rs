//! The crash-recovery drill, in-process: a durable job is killed mid-run
//! (manager dropped without a final checkpoint — deliberately
//! crash-equivalent), a fresh service restores it from the manifest and
//! cache segment spills, and `resume` completes it **re-evaluating only
//! the incomplete windows** — asserted through the process-global
//! `dse_scenarios_evaluated` counter, which is why this test lives alone
//! in its own file (one test binary = one process = one counter).
//!
//! The final records must be bit-identical to an uninterrupted
//! `Engine::sweep` of the same space.

use std::sync::Arc;
use std::time::{Duration, Instant};

use merging_phases::dse::prelude::*;
use mp_dse::fault::{FaultPlan, FaultyBackend};
use mp_serve::prelude::*;

#[test]
fn killed_job_resumes_from_its_checkpoint_and_reevaluates_only_incomplete_windows() {
    let dir = std::env::temp_dir().join(format!("mp-job-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 4096 scenarios, 8 windows of 512; every scenario valid (default
    // budget, symmetric designs), so full coverage = fully warm cache.
    let space = ScenarioSpace::new()
        .clear_designs()
        .add_symmetric_grid((0..4096).map(|i| 1.0 + i as f64 * 0.03));
    let total_windows = 8usize;
    let window = 512usize;

    // ---- Phase 1: run under injected per-batch latency, then "crash". ----
    let plan = FaultPlan::new();
    plan.set_latency(Duration::from_millis(50));
    let shards = 2usize;
    let config =
        ServiceConfig { shards, threads_per_shard: 1, batch_size: 256, ..ServiceConfig::default() };
    let job_id;
    {
        let faulty: Arc<dyn EvalBackend + Send + Sync> =
            Arc::new(FaultyBackend::new(AnalyticBackend, Arc::clone(&plan)));
        let service = Arc::new(SweepService::new(faulty, &config));
        let manager =
            JobManager::new(Arc::clone(&service), Some(dir.clone()), JobConfig::default()).unwrap();
        // Checkpoint every completed window, so the durable frontier tracks
        // progress exactly.
        let submitted = manager.submit(space.clone(), 0..space.len(), window, 1).unwrap();
        assert_eq!(submitted.windows_total, total_windows);
        job_id = submitted.id;

        // Let a few windows land, then kill the manager mid-job. `kill`
        // stops the runner WITHOUT a final checkpoint and joins it — the
        // durable state is whatever the per-window checkpoints left,
        // exactly like a kill -9, but with the store provably quiescent
        // so phase 2 can reopen the directory.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let snapshot = manager.status(&job_id).unwrap();
            if snapshot.windows_completed >= 3 {
                break;
            }
            assert!(Instant::now() < deadline, "job made no progress: {snapshot:?}");
            std::thread::sleep(Duration::from_millis(1));
        }
        manager.kill();
    } // manager (and service) torn down here, job still incomplete

    // ---- Between lives: the manifest is the durable truth. ----
    let manifest_bytes = std::fs::read(dir.join(format!("{job_id}.manifest"))).unwrap();
    let manifest = Manifest::from_bytes(&manifest_bytes).unwrap();
    let completed_durable = manifest.completed.len();
    assert!(
        completed_durable >= 3 && completed_durable < total_windows,
        "the crash must land mid-job: {completed_durable}/{total_windows} windows durable"
    );

    // ---- Phase 2: fresh process-equivalent — restore, resume, complete. ----
    let service = Arc::new(SweepService::new(Arc::new(AnalyticBackend), &config));
    let manager =
        JobManager::new(Arc::clone(&service), Some(dir.clone()), JobConfig::default()).unwrap();
    let restored = manager.status(&job_id).unwrap();
    assert_eq!(restored.state, "suspended", "in-flight jobs restore awaiting resume");
    assert_eq!(restored.windows_completed, completed_durable);
    assert_eq!(restored.scenarios_completed, completed_durable * window);

    let evaluated = mp_obs::counter("dse_scenarios_evaluated");
    let before = evaluated.value();
    manager.resume(&job_id).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let done = loop {
        let snapshot = manager.status(&job_id).unwrap();
        if snapshot.state == "completed" {
            break snapshot;
        }
        assert!(Instant::now() < deadline, "resumed job did not complete: {snapshot:?}");
        std::thread::sleep(Duration::from_millis(2));
    };
    let delta = evaluated.value() - before;
    assert_eq!(done.windows_completed, total_windows);

    // The heart of the drill: the resumed run swept EXACTLY the incomplete
    // windows — completed ones were never pulled through the engine again.
    let expected = ((total_windows - completed_durable) * window) as u64;
    assert_eq!(
        delta,
        expected,
        "resume must re-evaluate only the {} incomplete windows",
        total_windows - completed_durable
    );

    // Warm fetch: phase-1 windows answer from the restored segment spill,
    // phase-2 windows from the live cache — the whole space hits.
    let warm = service.sweep(&space, None).unwrap();
    assert_eq!(warm.stats.cache_hits as usize, space.len(), "restart must reload the cache");

    // Bit-parity with an uninterrupted single-engine sweep.
    let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
    assert_eq!(warm.records.len(), direct.records.len());
    for (a, b) in warm.records.iter().zip(direct.records.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "speedup @{}", a.index);
        assert_eq!(a.cores.to_bits(), b.cores.to_bits(), "cores @{}", a.index);
        assert_eq!(a.area.to_bits(), b.area.to_bits(), "area @{}", a.index);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
