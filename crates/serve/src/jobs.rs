//! # Durable sweep jobs — checkpoint/resume on top of the planner
//!
//! A *job* is a prepared-space sweep a client submits once and walks away
//! from: a background runner thread pulls fixed-size index windows through
//! [`SweepService::sweep_handle`] — the same admission gate and coalescer
//! every interactive query crosses — and records each completed window in
//! a crash-safe **checkpoint**:
//!
//! * a versioned, CRC-guarded [`Manifest`] (`<id>.manifest`, JSON body
//!   behind a checksum line) holding the space itself, its fingerprint,
//!   the window geometry and the completed-window set, written atomically
//!   (tmp file + fsync + rename, see [`atomic_write`]);
//! * a binary **cache segment spill** per shard
//!   (`cache-shard-<i>.seg`, the [`EvalCache`] segment format), so a
//!   restarted process re-evaluates only the windows the manifest says
//!   are incomplete and answers the rest from the warmed cache.
//!
//! Failed windows are retried with capped exponential backoff and
//! deterministic jitter (honouring the admission gate's
//! `estimated_cost_ms` on busy rejections); a run of
//! [`JobConfig::failure_cap`] consecutive failures parks the job as
//! `failed` with the last error as its inspectable reason — `resume`
//! re-queues it once the fault clears. Cancellation is graceful: the
//! runner finishes the in-flight window, checkpoints, and parks the job
//! as `cancelled`.
//!
//! Restore is strictly validated but never fatal: a manifest that fails
//! its checksum, version check or semantic validation is skipped with an
//! [`mp_obs::warn`] and the job simply does not exist on the restarted
//! server; a damaged cache segment degrades to a cold shard. Corruption
//! costs warmth, not correctness — window evaluation is deterministic, so
//! re-running a window that was already complete produces identical
//! records.
//!
//! Dropping the [`JobManager`] stops the runner **without** a final
//! checkpoint — deliberately crash-equivalent, so tests (and unclean
//! shutdowns) exercise exactly the recovery path a `kill -9` leaves
//! behind. Graceful shutdown is spelled `cancel`.
//!
//! [`EvalCache`]: mp_dse::cache::EvalCache

use std::collections::BTreeMap;
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mp_dse::cache::crc32;
use mp_dse::engine::space_fingerprint;
use mp_dse::scenario::ScenarioSpace;
use mp_obs::profile::{thread_lane, Profiler};

use crate::client::RetryPolicy;
use crate::protocol::{JobSnapshot, SpaceSpec, DEFAULT_CHUNK};
use crate::service::{ServeError, ServeErrorKind, SweepService};

/// Version tag every manifest carries; a bump invalidates old manifests
/// (they restore as "skipped with a warning", not as garbage jobs).
pub const MANIFEST_VERSION: &str = "mp-jobs/1";

fn invalid(message: impl Into<String>) -> ServeError {
    ServeError { kind: ServeErrorKind::Invalid, message: message.into(), estimated_cost_ms: 0.0 }
}

/// Write `bytes` to `path` atomically: write + fsync a sibling tmp file,
/// rename it over `path`, then fsync the parent directory so the rename
/// itself is durable. Readers either see the old complete file or the new
/// complete file — never a torn write. (The CRC trailers on manifests and
/// segments are belt-and-braces for filesystems that violate this.)
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Runner tuning. The defaults suit production cadence; tests shrink the
/// backoff so a parked-after-faults assertion does not sleep for seconds.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Checkpoint after this many newly completed windows when a submit
    /// passes `checkpoint_every = 0` (a terminal transition always
    /// checkpoints regardless of cadence).
    pub checkpoint_every: usize,
    /// Park the job as `failed` after this many *consecutive* window
    /// failures (any success resets the run).
    pub failure_cap: u32,
    /// Backoff schedule between failed window attempts.
    pub retry: RetryPolicy,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig { checkpoint_every: 8, failure_cap: 5, retry: RetryPolicy::backoff_ms(10, 1_000) }
    }
}

/// Lifecycle state. Terminal-until-resumed states (`Suspended`,
/// `Cancelled`, `Failed`, `Completed`) are exactly the ones
/// [`JobSnapshot::is_settled`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    /// Restored from a manifest; waits for an explicit `resume`.
    Suspended,
    /// Cancel requested while running; the runner parks it `Cancelled`
    /// after the in-flight window and a final checkpoint.
    Cancelling,
    Cancelled,
    Completed,
    Failed,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Suspended => "suspended",
            JobState::Cancelling => "cancelling",
            JobState::Cancelled => "cancelled",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    fn parse(name: &str) -> Option<JobState> {
        Some(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "suspended" => JobState::Suspended,
            "cancelling" => JobState::Cancelling,
            "cancelled" => JobState::Cancelled,
            "completed" => JobState::Completed,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }
}

/// Mutable half of a job, behind one mutex.
struct JobInner {
    state: JobState,
    reason: String,
    /// `completed[i]` — window `i` evaluated and recorded.
    completed: Vec<bool>,
    retries: u64,
    checkpoints: u64,
    /// Windows completed since the last checkpoint.
    dirty: usize,
}

/// One durable sweep job: immutable geometry plus a mutex-guarded
/// progress record. The runner owns state transitions while `Running`;
/// the verb handlers own them otherwise.
struct Job {
    id: String,
    space: ScenarioSpace,
    fingerprint: u64,
    start: usize,
    end: usize,
    window: usize,
    checkpoint_every: usize,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
}

impl Job {
    fn windows_total(&self) -> usize {
        (self.end - self.start).div_ceil(self.window)
    }

    fn window_range(&self, ordinal: usize) -> Range<usize> {
        let lo = self.start + ordinal * self.window;
        lo..(lo + self.window).min(self.end)
    }

    fn snapshot(&self) -> JobSnapshot {
        let inner = self.inner.lock();
        let windows_completed = inner.completed.iter().filter(|c| **c).count();
        let scenarios_completed = inner
            .completed
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(i, _)| self.window_range(i).len())
            .sum();
        JobSnapshot {
            id: self.id.clone(),
            state: inner.state.name().to_string(),
            reason: inner.reason.clone(),
            fingerprint: format!("{:016x}", self.fingerprint),
            start: self.start,
            end: self.end,
            window: self.window,
            windows_total: self.windows_total(),
            windows_completed,
            scenarios_completed,
            retries: inner.retries,
            checkpoints: inner.checkpoints,
            checkpoint_every: self.checkpoint_every,
        }
    }

    fn manifest(&self) -> Manifest {
        let inner = self.inner.lock();
        Manifest {
            version: MANIFEST_VERSION.to_string(),
            id: self.id.clone(),
            fingerprint: format!("{:016x}", self.fingerprint),
            start: self.start,
            end: self.end,
            window: self.window,
            checkpoint_every: self.checkpoint_every,
            state: inner.state.name().to_string(),
            reason: inner.reason.clone(),
            retries: inner.retries,
            checkpoints: inner.checkpoints,
            completed: inner
                .completed
                .iter()
                .enumerate()
                .filter(|(_, c)| **c)
                .map(|(i, _)| i)
                .collect(),
            space: self.space.clone(),
        }
    }
}

/// The on-disk form of a job: everything needed to reconstruct it in a
/// fresh process, including the swept space itself (a restarted server
/// must not depend on the submitting client still being around).
///
/// Serialised as a one-line `crc32` hex header over the JSON body that
/// follows — [`Manifest::from_bytes`] refuses torn, truncated or
/// bit-flipped files with a typed message instead of restoring garbage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format tag, [`MANIFEST_VERSION`].
    pub version: String,
    /// Job id (also the manifest's file stem).
    pub id: String,
    /// `space`'s content fingerprint, 16 hex digits — revalidated on
    /// restore so a manifest paired with a tampered space is refused.
    pub fingerprint: String,
    /// First flat scenario index (inclusive).
    pub start: usize,
    /// Last flat scenario index (exclusive).
    pub end: usize,
    /// Scenarios per runner window.
    pub window: usize,
    /// Checkpoint cadence, completed windows per checkpoint.
    pub checkpoint_every: usize,
    /// Lifecycle state at checkpoint time.
    pub state: String,
    /// Failure reason (empty unless `state` is `failed`).
    pub reason: String,
    /// Lifetime retry count.
    pub retries: u64,
    /// Lifetime checkpoint count.
    pub checkpoints: u64,
    /// Ordinals of completed windows, strictly increasing.
    pub completed: Vec<usize>,
    /// The swept space, verbatim.
    pub space: ScenarioSpace,
}

impl Manifest {
    /// Serialise: `"{crc32:08x}\n"` followed by the JSON body the checksum
    /// covers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = serde_json::to_string(self).expect("manifest serialises");
        let mut bytes = format!("{:08x}\n", crc32(body.as_bytes())).into_bytes();
        bytes.extend_from_slice(body.as_bytes());
        bytes
    }

    /// Parse and fully validate a manifest file: checksum, version,
    /// fingerprint-vs-space agreement and window-set consistency. Any
    /// failure is a descriptive error — callers degrade to "job not
    /// restored", they never panic or restore a half-true record.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, String> {
        let newline =
            bytes.iter().position(|b| *b == b'\n').ok_or("missing checksum header line")?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| "checksum header is not UTF-8".to_string())?;
        let stored = u32::from_str_radix(header, 16)
            .map_err(|_| format!("malformed checksum header `{header}`"))?;
        let body = &bytes[newline + 1..];
        let computed = crc32(body);
        if stored != computed {
            return Err(format!("checksum mismatch: stored {stored:08x}, computed {computed:08x}"));
        }
        let body = std::str::from_utf8(body).map_err(|_| "manifest body is not UTF-8")?;
        let manifest: Manifest =
            serde_json::from_str(body).map_err(|e| format!("malformed manifest body: {e}"))?;
        manifest.validate()?;
        Ok(manifest)
    }

    fn validate(&self) -> Result<(), String> {
        if self.version != MANIFEST_VERSION {
            return Err(format!(
                "version mismatch: found `{}`, expected `{MANIFEST_VERSION}`",
                self.version
            ));
        }
        if JobState::parse(&self.state).is_none() {
            return Err(format!("unknown state `{}`", self.state));
        }
        let fingerprint = format!("{:016x}", space_fingerprint(&self.space));
        if fingerprint != self.fingerprint {
            return Err(format!(
                "fingerprint mismatch: manifest says {}, space hashes to {fingerprint}",
                self.fingerprint
            ));
        }
        if self.window == 0 {
            return Err("window must be positive".to_string());
        }
        if self.start > self.end || self.end > self.space.len() {
            return Err(format!(
                "range {}..{} out of bounds for a {}-scenario space",
                self.start,
                self.end,
                self.space.len()
            ));
        }
        let total = (self.end - self.start).div_ceil(self.window);
        let mut last: Option<usize> = None;
        for &ordinal in &self.completed {
            if ordinal >= total {
                return Err(format!("completed window {ordinal} out of {total}"));
            }
            if last.is_some_and(|p| ordinal <= p) {
                return Err("completed windows not strictly increasing".to_string());
            }
            last = Some(ordinal);
        }
        Ok(())
    }
}

/// Owns the background runner thread and the job table; attach one to a
/// [`SweepService`] via [`JobManager::new`] and the four `job_*`
/// protocol verbs light up. With a store directory the manager restores
/// manifests (as `suspended` jobs) and warm-starts the shard caches from
/// spilled segments before accepting work; without one, jobs run
/// in-memory only (no checkpoint files, still retried and cancellable).
pub struct JobManager {
    service: Arc<SweepService>,
    dir: Option<PathBuf>,
    config: JobConfig,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    queue: Mutex<Option<Sender<Arc<Job>>>>,
    runner: Mutex<Option<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    seq: AtomicU64,
}

impl JobManager {
    /// Build a manager over `service`, restore any prior state from
    /// `dir`, spawn the runner thread and attach the manager to the
    /// service's job verbs. Returns the number of restored jobs alongside
    /// the manager.
    pub fn new(
        service: Arc<SweepService>,
        dir: Option<PathBuf>,
        config: JobConfig,
    ) -> std::io::Result<Arc<JobManager>> {
        // Register the series up front so a scrape of an idle server shows
        // explicit zeros rather than absent names.
        let _ = mp_obs::counter("job_windows_completed");
        let _ = mp_obs::counter("job_retries");
        let _ = mp_obs::histogram_ms("job_checkpoint_ms");
        mp_obs::gauge("jobs_active").set(0);

        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        let (sender, receiver) = unbounded::<Arc<Job>>();
        let stop = Arc::new(AtomicBool::new(false));
        let manager = Arc::new(JobManager {
            service,
            dir,
            config,
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(Some(sender)),
            runner: Mutex::new(None),
            stop: Arc::clone(&stop),
            seq: AtomicU64::new(1),
        });
        manager.restore();
        manager.service.attach_jobs(Arc::downgrade(&manager));

        let weak = Arc::downgrade(&manager);
        let handle = std::thread::Builder::new()
            .name("mp-serve-jobs".to_string())
            .spawn(move || Self::run_loop(weak, receiver, stop))
            .expect("spawn job runner");
        *manager.runner.lock() = Some(handle);
        Ok(manager)
    }

    /// Scan the store directory for `*.manifest` files and rebuild their
    /// jobs. Anything that was in flight when the previous process died
    /// restores as `suspended` (progress intact, awaiting `resume`);
    /// settled states restore verbatim. Damaged files are skipped with a
    /// warning. Cache segments load afterwards so resumed windows start
    /// warm.
    fn restore(&self) {
        let Some(dir) = &self.dir else { return };
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(_) => return,
        };
        let started = Instant::now();
        let mut restored = 0usize;
        let mut collected: Vec<PathBuf> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("manifest") {
                continue;
            }
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    mp_obs::warn("jobs", &format!("unreadable manifest {}: {e}", path.display()));
                    continue;
                }
            };
            let manifest = match Manifest::from_bytes(&bytes) {
                Ok(manifest) => manifest,
                Err(e) => {
                    mp_obs::warn(
                        "jobs",
                        &format!("skipping manifest {} (cold start): {e}", path.display()),
                    );
                    continue;
                }
            };
            let state = match JobState::parse(&manifest.state).expect("validated") {
                // In-flight states cannot survive the process that ran
                // them; park as suspended until an explicit resume.
                JobState::Queued | JobState::Running | JobState::Cancelling => JobState::Suspended,
                settled => settled,
            };
            let total = (manifest.end - manifest.start).div_ceil(manifest.window);
            let mut completed = vec![false; total];
            for &ordinal in &manifest.completed {
                completed[ordinal] = true;
            }
            let fingerprint = space_fingerprint(&manifest.space);
            if let Some(seq) = manifest.id.strip_prefix('j').and_then(|s| s.parse::<u64>().ok()) {
                let next = self.seq.load(Ordering::Relaxed).max(seq + 1);
                self.seq.store(next, Ordering::Relaxed);
            }
            let job = Arc::new(Job {
                id: manifest.id.clone(),
                space: manifest.space,
                fingerprint,
                start: manifest.start,
                end: manifest.end,
                window: manifest.window,
                checkpoint_every: manifest.checkpoint_every,
                cancel: AtomicBool::new(false),
                inner: Mutex::new(JobInner {
                    state,
                    reason: manifest.reason,
                    completed,
                    retries: manifest.retries,
                    checkpoints: manifest.checkpoints,
                    dirty: 0,
                }),
            });
            self.jobs.lock().insert(manifest.id, job);
            restored += 1;
            // A completed manifest is a GC the previous process crashed out
            // of (completion normally collects it immediately): the job
            // stays queryable in memory, the file goes.
            if state == JobState::Completed {
                collected.push(path);
            }
        }
        for path in collected {
            if let Err(e) = std::fs::remove_file(&path) {
                mp_obs::warn("jobs", &format!("manifest GC {} failed: {e}", path.display()));
            }
        }
        // With every manifest collected there is nothing left to resume:
        // prune the orphaned segments before warming from them.
        Self::prune_orphan_segments(dir);
        let warmed = self.service.load_cache_segments(dir);
        if restored > 0 || warmed > 0 {
            mp_obs::warn(
                "jobs",
                &format!(
                    "restored {restored} job(s), warmed {warmed} cache entr(ies) from {} in {:.1} ms",
                    dir.display(),
                    started.elapsed().as_secs_f64() * 1e3
                ),
            );
        }
    }

    /// Submit a sweep over `range` of `space` as a durable job. `chunk`
    /// is the window size in scenarios (`0` = [`DEFAULT_CHUNK`]);
    /// `checkpoint_every` the cadence in completed windows (`0` = the
    /// manager's [`JobConfig::checkpoint_every`]). The initial manifest is
    /// persisted before this returns, so a submitted job survives a crash
    /// that lands before its first completed window.
    pub fn submit(
        &self,
        space: ScenarioSpace,
        range: Range<usize>,
        chunk: usize,
        checkpoint_every: usize,
    ) -> Result<JobSnapshot, ServeError> {
        let n = space.len();
        if range.start >= range.end || range.end > n {
            return Err(invalid(format!(
                "job range {}..{} invalid for a {n}-scenario space",
                range.start, range.end
            )));
        }
        let window = if chunk == 0 { DEFAULT_CHUNK } else { chunk };
        let checkpoint_every =
            if checkpoint_every == 0 { self.config.checkpoint_every } else { checkpoint_every };
        let fingerprint = space_fingerprint(&space);
        let id = format!("j{:05}", self.seq.fetch_add(1, Ordering::Relaxed));
        let total = (range.end - range.start).div_ceil(window);
        let job = Arc::new(Job {
            id: id.clone(),
            space,
            fingerprint,
            start: range.start,
            end: range.end,
            window,
            checkpoint_every,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                reason: String::new(),
                completed: vec![false; total],
                retries: 0,
                checkpoints: 0,
                dirty: 0,
            }),
        });
        self.jobs.lock().insert(id, Arc::clone(&job));
        self.persist(&job);
        mp_obs::gauge("jobs_active").add(1);
        self.enqueue(&job);
        Ok(job.snapshot())
    }

    /// The current snapshot of job `id`.
    pub fn status(&self, id: &str) -> Result<JobSnapshot, ServeError> {
        Ok(self.get(id)?.snapshot())
    }

    /// Request cancellation. A queued job parks `cancelled` immediately
    /// (with a checkpoint); a running one transitions to `cancelling` and
    /// the runner parks it after the in-flight window. Settled jobs other
    /// than `completed` also park `cancelled` (a no-op with a clearer
    /// state); cancelling a completed job is an error.
    pub fn cancel(&self, id: &str) -> Result<JobSnapshot, ServeError> {
        let job = self.get(id)?;
        let checkpoint = {
            let mut inner = job.inner.lock();
            match inner.state {
                JobState::Completed => {
                    return Err(invalid(format!("job `{id}` already completed")))
                }
                JobState::Running => {
                    inner.state = JobState::Cancelling;
                    job.cancel.store(true, Ordering::Relaxed);
                    false
                }
                JobState::Cancelling | JobState::Cancelled => false,
                JobState::Queued => {
                    inner.state = JobState::Cancelled;
                    mp_obs::gauge("jobs_active").sub(1);
                    true
                }
                JobState::Suspended | JobState::Failed => {
                    inner.state = JobState::Cancelled;
                    true
                }
            }
        };
        if checkpoint {
            self.checkpoint(&job);
        }
        Ok(job.snapshot())
    }

    /// Re-queue a settled job; progress is kept, only incomplete windows
    /// will be evaluated. Resuming a job that is already queued, running
    /// or completed is an idempotent no-op returning its snapshot.
    pub fn resume(&self, id: &str) -> Result<JobSnapshot, ServeError> {
        let job = self.get(id)?;
        let requeue = {
            let mut inner = job.inner.lock();
            match inner.state {
                JobState::Queued
                | JobState::Running
                | JobState::Cancelling
                | JobState::Completed => false,
                JobState::Suspended | JobState::Cancelled | JobState::Failed => {
                    inner.state = JobState::Queued;
                    inner.reason.clear();
                    job.cancel.store(false, Ordering::Relaxed);
                    true
                }
            }
        };
        if requeue {
            mp_obs::gauge("jobs_active").add(1);
            self.enqueue(&job);
        }
        Ok(job.snapshot())
    }

    /// Snapshots of every known job, id-ordered.
    pub fn list(&self) -> Vec<JobSnapshot> {
        self.jobs.lock().values().map(|job| job.snapshot()).collect()
    }

    fn get(&self, id: &str) -> Result<Arc<Job>, ServeError> {
        self.jobs.lock().get(id).cloned().ok_or_else(|| invalid(format!("unknown job id `{id}`")))
    }

    fn enqueue(&self, job: &Arc<Job>) {
        if let Some(sender) = self.queue.lock().as_ref() {
            let _ = sender.send(Arc::clone(job));
        }
    }

    fn run_loop(manager: Weak<JobManager>, queue: Receiver<Arc<Job>>, stop: Arc<AtomicBool>) {
        while let Ok(job) = queue.recv() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            Self::run_job(&manager, &job);
        }
    }

    /// Drive one job to a settled state — or abandon it mid-flight when the
    /// manager is stopping or its last external handle dropped, leaving
    /// recovery to the last checkpoint.
    ///
    /// The runner deliberately holds a strong manager reference only **one
    /// window at a time**: the external owner dropping its handle must
    /// stop the job at the next window boundary (that is what makes a
    /// manager drop crash-equivalent), which a strong reference held
    /// across the whole job would quietly prevent.
    fn run_job(weak: &Weak<JobManager>, job: &Arc<Job>) {
        let handle = {
            let Some(manager) = weak.upgrade() else { return };
            {
                let mut inner = job.inner.lock();
                if inner.state != JobState::Queued {
                    // Cancelled while waiting in the queue; the gauge was
                    // already settled by whoever transitioned it.
                    return;
                }
                inner.state = JobState::Running;
            }
            match manager.service.resolve_handle(&SpaceSpec::Explicit(job.space.clone())) {
                Ok(handle) => handle,
                Err(e) => {
                    return manager.park_failed(job, format!("prepare failed: {}", e.message))
                }
            }
        };
        let mut consecutive = 0u32;
        for ordinal in 0..job.windows_total() {
            if job.inner.lock().completed[ordinal] {
                continue;
            }
            loop {
                // Abrupt abandon on stop or owner teardown: in-memory state
                // stays Running but the process is tearing down; durable
                // truth is the last checkpoint, exactly as after a crash.
                let Some(manager) = weak.upgrade() else { return };
                if manager.stop.load(Ordering::Relaxed) {
                    return;
                }
                if job.cancel.load(Ordering::Relaxed) {
                    return manager.park_cancelled(job);
                }
                match manager.service.sweep_handle(&handle, Some(job.window_range(ordinal))) {
                    Ok(_result) => {
                        // Records are not stored: a job's product is the
                        // warmed cache plus the completion record; clients
                        // fetch records with an (instant) warm sweep.
                        consecutive = 0;
                        let checkpoint = {
                            let mut inner = job.inner.lock();
                            inner.completed[ordinal] = true;
                            inner.dirty += 1;
                            inner.dirty >= job.checkpoint_every
                        };
                        mp_obs::counter("job_windows_completed").inc();
                        if checkpoint {
                            manager.checkpoint(job);
                        }
                        break;
                    }
                    Err(e) => {
                        consecutive += 1;
                        job.inner.lock().retries += 1;
                        mp_obs::counter("job_retries").inc();
                        if consecutive >= manager.config.failure_cap {
                            return manager.park_failed(
                                job,
                                format!(
                                    "window {ordinal} failed {consecutive} consecutive attempts; last error: {}",
                                    e.message
                                ),
                            );
                        }
                        let delay = manager.config.retry.delay(
                            consecutive,
                            job.fingerprint ^ ordinal as u64,
                            e.estimated_cost_ms,
                        );
                        drop(manager);
                        std::thread::sleep(delay);
                    }
                }
            }
        }
        let Some(manager) = weak.upgrade() else { return };
        {
            let mut inner = job.inner.lock();
            inner.state = JobState::Completed;
        }
        mp_obs::gauge("jobs_active").sub(1);
        // Final durable status write first, then collect the artifacts: a
        // crash between the two re-runs the GC on restore, never loses the
        // completion record.
        manager.checkpoint(job);
        manager.gc_terminal(job);
    }

    fn park_failed(&self, job: &Arc<Job>, reason: String) {
        mp_obs::warn("jobs", &format!("job {} parked failed: {reason}", job.id));
        {
            let mut inner = job.inner.lock();
            inner.state = JobState::Failed;
            inner.reason = reason;
        }
        mp_obs::gauge("jobs_active").sub(1);
        self.checkpoint(job);
    }

    fn park_cancelled(&self, job: &Arc<Job>) {
        {
            let mut inner = job.inner.lock();
            inner.state = JobState::Cancelled;
        }
        job.cancel.store(false, Ordering::Relaxed);
        mp_obs::gauge("jobs_active").sub(1);
        self.checkpoint(job);
    }

    /// Persist a checkpoint: spill the shard caches, then atomically
    /// replace the manifest — the manifest is the commit point, and a
    /// crash between the two only costs cache warmth (window evaluation
    /// is deterministic). Write failures degrade to a warning; the job
    /// keeps running with its previous durable state.
    fn checkpoint(&self, job: &Arc<Job>) {
        let started = Instant::now();
        let profiler = Profiler::global();
        let _span = profiler
            .is_enabled()
            .then(|| profiler.span(&format!("checkpoint {}", job.id), "checkpoint", thread_lane()));
        if let Some(dir) = &self.dir {
            if let Err(e) = self.service.save_cache_segments(dir) {
                mp_obs::warn("jobs", &format!("cache spill to {} failed: {e}", dir.display()));
            }
        }
        self.persist(job);
        {
            let mut inner = job.inner.lock();
            inner.checkpoints += 1;
            inner.dirty = 0;
        }
        mp_obs::histogram_ms("job_checkpoint_ms").record(started.elapsed().as_secs_f64() * 1_000.0);
    }

    /// Atomically write the job's manifest (durable managers only).
    fn persist(&self, job: &Arc<Job>) {
        let Some(dir) = &self.dir else { return };
        let path = dir.join(format!("{}.manifest", job.id));
        if let Err(e) = atomic_write(&path, &job.manifest().to_bytes()) {
            mp_obs::warn("jobs", &format!("manifest write {} failed: {e}", path.display()));
        }
    }

    /// Collect a completed job's durable artifacts *after* its final
    /// checkpoint committed the terminal state: remove the manifest, then
    /// — once the directory holds no manifest at all — the shared cache
    /// segments (a segment is only a warm start for some manifest's
    /// resume; with none left it is an orphan). Only `completed` jobs are
    /// collected: `cancelled`/`failed` manifests are the durable resume
    /// points `job_resume` honours across restarts.
    fn gc_terminal(&self, job: &Arc<Job>) {
        let Some(dir) = &self.dir else { return };
        let manifest = dir.join(format!("{}.manifest", job.id));
        if let Err(e) = std::fs::remove_file(&manifest) {
            mp_obs::warn("jobs", &format!("manifest GC {} failed: {e}", manifest.display()));
            return;
        }
        Self::prune_orphan_segments(dir);
    }

    /// Delete spilled cache segments — and stray `.tmp` leftovers of torn
    /// [`atomic_write`]s — once no manifest remains to resume from. Keeps
    /// everything while *any* manifest file exists, even an unreadable
    /// one: a conservative reader cannot tell a damaged resume point from
    /// a foreign file, and segments are cheap to keep by comparison.
    fn prune_orphan_segments(dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        let mut orphans = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            match path.extension().and_then(|e| e.to_str()) {
                Some("manifest") => return,
                Some("seg") | Some("tmp") => orphans.push(path),
                _ => {}
            }
        }
        for path in orphans {
            let _ = std::fs::remove_file(&path);
        }
    }
}

impl JobManager {
    /// Stop the runner **without** a final checkpoint and wait for it to
    /// exit — crash-equivalent by design (see the module docs): the
    /// in-flight window, if any, is abandoned between sweeps and durable
    /// state is whatever the last checkpoint left. `Drop` calls this, but
    /// note that when the runner itself holds a transient strong reference
    /// the drop impl runs *on the runner thread* (which cannot join
    /// itself); call `kill()` explicitly when you need the runner provably
    /// quiesced — e.g. before reopening the store directory — rather than
    /// relying on drop order.
    pub fn kill(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Closing the channel wakes the runner's blocking recv.
        *self.queue.lock() = None;
        if let Some(handle) = self.runner.lock().take() {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        self.kill();
    }
}
