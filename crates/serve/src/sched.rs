//! The work-stealing sweep scheduler: cost-sized work units on per-shard
//! deques, claimed by any worker, fused back in index order.
//!
//! Replaces the static band fan-out (one fixed slice per shard worker)
//! that PR 1–8 served from. Each admitted sweep is split into **work
//! units** sized by the planner's live per-scenario cost
//! ([`mp_dse::units`]) and pushed onto the deque of the unit's **home
//! shard** — the shard whose engine cache holds (or will hold) the unit's
//! scenarios. A worker drains its own deque front-to-back first
//! (warm-cache affinity); only when it is empty does it **steal half** of
//! the longest other deque, back half first, coarse-grained per the
//! Yavits/Morad/Ginosar synchronization analysis (one lock hop per ~ms of
//! work, not per scenario).
//!
//! **Stolen units still evaluate against their home shard's engine.** The
//! engines are shared (`Arc<Engine>`, concurrent caches), so a steal moves
//! *CPU* to the idle worker without moving *cache placement* — repeat
//! queries keep their 100% warm-hit guarantee deterministically, and
//! results stay bit-identical to `Engine::sweep` whoever ran them. Durable
//! placement only moves through **adaptive re-banding**
//! ([`Placement`]): a segment whose units keep getting stolen re-homes to
//! the stealing worker, paying one cold pass there, after which both the
//! CPU and the cache for that segment live on the less-loaded shard and
//! repeat queries land warm again without steals.
//!
//! The caller that submitted a sweep's units drains one reply per unit and
//! fuses the partial results in index order with the Merge-Path merge —
//! see `SweepService::sweep_scheduled`.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::Sender;
use mp_obs::hist::Histogram;
use mp_obs::metrics::Counter;
use mp_obs::profile::Profiler;
use std::sync::Condvar;

use parking_lot::Mutex;

use mp_dse::backend::EvalBackend;
use mp_dse::engine::{Engine, SweepConfig, SweepHandle, SweepResult};
use mp_par::pool::chunk_range;

/// Work units executed by any scheduler worker (home or thief).
pub(crate) fn obs_units_total() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("sched_units_total"))
}

/// Work units transferred off their home shard's deque by a steal.
pub(crate) fn obs_units_stolen() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("sched_units_stolen"))
}

/// Placement segments re-homed by adaptive re-banding.
pub(crate) fn obs_rebands() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("sched_rebands"))
}

/// Wall time a worker spent evaluating one work unit, milliseconds — the
/// per-shard busy/imbalance histogram (a skewed mix without stealing shows
/// up as a long tail here).
pub(crate) fn obs_shard_busy_ms() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::histogram_ms("sched_shard_busy_ms"))
}

/// Register every scheduler series (service construction calls this so an
/// idle scrape exports explicit zeros, not absent names).
pub(crate) fn register_metrics() {
    obs_units_total();
    obs_units_stolen();
    obs_rebands();
    obs_shard_busy_ms();
}

/// Placement segments per shard: fine enough that re-banding moves a
/// fraction of a band, coarse enough that the pressure counters stay
/// cheap.
const SEGMENTS_PER_SHARD: usize = 8;

/// Stolen executions a segment absorbs before it re-homes to the thief.
/// Deliberately high: a short burst (one cold pass, a handful of racing
/// clients) must not move placement — the warm-repeat tests pin exact
/// 100% hit rates across a cold+warm pass pair, and only a *persistently*
/// skewed mix should pay the one-cold-pass cost of moving a segment.
const REBAND_AFTER: u32 = 16;

/// Where each segment of one prepared space's index range currently lives:
/// the scheduler's durable, query-spanning placement map. Fresh placements
/// reproduce the static `chunk_range` bands exactly (so cache segments
/// spilled by an earlier process restore onto the shard that will probe
/// them); adaptive re-banding then moves segments under persistent steal
/// pressure. All state is atomic — racing queries may briefly disagree on
/// a segment's home, which costs a steal or a cold probe, never a wrong
/// answer.
pub(crate) struct Placement {
    /// Scenario count of the space this placement routes.
    n: usize,
    /// Scenarios per segment.
    seg_span: usize,
    /// Current home shard per segment.
    homes: Vec<AtomicUsize>,
    /// Stolen executions per segment since its last re-band.
    pressure: Vec<AtomicU32>,
}

impl Placement {
    pub(crate) fn new(n: usize, shards: usize) -> Placement {
        assert!(shards > 0, "placement needs at least one shard");
        let seg_span = n.div_ceil((shards * SEGMENTS_PER_SHARD).max(1)).max(1);
        let segments = n.div_ceil(seg_span);
        let homes = (0..segments)
            .map(|seg| {
                let index = seg * seg_span;
                // The shard whose static band owns the segment's first
                // scenario — identical routing to the old `band_slices`
                // for every fresh placement.
                let home = (0..shards)
                    .find(|&shard| chunk_range(shard, shards, n).contains(&index))
                    .unwrap_or(0);
                AtomicUsize::new(home)
            })
            .collect();
        Placement {
            n,
            seg_span,
            homes,
            pressure: (0..segments).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// The scenario count this placement was built for (callers verify it
    /// against the handle before routing — a fingerprint collision must
    /// fall back to a fresh placement, not index out of bounds).
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Decompose `range` into maximal same-home bands, in index order:
    /// `(home shard, scenario sub-range, covered segment ordinals)`.
    /// Trailing shards of an `n < shards` space simply never appear — a
    /// 1-scenario space yields exactly one band, never nothing.
    pub(crate) fn bands(&self, range: &Range<usize>) -> Vec<(usize, Range<usize>, Range<usize>)> {
        let mut bands: Vec<(usize, Range<usize>, Range<usize>)> = Vec::new();
        if range.start >= range.end {
            return bands;
        }
        let first_seg = range.start / self.seg_span;
        let last_seg = (range.end - 1) / self.seg_span;
        for seg in first_seg..=last_seg {
            let seg_range = seg * self.seg_span..((seg + 1) * self.seg_span).min(self.n);
            let slice = seg_range.start.max(range.start)..seg_range.end.min(range.end);
            if slice.is_empty() {
                continue;
            }
            let home = self.homes[seg].load(Ordering::Relaxed);
            match bands.last_mut() {
                Some((last_home, last_slice, last_segs))
                    if *last_home == home && last_slice.end == slice.start =>
                {
                    last_slice.end = slice.end;
                    last_segs.end = seg + 1;
                }
                _ => bands.push((home, slice, seg..seg + 1)),
            }
        }
        bands
    }

    /// The segment ordinals a scenario sub-range touches (empty in, empty
    /// out). Units carved *within* one band still need their own segment
    /// span: steal pressure is recorded per unit, not per band.
    pub(crate) fn segments_of(&self, range: &Range<usize>) -> Range<usize> {
        if range.start >= range.end {
            return 0..0;
        }
        range.start / self.seg_span..(range.end - 1) / self.seg_span + 1
    }

    /// Record that a unit covering `segments` was executed by `thief`
    /// after a steal. A segment whose pressure reaches [`REBAND_AFTER`]
    /// re-homes to the thief and its counter resets.
    fn record_steal(&self, segments: &Range<usize>, thief: usize) {
        for seg in segments.clone() {
            let pressure = self.pressure[seg].fetch_add(1, Ordering::Relaxed) + 1;
            if pressure >= REBAND_AFTER {
                self.pressure[seg].store(0, Ordering::Relaxed);
                if self.homes[seg].swap(thief, Ordering::Relaxed) != thief {
                    obs_rebands().inc();
                }
            }
        }
    }
}

/// What one executed unit reports back to the submitting caller.
pub(crate) struct UnitDone {
    /// First scenario index of the unit (its merge key).
    pub start: usize,
    /// The unit's home shard — the caller credits this shard's admission
    /// gauges.
    pub home: usize,
    /// Worker that executed the unit (diagnostics; read by the scheduler
    /// tests — production stats key on `home`, not the executing worker).
    #[cfg_attr(not(test), allow(dead_code))]
    pub worker: usize,
    /// Cost debited against the home shard at submit, microseconds.
    pub cost_us: u64,
    /// The evaluation, or the panic reason of a contained backend panic.
    pub result: Result<SweepResult, String>,
}

/// One schedulable work unit: a sub-range of an admitted sweep, routed to
/// its home shard's deque.
pub(crate) struct WorkUnit {
    pub handle: Arc<SweepHandle<'static>>,
    pub range: Range<usize>,
    /// Placement segment ordinals this unit covers (steal-pressure keys).
    pub segments: Range<usize>,
    pub home: usize,
    pub config: SweepConfig,
    pub placement: Arc<Placement>,
    pub reply: Sender<UnitDone>,
    /// When the unit entered its deque ([`mp_obs::monotonic_ns`]).
    pub enqueued_ns: u64,
    pub cost_us: u64,
    /// Set when a steal transferred the unit off its home deque.
    stolen: bool,
}

impl WorkUnit {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        handle: Arc<SweepHandle<'static>>,
        range: Range<usize>,
        segments: Range<usize>,
        home: usize,
        config: SweepConfig,
        placement: Arc<Placement>,
        reply: Sender<UnitDone>,
        cost_us: u64,
    ) -> WorkUnit {
        WorkUnit {
            handle,
            range,
            segments,
            home,
            config,
            placement,
            reply,
            enqueued_ns: mp_obs::monotonic_ns(),
            cost_us,
            stolen: false,
        }
    }
}

struct SchedState {
    queues: Vec<VecDeque<WorkUnit>>,
    shutdown: bool,
}

struct SchedInner {
    state: Mutex<SchedState>,
    available: Condvar,
    engines: Vec<Arc<Engine>>,
    backend: Arc<dyn EvalBackend + Send + Sync>,
    steal: bool,
}

/// The scheduler: one deque and one worker thread per shard over the
/// shared engines. See the module docs.
pub(crate) struct Scheduler {
    inner: Arc<SchedInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawn one worker per engine. With `steal` off, every unit runs on
    /// its home worker — the static-bands baseline, selectable for
    /// measurements via `ServiceConfig::steal`.
    pub(crate) fn new(
        engines: Vec<Arc<Engine>>,
        backend: Arc<dyn EvalBackend + Send + Sync>,
        steal: bool,
    ) -> Scheduler {
        register_metrics();
        let shards = engines.len();
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                queues: (0..shards).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            available: Condvar::new(),
            engines,
            backend,
            steal,
        });
        let workers = (0..shards)
            .map(|index| {
                let worker_inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mp-serve-worker-{index}"))
                    .spawn(move || worker_loop(index, &worker_inner))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        Scheduler { inner, workers }
    }

    /// Push a sweep's units onto their home deques and wake the workers.
    /// Fails (units returned untouched) only after shutdown.
    pub(crate) fn submit(&self, units: Vec<WorkUnit>) -> Result<(), Vec<WorkUnit>> {
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return Err(units);
        }
        for unit in units {
            state.queues[unit.home].push_back(unit);
        }
        drop(state);
        self.inner.available.notify_all();
        Ok(())
    }

    /// Stop accepting work, let the workers drain what is queued, join
    /// them.
    pub(crate) fn shutdown(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Move the back half of the longest other deque onto `me`'s. Returns how
/// many units were transferred. Pure deque surgery under the state lock —
/// factored out so the steal policy is testable without threads.
fn steal_half(state: &mut SchedState, me: usize) -> usize {
    let victim = (0..state.queues.len())
        .filter(|&i| i != me)
        .max_by_key(|&i| state.queues[i].len())
        .filter(|&i| !state.queues[i].is_empty());
    let Some(victim) = victim else { return 0 };
    let take = state.queues[victim].len().div_ceil(2);
    // The back half: the units the victim would reach last, so the owner
    // keeps draining undisturbed from the front.
    let keep = state.queues[victim].len() - take;
    let mut taken = state.queues[victim].split_off(keep);
    for unit in &mut taken {
        unit.stolen = true;
    }
    state.queues[me].append(&mut taken);
    obs_units_stolen().add(take as u64);
    take
}

fn worker_loop(me: usize, inner: &Arc<SchedInner>) {
    loop {
        let unit = {
            let mut state = inner.state.lock();
            loop {
                if let Some(unit) = state.queues[me].pop_front() {
                    break unit;
                }
                if inner.steal && steal_half(&mut state, me) > 0 {
                    continue;
                }
                if state.shutdown {
                    return;
                }
                state = inner.available.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        execute(me, inner, unit);
    }
}

/// Evaluate one unit on its **home** engine (cache affinity survives the
/// steal — see the module docs) and report back. Backend panics are
/// contained to the unit: the worker lives on to serve the next one.
fn execute(me: usize, inner: &SchedInner, unit: WorkUnit) {
    let waited_ns = mp_obs::monotonic_ns().saturating_sub(unit.enqueued_ns);
    crate::service::obs_queue_wait_ms().record(waited_ns as f64 / 1e6);
    let profiler = Profiler::global();
    let _span = profiler.is_enabled().then(|| {
        profiler.span(
            &format!("unit {}..{} home {}", unit.range.start, unit.range.end, unit.home),
            "serve",
            me as u64,
        )
    });
    let engine = &inner.engines[unit.home];
    let started = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.sweep_range(&unit.handle, inner.backend.as_ref(), &unit.config, unit.range.clone())
    }))
    .map_err(|payload| {
        let reason = crate::service::panic_reason(payload.as_ref());
        mp_obs::warn(
            "serve",
            &format!(
                "unit {}..{} (home {}) panicked on worker {me}: {reason}",
                unit.range.start, unit.range.end, unit.home
            ),
        );
        reason
    });
    obs_shard_busy_ms().record(started.elapsed().as_secs_f64() * 1e3);
    obs_units_total().inc();
    // Steal pressure drives re-banding, and re-banding evicts the old
    // home's warm entries — so only steals that did real evaluation work
    // count. A stolen unit served entirely from the home cache cost its
    // thief microseconds; letting it move placement would churn warm
    // segments between shards forever on hot (fully cached) bands.
    let evaluated = matches!(&result, Ok(partial) if partial.stats.cache_misses > 0);
    if unit.stolen && evaluated {
        unit.placement.record_steal(&unit.segments, me);
    }
    // A dropped reply receiver just means the querying connection went
    // away mid-sweep.
    let _ = unit.reply.send(UnitDone {
        start: unit.range.start,
        home: unit.home,
        worker: me,
        cost_us: unit.cost_us,
        result,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use mp_dse::backend::AnalyticBackend;
    use mp_dse::scenario::ScenarioSpace;

    fn dummy_unit(home: usize, start: usize, reply: &Sender<UnitDone>) -> WorkUnit {
        static HANDLE: OnceLock<Arc<SweepHandle<'static>>> = OnceLock::new();
        let handle = HANDLE.get_or_init(|| {
            Arc::new(SweepHandle::owned(
                ScenarioSpace::new()
                    .clear_designs()
                    .add_symmetric_grid((0..64).map(|i| 1.0 + i as f64)),
            ))
        });
        WorkUnit::new(
            Arc::clone(handle),
            start..start + 1,
            0..1,
            home,
            SweepConfig::default(),
            Arc::new(Placement::new(64, 2)),
            reply.clone(),
            0,
        )
    }

    #[test]
    fn fresh_placement_reproduces_the_static_bands() {
        for (n, shards) in [(100usize, 4usize), (7, 3), (1, 4), (1, 8), (8192, 2)] {
            let placement = Placement::new(n, shards);
            let bands = placement.bands(&(0..n));
            // Exhaustive, disjoint, index-ordered.
            let mut walked = 0usize;
            for (home, slice, _) in &bands {
                assert_eq!(slice.start, walked, "n={n} shards={shards}");
                assert!(*home < shards);
                walked = slice.end;
            }
            assert_eq!(walked, n, "bands cover the range: n={n} shards={shards}");
            // Every scenario routes to the shard whose static band owns it.
            for (home, slice, _) in &bands {
                for shard in 0..shards {
                    let band = chunk_range(shard, shards, n);
                    if band.contains(&slice.start) {
                        assert_eq!(*home, shard, "n={n} shards={shards} slice {slice:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn one_scenario_spaces_yield_one_band_at_any_shard_count() {
        for shards in [1usize, 4, 8, 16] {
            let placement = Placement::new(1, shards);
            let bands = placement.bands(&(0..1));
            assert_eq!(bands.len(), 1, "shards={shards}");
            assert_eq!(bands[0].1, 0..1);
            assert_eq!(bands[0].0, 0, "index 0 belongs to shard 0's band");
            assert!(placement.bands(&(0..0)).is_empty(), "empty range yields nothing");
        }
    }

    #[test]
    fn persistent_steal_pressure_rebands_a_segment_to_the_thief() {
        let placement = Placement::new(256, 2);
        let segments = 0..1;
        let original = placement.homes[0].load(Ordering::Relaxed);
        for _ in 0..REBAND_AFTER - 1 {
            placement.record_steal(&segments, 1);
        }
        assert_eq!(
            placement.homes[0].load(Ordering::Relaxed),
            original,
            "below the threshold placement must not move"
        );
        placement.record_steal(&segments, 1);
        assert_eq!(placement.homes[0].load(Ordering::Relaxed), 1, "threshold re-homes to thief");
        // The counter reset: the next burst needs a full run again.
        placement.record_steal(&segments, 0);
        assert_eq!(placement.homes[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn steal_half_takes_the_back_half_of_the_longest_victim() {
        let (reply, _rx) = unbounded();
        let mut state = SchedState {
            queues: vec![VecDeque::new(), VecDeque::new(), VecDeque::new()],
            shutdown: false,
        };
        for start in 0..5 {
            state.queues[0].push_back(dummy_unit(0, start, &reply));
        }
        state.queues[2].push_back(dummy_unit(2, 100, &reply));
        let took = steal_half(&mut state, 1);
        assert_eq!(took, 3, "ceil(5/2) from the longest deque");
        assert_eq!(state.queues[0].len(), 2);
        assert_eq!(state.queues[1].len(), 3);
        // The thief got the back half, in order, marked stolen.
        let starts: Vec<usize> = state.queues[1].iter().map(|u| u.range.start).collect();
        assert_eq!(starts, vec![2, 3, 4]);
        assert!(state.queues[1].iter().all(|u| u.stolen));
        // The owner keeps its front, unmarked.
        assert!(state.queues[0].iter().all(|u| !u.stolen));

        // Nothing left to steal from anyone but ourselves: no-op.
        state.queues[0].clear();
        state.queues[2].clear();
        assert_eq!(steal_half(&mut state, 1), 0);
    }

    #[test]
    fn scheduler_executes_homed_units_and_shuts_down_clean() {
        let space = ScenarioSpace::new()
            .clear_designs()
            .add_symmetric_grid((0..32).map(|i| 1.0 + i as f64 * 0.5));
        let handle = Arc::new(SweepHandle::owned(space));
        let engines = vec![Arc::new(Engine::new(1)), Arc::new(Engine::new(1))];
        let backend: Arc<dyn EvalBackend + Send + Sync> = Arc::new(AnalyticBackend);
        let scheduler = Scheduler::new(engines, backend, true);
        let placement = Arc::new(Placement::new(handle.len(), 2));
        let (reply, done) = unbounded();
        let units = vec![
            WorkUnit::new(
                Arc::clone(&handle),
                0..16,
                0..1,
                0,
                SweepConfig::default(),
                Arc::clone(&placement),
                reply.clone(),
                1,
            ),
            WorkUnit::new(
                Arc::clone(&handle),
                16..32,
                1..2,
                1,
                SweepConfig::default(),
                Arc::clone(&placement),
                reply.clone(),
                1,
            ),
        ];
        drop(reply);
        scheduler.submit(units).unwrap_or_else(|_| panic!("submit before shutdown succeeds"));
        let mut partials: Vec<UnitDone> = (0..2).map(|_| done.recv().unwrap()).collect();
        partials.sort_by_key(|p| p.start);
        assert_eq!(partials[0].start, 0);
        assert_eq!(partials[1].start, 16);
        for partial in &partials {
            assert!(partial.worker < 2, "worker id is one of the two spawned lanes");
            assert_eq!(partial.result.as_ref().unwrap().records.len(), 16);
        }
        let mut scheduler = scheduler;
        scheduler.shutdown();
        let (reply, _rx) = unbounded();
        let late =
            WorkUnit::new(handle, 0..1, 0..1, 0, SweepConfig::default(), placement, reply, 1);
        assert!(scheduler.submit(vec![late]).is_err(), "submits after shutdown are refused");
    }
}
