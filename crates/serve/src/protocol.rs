//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every message is one JSON object on one line. Clients send
//! [`RequestEnvelope`]s (`{"id":N,"request":{...}}`) and receive one or more
//! [`ResponseEnvelope`]s tagged with the same id; every request is answered
//! by exactly one **terminal** response, optionally preceded by streamed
//! [`Response::SweepChunk`] lines: a sweep's records arrive in index-ordered
//! chunks, each encoded, written and flushed before the next is built, so a
//! large answer is never buffered as one whole-result line (at most one
//! chunk's wire copy is alive at a time on the server). Correlation ids are
//! client-chosen but must be **≥ 1**: id `0` is reserved for
//! server-generated [`Response::Error`]s about lines that could not be
//! parsed into a request at all.
//!
//! ## Bit-exactness
//!
//! Sweep records travel as [`WireRecord`]s: the three `f64` fields are
//! encoded as 16-digit hex bit patterns, never as JSON numbers. JSON cannot
//! represent `NaN` (the engine's marker for designs that do not fit their
//! budget) and a decimal round-trip of a computed `NaN` would not be
//! bit-stable, so the hex encoding is what lets the differential tests assert
//! that service answers are *bit-identical* to a direct [`Engine::sweep`].
//! Figure curves ([`Response::Curves`]) contain only finite values and use
//! plain numbers, which the workspace's JSON printer round-trips exactly.
//!
//! [`Engine::sweep`]: mp_dse::engine::Engine::sweep

use serde::{Deserialize, Serialize};

use mp_dse::analysis::CostAxis;
use mp_dse::cache::CacheStats;
use mp_dse::curves::Figure;
use mp_dse::engine::{EvalRecord, SweepStats};
use mp_dse::scenario::ScenarioSpace;
use mp_model::explore::Curve;

/// Protocol identity reported by `ping`; bump on incompatible changes.
/// `mp-serve/2` adds pipelining (multiple in-flight requests per connection,
/// responses strictly in request order) and the [`Response::Busy`] admission
/// signal; every `mp-serve/1` exchange is still valid. `mp-serve/3` adds the
/// query planner: [`Response::Busy`] carries the estimated cost that was
/// rejected and sweep statistics carry the `coalesced` marker. `mp-serve/4`
/// adds durable sweep jobs: the `job_submit` / `job_status` / `job_cancel` /
/// `job_resume` verbs and the [`Response::Job`] snapshot they answer with.
pub const PROTOCOL_VERSION: &str = "mp-serve/4";

/// Default scenario count per streamed sweep chunk.
pub const DEFAULT_CHUNK: usize = 8192;

/// Longest request line the server accepts, in bytes. A line that grows past
/// this without a newline is answered with an id-0 [`Response::Error`] and
/// discarded up to its terminating newline; the connection survives. The cap
/// is what keeps one connection's receive buffer bounded no matter what the
/// client sends.
pub const MAX_REQUEST_LINE: usize = 4 << 20;

/// One client request, tagged with a client-chosen correlation id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Correlation id echoed on every response to this request. Must be
    /// ≥ 1 — id `0` is reserved for server errors about unparseable lines.
    pub id: u64,
    /// The request itself.
    pub request: Request,
}

/// The scenario space a query runs over: sent explicitly, or assembled from
/// the service's calibration catalogue so clients can address calibrated
/// applications by id instead of shipping parameter sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SpaceSpec {
    /// A fully explicit space.
    Explicit(ScenarioSpace),
    /// `space` with its application axis replaced by the catalogue entries
    /// named by `ids` (16-hex-digit fingerprints from [`Response::Catalogue`]),
    /// in the given order.
    Catalogue {
        /// Catalogue ids supplying the application axis.
        ids: Vec<String>,
        /// The remaining axes (its own application axis is ignored).
        space: ScenarioSpace,
    },
    /// A space previously registered with [`Request::Prepare`], addressed by
    /// the 16-hex-digit id the server returned. The request is ~60 bytes
    /// instead of the space's whole JSON, and the server skips the parse,
    /// clone and fingerprint work on every query — the protocol's
    /// prepared-statement analogue. Ids are served LRU: a long-evicted id
    /// answers with an error and the client re-prepares.
    Prepared {
        /// The id from [`Response::Prepared`].
        id: String,
    },
}

/// A query or control message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Service, shard and cache statistics.
    Stats,
    /// The process-wide metrics-registry snapshot (counters, gauges,
    /// latency histograms) as JSON plus Prometheus exposition text.
    Metrics,
    /// List the service's calibration catalogue.
    Catalogue,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// Evaluate `[start, end)` of the space (the full space when
    /// `start == 0 && end == space.len()`); records stream back in
    /// index-ordered chunks of `chunk` scenarios (`0` = server default).
    Sweep {
        /// The space to sweep.
        space: SpaceSpec,
        /// First flat scenario index (inclusive).
        start: usize,
        /// Last flat scenario index (exclusive).
        end: usize,
        /// Records per streamed chunk (`0` = [`DEFAULT_CHUNK`]).
        chunk: usize,
    },
    /// The `k` highest-speedup records of a full sweep.
    TopK {
        /// The space to sweep.
        space: SpaceSpec,
        /// Number of records to return.
        k: usize,
    },
    /// The Pareto frontier (speedup vs `cost`) of a full sweep.
    Pareto {
        /// The space to sweep.
        space: SpaceSpec,
        /// The cost axis to minimise.
        cost: CostAxis,
    },
    /// The engine-reproduced curve family of one paper figure.
    Curve {
        /// Which figure.
        figure: Figure,
    },
    /// Register a space server-side and get back a [`SpaceSpec::Prepared`]
    /// id for it: the space is resolved, its columnar tables are built (or
    /// found warm) and pinned in the prepared-handle cache, and subsequent
    /// queries can address it by id instead of shipping it.
    Prepare {
        /// The space to prepare.
        space: SpaceSpec,
    },
    /// Submit a **durable job**: a sweep of `[start, end)` driven window by
    /// window by a background runner instead of streamed on this
    /// connection. The answer is an immediate [`Response::Job`] snapshot;
    /// progress is polled with [`Request::JobStatus`]. On a server started
    /// with a jobs directory, the job checkpoints every `checkpoint_every`
    /// windows and survives a crash (see the `jobs` module docs).
    JobSubmit {
        /// The space to sweep.
        space: SpaceSpec,
        /// First flat scenario index (inclusive).
        start: usize,
        /// Last flat scenario index (exclusive).
        end: usize,
        /// Scenarios per runner window (`0` = [`DEFAULT_CHUNK`]). Windows
        /// are the unit of checkpointing, retry and resume.
        chunk: usize,
        /// Checkpoint cadence in completed windows (`0` = server default).
        checkpoint_every: usize,
    },
    /// A snapshot of one job's state and progress.
    JobStatus {
        /// The id from the submit-time [`Response::Job`].
        id: String,
    },
    /// Graceful cancel: the runner stops after the window in flight,
    /// checkpoints, and parks the job as `cancelled` (resumable).
    JobCancel {
        /// The id from the submit-time [`Response::Job`].
        id: String,
    },
    /// Re-enqueue a `suspended` (restored from disk), `failed` or
    /// `cancelled` job. Completed windows are **not** re-evaluated.
    JobResume {
        /// The id from the submit-time [`Response::Job`].
        id: String,
    },
}

impl Request {
    /// The request's stable verb name: the label used for per-verb metric
    /// series (`requests_total_<verb>`, `serve_request_ms_<verb>`) and for
    /// request traces.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Catalogue => "catalogue",
            Request::Shutdown => "shutdown",
            Request::Sweep { .. } => "sweep",
            Request::TopK { .. } => "top_k",
            Request::Pareto { .. } => "pareto",
            Request::Curve { .. } => "curve",
            Request::Prepare { .. } => "prepare",
            Request::JobSubmit { .. } => "job_submit",
            Request::JobStatus { .. } => "job_status",
            Request::JobCancel { .. } => "job_cancel",
            Request::JobResume { .. } => "job_resume",
        }
    }
}

/// One service response, tagged with the originating request's id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Correlation id of the request being answered.
    pub id: u64,
    /// The response payload.
    pub response: Response,
}

/// A response payload. [`Response::SweepChunk`] is the only non-terminal
/// variant; everything else completes its request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: String,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServiceStats),
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The registry snapshot as one JSON object
        /// (`{"counters":{..},"gauges":{..},"histograms":{..}}`).
        json: String,
        /// The same snapshot as Prometheus exposition text.
        prometheus: String,
    },
    /// Answer to [`Request::Catalogue`].
    Catalogue {
        /// Every registered calibration.
        entries: Vec<CatalogueEntry>,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// One index-ordered slice of an in-flight sweep (non-terminal).
    SweepChunk {
        /// Flat scenario index of the first record in the chunk.
        start: usize,
        /// The records, consecutive from `start`.
        records: Vec<WireRecord>,
    },
    /// Terminal line of a sweep: the merged statistics.
    SweepDone {
        /// Merged sweep statistics across the participating shards.
        stats: SweepStats,
    },
    /// Answer to [`Request::TopK`] / [`Request::Pareto`].
    Records {
        /// The selected records, in result order.
        records: Vec<WireRecord>,
    },
    /// Answer to [`Request::Curve`].
    Curves {
        /// The figure's curve family.
        curves: Vec<Curve>,
    },
    /// Answer to [`Request::Prepare`].
    Prepared {
        /// The id [`SpaceSpec::Prepared`] takes (16 hex digits).
        id: String,
        /// Scenario count of the prepared space (what range queries are
        /// validated against).
        scenarios: usize,
    },
    /// Answer to every job verb: the job's state snapshot after the verb
    /// took effect.
    Job(JobSnapshot),
    /// The request failed; no further responses follow.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The service's admission queues are full; the request was **not**
    /// executed and can be retried. Terminal, like [`Response::Error`], but
    /// distinguishable so clients can back off instead of giving up.
    Busy {
        /// Human-readable reason (which gate rejected the request).
        message: String,
        /// The planner's cost estimate for the rejected query in
        /// milliseconds (`0.0` when the rejection predates costing). Lets a
        /// client scale its backoff to the work it asked for.
        estimated_cost_ms: f64,
    },
}

impl Response {
    /// Whether this response completes its request.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::SweepChunk { .. })
    }
}

/// One durable job's state and progress in wire form — what every job verb
/// answers with ([`Response::Job`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSnapshot {
    /// The job's id (assign at submit, stable across restarts).
    pub id: String,
    /// Lifecycle state: `queued`, `running`, `suspended` (restored from
    /// disk, awaiting resume), `cancelling`, `cancelled`, `completed` or
    /// `failed`.
    pub state: String,
    /// Why the job parked as `failed` (empty otherwise).
    pub reason: String,
    /// The swept space's content fingerprint, 16 hex digits.
    pub fingerprint: String,
    /// First flat scenario index (inclusive).
    pub start: usize,
    /// Last flat scenario index (exclusive).
    pub end: usize,
    /// Scenarios per runner window.
    pub window: usize,
    /// Total windows in `[start, end)`.
    pub windows_total: usize,
    /// Windows evaluated and recorded complete.
    pub windows_completed: usize,
    /// Scenarios inside completed windows.
    pub scenarios_completed: usize,
    /// Window attempts that failed and were retried (or gave up) over the
    /// job's lifetime.
    pub retries: u64,
    /// Checkpoints persisted over the job's lifetime.
    pub checkpoints: u64,
    /// Checkpoint cadence, completed windows per checkpoint.
    pub checkpoint_every: usize,
}

impl JobSnapshot {
    /// Whether the state is one the runner will make no further progress on
    /// without an explicit `resume` (`completed`, `cancelled`, `failed` or
    /// `suspended`).
    pub fn is_settled(&self) -> bool {
        matches!(self.state.as_str(), "completed" | "cancelled" | "failed" | "suspended")
    }
}

/// Aggregate service statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// The backend the service evaluates with.
    pub backend: String,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardStats>,
    /// Queries answered since the service started.
    pub queries: u64,
    /// Prepared sweep snapshots ([`SpaceTables`]) resident in the handle
    /// cache.
    ///
    /// [`SpaceTables`]: mp_dse::tables::SpaceTables
    pub prepared_spaces: usize,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// The process-wide metrics-registry snapshot at stats time, as one
    /// JSON object (same shape as [`Response::Metrics`]'s `json`).
    pub metrics: String,
}

impl ServiceStats {
    /// Cache totals summed over every shard.
    pub fn cache_totals(&self) -> CacheStats {
        let mut totals = CacheStats {
            entries: 0,
            capacity: 0,
            hits: 0,
            misses: 0,
            probes: 0,
            inserts: 0,
            migrations: 0,
        };
        for shard in &self.shards {
            totals.entries += shard.cache.entries;
            totals.capacity += shard.cache.capacity;
            totals.hits += shard.cache.hits;
            totals.misses += shard.cache.misses;
            totals.probes += shard.cache.probes;
            totals.inserts += shard.cache.inserts;
            totals.migrations += shard.cache.migrations;
        }
        totals
    }
}

/// One shard's state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Worker threads inside the shard's engine.
    pub threads: usize,
    /// The shard engine's memoisation-cache snapshot.
    pub cache: CacheStats,
}

/// One calibration catalogue listing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogueEntry {
    /// Fingerprint id (16 hex digits) — what [`SpaceSpec::Catalogue`] takes.
    pub id: String,
    /// Application name.
    pub name: String,
    /// Fitted growth-function label.
    pub growth: String,
    /// Parallel fraction of the calibration.
    pub f: f64,
    /// Root-mean-square residual of the growth fit.
    pub fit_rmse: f64,
}

/// An [`EvalRecord`] in wire form: `[index, speedup, cores, area]` with the
/// floats as 16-digit hex bit patterns (see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRecord(pub EvalRecord);

impl From<EvalRecord> for WireRecord {
    fn from(record: EvalRecord) -> Self {
        WireRecord(record)
    }
}

impl From<WireRecord> for EvalRecord {
    fn from(wire: WireRecord) -> Self {
        wire.0
    }
}

/// Convert records to wire form.
pub fn to_wire(records: &[EvalRecord]) -> Vec<WireRecord> {
    records.iter().copied().map(WireRecord).collect()
}

/// Convert wire records back to engine records.
pub fn from_wire(records: &[WireRecord]) -> Vec<EvalRecord> {
    records.iter().map(|w| w.0).collect()
}

impl Serialize for WireRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Arr(vec![
            serde::Value::Num(self.0.index as f64),
            serde::Value::Str(format!("{:016x}", self.0.speedup.to_bits())),
            serde::Value::Str(format!("{:016x}", self.0.cores.to_bits())),
            serde::Value::Str(format!("{:016x}", self.0.area.to_bits())),
        ])
    }
}

impl Deserialize for WireRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let arr = v.as_arr().ok_or_else(|| serde::Error::new("expected wire-record array"))?;
        if arr.len() != 4 {
            return Err(serde::Error::new("wire record must have 4 elements"));
        }
        let index = arr[0]
            .as_f64()
            .ok_or_else(|| serde::Error::new("wire record index must be a number"))?
            as usize;
        let mut bits = [0u64; 3];
        for (slot, value) in bits.iter_mut().zip(&arr[1..]) {
            let hex =
                value.as_str().ok_or_else(|| serde::Error::new("expected hex-bits string"))?;
            *slot = u64::from_str_radix(hex, 16)
                .map_err(|_| serde::Error::new("malformed hex-bits string"))?;
        }
        Ok(WireRecord(EvalRecord {
            index,
            speedup: f64::from_bits(bits[0]),
            cores: f64::from_bits(bits[1]),
            area: f64::from_bits(bits[2]),
        }))
    }
}

/// Incremental splitter of a byte stream into protocol lines.
///
/// This is the reactor's per-connection receive state: bytes arrive in
/// whatever pieces the socket produces ([`LineDecoder::push`]), and
/// [`LineDecoder::next_line`] drains complete newline-terminated lines as
/// they become available — a line split across any number of reads, or many
/// lines in one read, decode identically. The buffer is bounded: a line
/// longer than `max_line` yields one error and is then discarded up to its
/// terminating newline, after which decoding resumes cleanly — one abusive
/// (or corrupted) line costs one error response, not the connection or the
/// server's memory. Bytes that are not valid UTF-8 likewise yield an error
/// for that line only.
///
/// Empty and whitespace-only lines are skipped, matching the blocking
/// server's behaviour since protocol v1.
#[derive(Debug)]
pub struct LineDecoder {
    buf: Vec<u8>,
    /// Bytes before `start` have been consumed.
    start: usize,
    /// Scan for the next newline resumes here (never rescans consumed bytes).
    scanned: usize,
    max_line: usize,
    /// An oversized line is being discarded up to its newline; the error has
    /// already been emitted.
    skipping: bool,
}

impl LineDecoder {
    /// A decoder that rejects lines longer than `max_line` bytes.
    pub fn new(max_line: usize) -> Self {
        assert!(max_line > 0, "line limit must be positive");
        LineDecoder { buf: Vec::new(), start: 0, scanned: 0, max_line, skipping: false }
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (diagnostics; bounded by `max_line` plus one
    /// read's worth).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next complete line, `Err` for a line that cannot become a request
    /// (oversized or not UTF-8), or `None` when more bytes are needed.
    pub fn next_line(&mut self) -> Option<Result<String, String>> {
        loop {
            let newline = self.buf[self.scanned..].iter().position(|&b| b == b'\n');
            match newline {
                Some(offset) => {
                    let end = self.scanned + offset;
                    let line_start = self.start;
                    self.start = end + 1;
                    self.scanned = self.start;
                    if self.skipping {
                        // The tail of a line already reported as oversized.
                        self.skipping = false;
                        continue;
                    }
                    let raw = &self.buf[line_start..end];
                    if raw.len() > self.max_line {
                        // The whole over-limit line (newline included)
                        // arrived inside one read, so the no-newline cap
                        // check never fired; the limit must not depend on
                        // how TCP happened to segment the bytes.
                        return Some(Err(format!(
                            "request line exceeds the {}-byte limit",
                            self.max_line
                        )));
                    }
                    if raw.iter().all(|b| b.is_ascii_whitespace()) {
                        continue;
                    }
                    return Some(
                        std::str::from_utf8(raw)
                            .map(|s| s.trim_end_matches('\r').to_string())
                            .map_err(|_| "request line is not valid UTF-8".to_string()),
                    );
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.skipping {
                        // Still inside a line already reported as oversized:
                        // discard its continuation *now*, not at the
                        // newline — otherwise a client streaming a
                        // newline-free torrent would grow this buffer
                        // without bound despite the cap.
                        self.start = self.buf.len();
                        return None;
                    }
                    let pending = self.buf.len() - self.start;
                    if pending <= self.max_line {
                        return None;
                    }
                    // Discard the oversized prefix now (the bytes can never
                    // be part of a valid line) and keep discarding until the
                    // newline arrives.
                    self.start = self.buf.len();
                    self.skipping = true;
                    return Some(Err(format!(
                        "request line exceeds the {}-byte limit",
                        self.max_line
                    )));
                }
            }
        }
    }

    /// Drop consumed bytes once they dominate the buffer, so the allocation
    /// tracks the *unconsumed* tail instead of growing with connection
    /// lifetime.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            self.scanned = 0;
        } else if self.start > 4096 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
    }
}

/// Encode one protocol message as its wire line (no trailing newline).
pub fn encode_line<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("protocol messages always serialise")
}

/// Replicate the workspace JSON printer's number formatting exactly (whole
/// numbers as integers, otherwise shortest round-trip), appending without
/// intermediate allocation. Byte-identity with [`encode_line`] is what lets
/// the fast chunk path below coexist with the generic one.
fn push_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 {
        out.push_str(if n.is_sign_negative() { "-0.0" } else { "0" });
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Fast encoder for the protocol's dominant line — a sweep chunk — building
/// the JSON text directly instead of materialising the intermediate value
/// tree (which costs ~8 heap allocations *per record* in the workspace's
/// offline serde). Produces **byte-identical** output to
/// `encode_line(&ResponseEnvelope { id, response: Response::SweepChunk {
/// start, records: to_wire(records) } })`; a test pins that equivalence.
pub fn encode_chunk_line(id: u64, start: usize, records: &[EvalRecord]) -> String {
    use std::fmt::Write;
    // ~64 bytes of fixed framing + ~70 bytes per encoded record.
    let mut out = String::with_capacity(80 + records.len() * 72);
    out.push_str("{\"id\":");
    push_number(&mut out, id as f64);
    out.push_str(",\"response\":{\"SweepChunk\":{\"start\":");
    push_number(&mut out, start as f64);
    out.push_str(",\"records\":[");
    for (offset, record) in records.iter().enumerate() {
        if offset > 0 {
            out.push(',');
        }
        out.push('[');
        push_number(&mut out, record.index as f64);
        let _ = write!(
            out,
            ",\"{:016x}\",\"{:016x}\",\"{:016x}\"]",
            record.speedup.to_bits(),
            record.cores.to_bits(),
            record.area.to_bits(),
        );
    }
    out.push_str("]}}}");
    out
}

/// Fast decoder for lines produced by [`encode_chunk_line`] (or the generic
/// encoder — same bytes). Returns `None` for anything that is not exactly a
/// compact sweep-chunk envelope, in which case the caller falls back to the
/// generic parser; the fast path can therefore never *mis*parse, only
/// decline.
pub fn decode_chunk_line(line: &str) -> Option<ResponseEnvelope> {
    let rest = line.strip_prefix("{\"id\":")?;
    let (id, rest) = take_integer(rest)?;
    let rest = rest.strip_prefix(",\"response\":{\"SweepChunk\":{\"start\":")?;
    let (start, rest) = take_integer(rest)?;
    let mut rest = rest.strip_prefix(",\"records\":[")?;
    let mut records = Vec::new();
    if let Some(closed) = rest.strip_prefix(']') {
        if closed != "}}}" {
            return None;
        }
        return Some(ResponseEnvelope {
            id: id as u64,
            response: Response::SweepChunk { start: start as usize, records },
        });
    }
    loop {
        let body = rest.strip_prefix('[')?;
        let (index, body) = take_integer(body)?;
        let (speedup, body) = take_hex_field(body)?;
        let (cores, body) = take_hex_field(body)?;
        let (area, body) = take_hex_field(body)?;
        let body = body.strip_prefix(']')?;
        records.push(WireRecord(EvalRecord {
            index: index as usize,
            speedup: f64::from_bits(speedup),
            cores: f64::from_bits(cores),
            area: f64::from_bits(area),
        }));
        match body.as_bytes().first()? {
            b',' => rest = &body[1..],
            b']' => {
                if &body[1..] != "}}}" {
                    return None;
                }
                return Some(ResponseEnvelope {
                    id: id as u64,
                    response: Response::SweepChunk { start: start as usize, records },
                });
            }
            _ => return None,
        }
    }
}

/// Parse a plain non-negative decimal integer prefix (the only form the
/// compact printer emits for ids, starts and indices).
fn take_integer(s: &str) -> Option<(u128, &str)> {
    let bytes = s.as_bytes();
    let mut end = 0;
    let mut value: u128 = 0;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        value = value.checked_mul(10)?.checked_add((bytes[end] - b'0') as u128)?;
        end += 1;
    }
    // Reject empty matches, and any value past f64's exact-integer range —
    // the generic path round-trips numbers through f64, so the fast path
    // only accepts what both paths decode identically.
    if end == 0 || value >= (1u128 << 53) {
        return None;
    }
    Some((value, &s[end..]))
}

/// Parse `,"<16 hex digits>"`.
fn take_hex_field(s: &str) -> Option<(u64, &str)> {
    let rest = s.strip_prefix(",\"")?;
    let bytes = rest.as_bytes();
    if bytes.len() < 17 || bytes[16] != b'"' || !bytes[..16].iter().all(u8::is_ascii_hexdigit) {
        return None;
    }
    Some((u64::from_str_radix(&rest[..16], 16).ok()?, &rest[17..]))
}

/// Decode one wire line.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_records_round_trip_bitwise_including_nan() {
        let records = [
            EvalRecord { index: 7, speedup: 104.53125, cores: 64.0, area: 4.0 },
            EvalRecord { index: 8, speedup: f64::NAN, cores: 0.5, area: 300.0 },
            EvalRecord { index: 9, speedup: 0.1 + 0.2, cores: 1.0 / 3.0, area: 1e-300 },
        ];
        for record in records {
            let line = encode_line(&WireRecord(record));
            let back: WireRecord = decode_line(&line).unwrap();
            assert_eq!(back.0.index, record.index);
            assert_eq!(back.0.speedup.to_bits(), record.speedup.to_bits());
            assert_eq!(back.0.cores.to_bits(), record.cores.to_bits());
            assert_eq!(back.0.area.to_bits(), record.area.to_bits());
        }
    }

    #[test]
    fn request_envelopes_round_trip() {
        let space = ScenarioSpace::new();
        let requests = vec![
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Catalogue,
            Request::Shutdown,
            Request::Sweep {
                space: SpaceSpec::Explicit(space.clone()),
                start: 0,
                end: space.len(),
                chunk: 0,
            },
            Request::TopK { space: SpaceSpec::Explicit(space.clone()), k: 5 },
            Request::Pareto { space: SpaceSpec::Explicit(space.clone()), cost: CostAxis::Area },
            Request::Curve { figure: Figure::Fig4 },
            Request::Sweep {
                space: SpaceSpec::Catalogue { ids: vec!["0011223344556677".into()], space },
                start: 0,
                end: 1,
                chunk: 16,
            },
        ];
        for (id, request) in requests.into_iter().enumerate() {
            let envelope = RequestEnvelope { id: id as u64, request };
            let line = encode_line(&envelope);
            let back: RequestEnvelope = decode_line(&line).unwrap();
            assert_eq!(back.id, envelope.id);
            assert_eq!(encode_line(&back), line, "re-encoding must be stable");
        }
    }

    #[test]
    fn responses_round_trip_and_mark_terminality() {
        let chunk = Response::SweepChunk {
            start: 0,
            records: vec![WireRecord(EvalRecord {
                index: 0,
                speedup: 2.0,
                cores: 4.0,
                area: 64.0,
            })],
        };
        assert!(!chunk.is_terminal());
        let done = Response::SweepDone {
            stats: SweepStats {
                scenarios: 1,
                valid: 1,
                cache_hits: 0,
                cache_misses: 1,
                warm_entries: 0,
                threads: 1,
                coalesced: false,
                elapsed_seconds: 0.25,
            },
        };
        assert!(done.is_terminal());
        for (id, response) in
            [chunk, done, Response::Error { message: "nope".into() }].into_iter().enumerate()
        {
            let envelope = ResponseEnvelope { id: id as u64, response };
            let line = encode_line(&envelope);
            let back: ResponseEnvelope = decode_line(&line).unwrap();
            assert_eq!(encode_line(&back), line);
        }
    }

    #[test]
    fn metrics_responses_are_terminal_and_round_trip() {
        let metrics = Response::Metrics {
            json: "{\"counters\":{\"requests_total_ping\":1},\"gauges\":{},\"histograms\":{}}"
                .into(),
            prometheus: "# TYPE requests_total_ping counter\nrequests_total_ping 1\n".into(),
        };
        assert!(metrics.is_terminal());
        let line = encode_line(&ResponseEnvelope { id: 4, response: metrics });
        let back: ResponseEnvelope = decode_line(&line).unwrap();
        assert_eq!(encode_line(&back), line);
        let Response::Metrics { json, prometheus } = back.response else {
            panic!("metrics response must survive the round trip");
        };
        assert!(json.contains("requests_total_ping"));
        assert!(prometheus.contains("# TYPE"));
    }

    #[test]
    fn busy_responses_are_terminal_and_round_trip() {
        let busy = Response::Busy { message: "shard queue full".into(), estimated_cost_ms: 12.5 };
        assert!(busy.is_terminal());
        let line = encode_line(&ResponseEnvelope { id: 9, response: busy });
        let back: ResponseEnvelope = decode_line(&line).unwrap();
        assert_eq!(encode_line(&back), line);
        let Response::Busy { estimated_cost_ms, .. } = back.response else {
            panic!("busy response must survive the round trip");
        };
        assert_eq!(estimated_cost_ms, 12.5);
    }

    #[test]
    fn line_decoder_reassembles_split_lines_and_survives_oversize() {
        let mut decoder = LineDecoder::new(32);
        decoder.push(b"{\"id\":1}\n  \n{\"id");
        assert_eq!(decoder.next_line().unwrap().unwrap(), "{\"id\":1}");
        assert!(decoder.next_line().is_none(), "partial line waits for more bytes");
        decoder.push(b"\":2}\n");
        assert_eq!(decoder.next_line().unwrap().unwrap(), "{\"id\":2}");
        assert!(decoder.next_line().is_none());

        // An oversized line errors once, then the stream resyncs.
        decoder.push(&[b'x'; 40]);
        let err = decoder.next_line().unwrap().unwrap_err();
        assert!(err.contains("32-byte"), "{err}");
        decoder.push(b"tail\n{\"id\":3}\n");
        assert_eq!(decoder.next_line().unwrap().unwrap(), "{\"id\":3}");
        assert!(decoder.buffered() < 16, "consumed bytes are reclaimed");

        // Invalid UTF-8 poisons only its own line.
        decoder.push(&[0xff, 0xfe, b'\n']);
        decoder.push(b"{\"id\":4}\n");
        assert!(decoder.next_line().unwrap().is_err());
        assert_eq!(decoder.next_line().unwrap().unwrap(), "{\"id\":4}");
    }

    #[test]
    fn oversized_lines_are_rejected_regardless_of_read_segmentation() {
        // The whole over-limit line, newline included, in a single push:
        // the cap must hold exactly as it does when the line dribbles in.
        let mut one_shot = LineDecoder::new(32);
        let mut wire = vec![b'a'; 40];
        wire.push(b'\n');
        wire.extend_from_slice(b"{\"id\":1}\n");
        one_shot.push(&wire);
        let rejected = one_shot.next_line().unwrap().unwrap_err();
        assert!(rejected.contains("32-byte"), "{rejected}");
        assert_eq!(one_shot.next_line().unwrap().unwrap(), "{\"id\":1}");

        // A line of exactly the cap still passes.
        let mut at_cap = LineDecoder::new(32);
        at_cap.push(&[b'b'; 32]);
        at_cap.push(b"\n");
        assert_eq!(at_cap.next_line().unwrap().unwrap(), "b".repeat(32));
    }

    #[test]
    fn skipped_oversized_lines_discard_their_continuation_incrementally() {
        // One error for the oversized line, then a newline-free torrent:
        // the buffer must stay bounded the whole way, not wait for the
        // newline to reclaim.
        let mut decoder = LineDecoder::new(64);
        decoder.push(&[b'x'; 100]);
        assert!(decoder.next_line().unwrap().is_err());
        for _ in 0..1000 {
            decoder.push(&[b'y'; 1024]);
            assert!(decoder.next_line().is_none());
            assert!(
                decoder.buffered() <= 2048,
                "skipping mode must not retain bytes: {}",
                decoder.buffered()
            );
        }
        // The eventual newline ends the skip and decoding resumes cleanly.
        decoder.push(b"tail\n{\"id\":5}\n");
        assert_eq!(decoder.next_line().unwrap().unwrap(), "{\"id\":5}");
    }

    #[test]
    fn fast_chunk_codec_is_byte_identical_to_the_generic_path() {
        let records = vec![
            EvalRecord { index: 0, speedup: 104.53125, cores: 64.0, area: 4.0 },
            EvalRecord { index: 1, speedup: f64::NAN, cores: -0.0, area: 1e-300 },
            EvalRecord { index: 2, speedup: 0.1 + 0.2, cores: 1.0 / 3.0, area: f64::INFINITY },
        ];
        for (id, start) in [(1u64, 0usize), (9999, 123_456), (1 << 40, (1 << 40) + 7)] {
            let fast = encode_chunk_line(id, start, &records);
            let generic = encode_line(&ResponseEnvelope {
                id,
                response: Response::SweepChunk { start, records: to_wire(&records) },
            });
            assert_eq!(fast, generic, "fast encoder must match the generic printer");
            // Both decoders agree on both encodings.
            let via_fast = decode_chunk_line(&fast).expect("fast decode accepts its own output");
            assert_eq!(via_fast.id, id);
            let Response::SweepChunk { start: got_start, records: got } = via_fast.response else {
                panic!("fast decode must yield a chunk");
            };
            assert_eq!(got_start, start);
            for (a, b) in from_wire(&got).iter().zip(&records) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "NaN-safe compare");
                assert_eq!(a.cores.to_bits(), b.cores.to_bits());
                assert_eq!(a.area.to_bits(), b.area.to_bits());
            }
            let via_generic: ResponseEnvelope = decode_line(&fast).unwrap();
            assert_eq!(encode_line(&via_generic), fast);
        }
        // Empty chunks (never sent, but the shape must still agree).
        let empty_fast = encode_chunk_line(3, 5, &[]);
        let empty_generic = encode_line(&ResponseEnvelope {
            id: 3,
            response: Response::SweepChunk { start: 5, records: Vec::new() },
        });
        assert_eq!(empty_fast, empty_generic);
        assert!(decode_chunk_line(&empty_fast).is_some());
    }

    #[test]
    fn fast_chunk_decoder_declines_everything_else() {
        for line in [
            "",
            "not json",
            "{\"id\":1,\"response\":{\"Pong\":{\"version\":\"x\"}}}",
            "{\"id\":1,\"response\":{\"SweepChunk\":{\"start\":0,\"records\":[[1,\"00\",\"00\",\"00\"]]}}}",
            "{\"id\":1,\"response\":{\"SweepChunk\":{\"start\":0,\"records\":[]}}} trailing",
            "{\"id\":18446744073709551615,\"response\":{\"SweepChunk\":{\"start\":0,\"records\":[]}}}",
        ] {
            assert!(decode_chunk_line(line).is_none(), "must decline: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode_line::<RequestEnvelope>("not json").is_err());
        assert!(decode_line::<RequestEnvelope>("{\"id\":1}").is_err());
        assert!(decode_line::<WireRecord>("[1,\"zz\",\"00\",\"00\"]").is_err());
    }
}
