//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every message is one JSON object on one line. Clients send
//! [`RequestEnvelope`]s (`{"id":N,"request":{...}}`) and receive one or more
//! [`ResponseEnvelope`]s tagged with the same id; every request is answered
//! by exactly one **terminal** response, optionally preceded by streamed
//! [`Response::SweepChunk`] lines: a sweep's records arrive in index-ordered
//! chunks, each encoded, written and flushed before the next is built, so a
//! large answer is never buffered as one whole-result line (at most one
//! chunk's wire copy is alive at a time on the server). Correlation ids are
//! client-chosen but must be **≥ 1**: id `0` is reserved for
//! server-generated [`Response::Error`]s about lines that could not be
//! parsed into a request at all.
//!
//! ## Bit-exactness
//!
//! Sweep records travel as [`WireRecord`]s: the three `f64` fields are
//! encoded as 16-digit hex bit patterns, never as JSON numbers. JSON cannot
//! represent `NaN` (the engine's marker for designs that do not fit their
//! budget) and a decimal round-trip of a computed `NaN` would not be
//! bit-stable, so the hex encoding is what lets the differential tests assert
//! that service answers are *bit-identical* to a direct [`Engine::sweep`].
//! Figure curves ([`Response::Curves`]) contain only finite values and use
//! plain numbers, which the workspace's JSON printer round-trips exactly.
//!
//! [`Engine::sweep`]: mp_dse::engine::Engine::sweep

use serde::{Deserialize, Serialize};

use mp_dse::analysis::CostAxis;
use mp_dse::cache::CacheStats;
use mp_dse::curves::Figure;
use mp_dse::engine::{EvalRecord, SweepStats};
use mp_dse::scenario::ScenarioSpace;
use mp_model::explore::Curve;

/// Protocol identity reported by `ping`; bump on incompatible changes.
pub const PROTOCOL_VERSION: &str = "mp-serve/1";

/// Default scenario count per streamed sweep chunk.
pub const DEFAULT_CHUNK: usize = 8192;

/// One client request, tagged with a client-chosen correlation id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Correlation id echoed on every response to this request. Must be
    /// ≥ 1 — id `0` is reserved for server errors about unparseable lines.
    pub id: u64,
    /// The request itself.
    pub request: Request,
}

/// The scenario space a query runs over: sent explicitly, or assembled from
/// the service's calibration catalogue so clients can address calibrated
/// applications by id instead of shipping parameter sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SpaceSpec {
    /// A fully explicit space.
    Explicit(ScenarioSpace),
    /// `space` with its application axis replaced by the catalogue entries
    /// named by `ids` (16-hex-digit fingerprints from [`Response::Catalogue`]),
    /// in the given order.
    Catalogue {
        /// Catalogue ids supplying the application axis.
        ids: Vec<String>,
        /// The remaining axes (its own application axis is ignored).
        space: ScenarioSpace,
    },
}

/// A query or control message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Service, shard and cache statistics.
    Stats,
    /// List the service's calibration catalogue.
    Catalogue,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// Evaluate `[start, end)` of the space (the full space when
    /// `start == 0 && end == space.len()`); records stream back in
    /// index-ordered chunks of `chunk` scenarios (`0` = server default).
    Sweep {
        /// The space to sweep.
        space: SpaceSpec,
        /// First flat scenario index (inclusive).
        start: usize,
        /// Last flat scenario index (exclusive).
        end: usize,
        /// Records per streamed chunk (`0` = [`DEFAULT_CHUNK`]).
        chunk: usize,
    },
    /// The `k` highest-speedup records of a full sweep.
    TopK {
        /// The space to sweep.
        space: SpaceSpec,
        /// Number of records to return.
        k: usize,
    },
    /// The Pareto frontier (speedup vs `cost`) of a full sweep.
    Pareto {
        /// The space to sweep.
        space: SpaceSpec,
        /// The cost axis to minimise.
        cost: CostAxis,
    },
    /// The engine-reproduced curve family of one paper figure.
    Curve {
        /// Which figure.
        figure: Figure,
    },
}

/// One service response, tagged with the originating request's id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Correlation id of the request being answered.
    pub id: u64,
    /// The response payload.
    pub response: Response,
}

/// A response payload. [`Response::SweepChunk`] is the only non-terminal
/// variant; everything else completes its request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: String,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServiceStats),
    /// Answer to [`Request::Catalogue`].
    Catalogue {
        /// Every registered calibration.
        entries: Vec<CatalogueEntry>,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// One index-ordered slice of an in-flight sweep (non-terminal).
    SweepChunk {
        /// Flat scenario index of the first record in the chunk.
        start: usize,
        /// The records, consecutive from `start`.
        records: Vec<WireRecord>,
    },
    /// Terminal line of a sweep: the merged statistics.
    SweepDone {
        /// Merged sweep statistics across the participating shards.
        stats: SweepStats,
    },
    /// Answer to [`Request::TopK`] / [`Request::Pareto`].
    Records {
        /// The selected records, in result order.
        records: Vec<WireRecord>,
    },
    /// Answer to [`Request::Curve`].
    Curves {
        /// The figure's curve family.
        curves: Vec<Curve>,
    },
    /// The request failed; no further responses follow.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Whether this response completes its request.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::SweepChunk { .. })
    }
}

/// Aggregate service statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// The backend the service evaluates with.
    pub backend: String,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardStats>,
    /// Queries answered since the service started.
    pub queries: u64,
    /// Prepared sweep snapshots ([`SpaceTables`]) resident in the handle
    /// cache.
    ///
    /// [`SpaceTables`]: mp_dse::tables::SpaceTables
    pub prepared_spaces: usize,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
}

impl ServiceStats {
    /// Cache totals summed over every shard.
    pub fn cache_totals(&self) -> CacheStats {
        let mut totals = CacheStats { entries: 0, capacity: 0, hits: 0, misses: 0 };
        for shard in &self.shards {
            totals.entries += shard.cache.entries;
            totals.capacity += shard.cache.capacity;
            totals.hits += shard.cache.hits;
            totals.misses += shard.cache.misses;
        }
        totals
    }
}

/// One shard's state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Worker threads inside the shard's engine.
    pub threads: usize,
    /// The shard engine's memoisation-cache snapshot.
    pub cache: CacheStats,
}

/// One calibration catalogue listing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogueEntry {
    /// Fingerprint id (16 hex digits) — what [`SpaceSpec::Catalogue`] takes.
    pub id: String,
    /// Application name.
    pub name: String,
    /// Fitted growth-function label.
    pub growth: String,
    /// Parallel fraction of the calibration.
    pub f: f64,
    /// Root-mean-square residual of the growth fit.
    pub fit_rmse: f64,
}

/// An [`EvalRecord`] in wire form: `[index, speedup, cores, area]` with the
/// floats as 16-digit hex bit patterns (see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRecord(pub EvalRecord);

impl From<EvalRecord> for WireRecord {
    fn from(record: EvalRecord) -> Self {
        WireRecord(record)
    }
}

impl From<WireRecord> for EvalRecord {
    fn from(wire: WireRecord) -> Self {
        wire.0
    }
}

/// Convert records to wire form.
pub fn to_wire(records: &[EvalRecord]) -> Vec<WireRecord> {
    records.iter().copied().map(WireRecord).collect()
}

/// Convert wire records back to engine records.
pub fn from_wire(records: &[WireRecord]) -> Vec<EvalRecord> {
    records.iter().map(|w| w.0).collect()
}

impl Serialize for WireRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Arr(vec![
            serde::Value::Num(self.0.index as f64),
            serde::Value::Str(format!("{:016x}", self.0.speedup.to_bits())),
            serde::Value::Str(format!("{:016x}", self.0.cores.to_bits())),
            serde::Value::Str(format!("{:016x}", self.0.area.to_bits())),
        ])
    }
}

impl Deserialize for WireRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let arr = v.as_arr().ok_or_else(|| serde::Error::new("expected wire-record array"))?;
        if arr.len() != 4 {
            return Err(serde::Error::new("wire record must have 4 elements"));
        }
        let index = arr[0]
            .as_f64()
            .ok_or_else(|| serde::Error::new("wire record index must be a number"))?
            as usize;
        let mut bits = [0u64; 3];
        for (slot, value) in bits.iter_mut().zip(&arr[1..]) {
            let hex =
                value.as_str().ok_or_else(|| serde::Error::new("expected hex-bits string"))?;
            *slot = u64::from_str_radix(hex, 16)
                .map_err(|_| serde::Error::new("malformed hex-bits string"))?;
        }
        Ok(WireRecord(EvalRecord {
            index,
            speedup: f64::from_bits(bits[0]),
            cores: f64::from_bits(bits[1]),
            area: f64::from_bits(bits[2]),
        }))
    }
}

/// Encode one protocol message as its wire line (no trailing newline).
pub fn encode_line<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("protocol messages always serialise")
}

/// Decode one wire line.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_records_round_trip_bitwise_including_nan() {
        let records = [
            EvalRecord { index: 7, speedup: 104.53125, cores: 64.0, area: 4.0 },
            EvalRecord { index: 8, speedup: f64::NAN, cores: 0.5, area: 300.0 },
            EvalRecord { index: 9, speedup: 0.1 + 0.2, cores: 1.0 / 3.0, area: 1e-300 },
        ];
        for record in records {
            let line = encode_line(&WireRecord(record));
            let back: WireRecord = decode_line(&line).unwrap();
            assert_eq!(back.0.index, record.index);
            assert_eq!(back.0.speedup.to_bits(), record.speedup.to_bits());
            assert_eq!(back.0.cores.to_bits(), record.cores.to_bits());
            assert_eq!(back.0.area.to_bits(), record.area.to_bits());
        }
    }

    #[test]
    fn request_envelopes_round_trip() {
        let space = ScenarioSpace::new();
        let requests = vec![
            Request::Ping,
            Request::Stats,
            Request::Catalogue,
            Request::Shutdown,
            Request::Sweep {
                space: SpaceSpec::Explicit(space.clone()),
                start: 0,
                end: space.len(),
                chunk: 0,
            },
            Request::TopK { space: SpaceSpec::Explicit(space.clone()), k: 5 },
            Request::Pareto { space: SpaceSpec::Explicit(space.clone()), cost: CostAxis::Area },
            Request::Curve { figure: Figure::Fig4 },
            Request::Sweep {
                space: SpaceSpec::Catalogue { ids: vec!["0011223344556677".into()], space },
                start: 0,
                end: 1,
                chunk: 16,
            },
        ];
        for (id, request) in requests.into_iter().enumerate() {
            let envelope = RequestEnvelope { id: id as u64, request };
            let line = encode_line(&envelope);
            let back: RequestEnvelope = decode_line(&line).unwrap();
            assert_eq!(back.id, envelope.id);
            assert_eq!(encode_line(&back), line, "re-encoding must be stable");
        }
    }

    #[test]
    fn responses_round_trip_and_mark_terminality() {
        let chunk = Response::SweepChunk {
            start: 0,
            records: vec![WireRecord(EvalRecord {
                index: 0,
                speedup: 2.0,
                cores: 4.0,
                area: 64.0,
            })],
        };
        assert!(!chunk.is_terminal());
        let done = Response::SweepDone {
            stats: SweepStats {
                scenarios: 1,
                valid: 1,
                cache_hits: 0,
                cache_misses: 1,
                warm_entries: 0,
                threads: 1,
                elapsed_seconds: 0.25,
            },
        };
        assert!(done.is_terminal());
        for (id, response) in
            [chunk, done, Response::Error { message: "nope".into() }].into_iter().enumerate()
        {
            let envelope = ResponseEnvelope { id: id as u64, response };
            let line = encode_line(&envelope);
            let back: ResponseEnvelope = decode_line(&line).unwrap();
            assert_eq!(encode_line(&back), line);
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode_line::<RequestEnvelope>("not json").is_err());
        assert!(decode_line::<RequestEnvelope>("{\"id\":1}").is_err());
        assert!(decode_line::<WireRecord>("[1,\"zz\",\"00\",\"00\"]").is_err());
    }
}
