//! # mp-serve — a resident, sharded sweep service
//!
//! The `mp-dse` engine answers one sweep per call; this crate turns it into
//! a **system**: a long-lived service that keeps engines, memoisation caches
//! and prepared sweep snapshots resident between queries and answers them
//! over a line-delimited JSON socket protocol.
//!
//! * [`service`] — [`SweepService`]: `N` shards, each a long-lived
//!   [`Engine`](mp_dse::engine::Engine) + lock-free `EvalCache` behind its
//!   own admission queue. Queries are split along the space's flat index
//!   order into static per-shard bands and merged back in order, so a
//!   sharded answer is **bit-identical** to a direct `Engine::sweep` and
//!   repeated queries hit the same shard's warm cache. Prepared
//!   [`SweepHandle`](mp_dse::engine::SweepHandle)s (space + columnar tables)
//!   are cached by content fingerprint and shared across requests.
//! * [`protocol`] — the wire types: `sweep` (streamed, chunked, resumable via
//!   index sub-ranges), `top_k`, `pareto`, `curve(figure)`, `stats`,
//!   `catalogue` (fingerprint-keyed calibration addressing), `ping`,
//!   `shutdown`. Records travel as hex bit patterns, so responses are
//!   bit-exact down to the engine's `NaN` markers.
//! * [`server`] — TCP / Unix-domain listeners, one handler thread per
//!   connection, per-line flushing so large sweeps stream.
//! * [`client`] — a small blocking client (what `repro load` and the
//!   differential tests drive).
//!
//! ## Quick example (in-process)
//!
//! ```
//! use std::sync::Arc;
//! use mp_serve::prelude::*;
//! use mp_dse::prelude::*;
//!
//! let service = SweepService::new(
//!     Arc::new(AnalyticBackend),
//!     &ServiceConfig { shards: 2, ..ServiceConfig::default() },
//! );
//! let space = ScenarioSpace::new()
//!     .clear_designs()
//!     .add_symmetric_grid((0..64).map(|i| 1.0 + i as f64));
//! let cold = service.sweep(&space, None).unwrap();
//! let warm = service.sweep(&space, None).unwrap();
//! assert_eq!(warm.stats.cache_hits as usize, space.len());
//! assert_eq!(cold.records, warm.records);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

/// Commonly used items.
pub mod prelude {
    pub use crate::client::{Client, ClientError};
    pub use crate::protocol::{
        decode_line, encode_line, from_wire, to_wire, CatalogueEntry, Request, RequestEnvelope,
        Response, ResponseEnvelope, ServiceStats, ShardStats, SpaceSpec, WireRecord, DEFAULT_CHUNK,
        PROTOCOL_VERSION,
    };
    pub use crate::server::{Endpoint, Server, Stream};
    pub use crate::service::{ServeError, ServiceConfig, SweepService};
}

pub use prelude::*;
