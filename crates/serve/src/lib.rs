//! # mp-serve — a resident, sharded sweep service
//!
//! The `mp-dse` engine answers one sweep per call; this crate turns it into
//! a **system**: a long-lived service that keeps engines, memoisation caches
//! and prepared sweep snapshots resident between queries and answers them
//! over a line-delimited JSON socket protocol.
//!
//! * [`service`] — [`SweepService`]: `N` shards, each a long-lived
//!   [`Engine`](mp_dse::engine::Engine) + lock-free `EvalCache` behind its
//!   own admission queue. Queries are split along the space's flat index
//!   order into static per-shard bands and merged back in order, so a
//!   sharded answer is **bit-identical** to a direct `Engine::sweep` and
//!   repeated queries hit the same shard's warm cache. Prepared
//!   [`SweepHandle`](mp_dse::engine::SweepHandle)s (space + columnar tables)
//!   are cached by content fingerprint and shared across requests.
//! * [`protocol`] — the wire types: `sweep` (streamed, chunked, resumable via
//!   index sub-ranges), `top_k`, `pareto`, `curve(figure)`, `stats`,
//!   `catalogue` (fingerprint-keyed calibration addressing), `ping`,
//!   `shutdown`. Records travel as hex bit patterns, so responses are
//!   bit-exact down to the engine's `NaN` markers.
//! * [`server`] — an **event-driven reactor** (serve v2): a small pool of
//!   epoll event loops owns every accepted socket (edge-triggered,
//!   non-blocking, raw `epoll`/`eventfd` via [`reactor`]), parses requests
//!   incrementally, **pipelines** (many in-flight requests per connection,
//!   responses strictly in request order) and applies **backpressure**
//!   (bounded per-shard admission queues answering `busy`, plus write-side
//!   watermarks that park a streaming sweep's [`RangeCursor`] until
//!   `EPOLLOUT` drains the outbox — a slow client costs a parked cursor,
//!   not a pinned thread or an unbounded buffer).
//! * [`client`] — a blocking client with an incremental (short-read-proof)
//!   decode path, [`Client::call_pipelined`], and prepared-space queries
//!   (`prepare` once, then address the space by 16-hex id — the protocol's
//!   prepared-statement analogue).
//!
//! [`RangeCursor`]: mp_dse::engine::RangeCursor
//! [`Client::call_pipelined`]: client::Client::call_pipelined
//!
//! ## Quick example (in-process)
//!
//! ```
//! use std::sync::Arc;
//! use mp_serve::prelude::*;
//! use mp_dse::prelude::*;
//!
//! let service = SweepService::new(
//!     Arc::new(AnalyticBackend),
//!     &ServiceConfig { shards: 2, ..ServiceConfig::default() },
//! );
//! let space = ScenarioSpace::new()
//!     .clear_designs()
//!     .add_symmetric_grid((0..64).map(|i| 1.0 + i as f64));
//! let cold = service.sweep(&space, None).unwrap();
//! let warm = service.sweep(&space, None).unwrap();
//! assert_eq!(warm.stats.cache_hits as usize, space.len());
//! assert_eq!(cold.records, warm.records);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
mod conn;
pub mod jobs;
pub mod planner;
pub mod protocol;
pub mod reactor;
mod sched;
pub mod server;
pub mod service;

/// Commonly used items.
pub mod prelude {
    pub use crate::client::{assemble_sweep, Client, ClientError, RetryOutcome, RetryPolicy};
    pub use crate::jobs::{atomic_write, JobConfig, JobManager, Manifest, MANIFEST_VERSION};
    pub use crate::protocol::{
        decode_chunk_line, decode_line, encode_chunk_line, encode_line, from_wire, to_wire,
        CatalogueEntry, JobSnapshot, LineDecoder, Request, RequestEnvelope, Response,
        ResponseEnvelope, ServiceStats, ShardStats, SpaceSpec, WireRecord, DEFAULT_CHUNK,
        MAX_REQUEST_LINE, PROTOCOL_VERSION,
    };
    pub use crate::server::{Endpoint, Server, ServerConfig, Stream};
    pub use crate::service::{
        ServeError, ServeErrorKind, ServiceConfig, SweepService, SweepTicket,
    };
}

pub use prelude::*;
