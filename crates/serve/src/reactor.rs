//! Thin, dependency-free wrappers over the kernel's readiness machinery:
//! [`Poller`] (epoll) and [`Waker`] (eventfd).
//!
//! The build environment is fully offline, so instead of a `libc`/`mio`
//! dependency the three epoll syscalls and `eventfd` are declared directly
//! as `extern "C"` imports — they are part of the kernel ABI this workspace
//! already targets (Linux is the only platform the serve reactor supports;
//! the rest of the workspace remains portable). File descriptors are held as
//! [`OwnedFd`]s, so the usual RAII close semantics apply and nothing here
//! manages raw lifetimes by hand beyond the syscall boundary itself.

use std::fs::File;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readiness: there is data to read (or an accepted connection).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the socket's send buffer has room again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: one notification per readiness *transition*.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it to
/// 12 bytes (a 32-bit relic); elsewhere it has natural alignment — the same
/// dance `libc` does.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn check(ret: i32) -> std::io::Result<i32> {
    if ret < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification, decoded from the kernel event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration token (an event loop's connection id).
    pub token: u64,
    /// Reading will make progress.
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
    /// The peer closed or the socket errored; the connection is over.
    pub hangup: bool,
}

/// An epoll instance: register file descriptors with a token, then block on
/// [`Poller::wait`] for readiness events.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// A fresh epoll instance.
    pub fn new() -> std::io::Result<Poller> {
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: a successful epoll_create1 returns a fresh fd we own.
        Ok(Poller { epfd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// Register `fd` for `events` delivered with `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        let mut event = EpollEvent { events, data: token };
        check(unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut event) })?;
        Ok(())
    }

    /// Deregister `fd`. Best-effort: closing the fd drops the registration
    /// anyway, so failure here is not an error worth propagating.
    pub fn remove(&self, fd: RawFd) {
        let mut event = EpollEvent { events: 0, data: 0 };
        let _ = unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut event) };
    }

    /// Block until at least one registered fd is ready; decoded events are
    /// appended to `out` (which is cleared first). `EINTR` retries
    /// internally.
    pub fn wait(&self, out: &mut Vec<Event>) -> std::io::Result<()> {
        const CAPACITY: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        loop {
            let n =
                unsafe { epoll_wait(self.epfd.as_raw_fd(), raw.as_mut_ptr(), CAPACITY as i32, -1) };
            match check(n) {
                Ok(n) => {
                    out.clear();
                    for event in &raw[..n as usize] {
                        // By-value copies: the struct may be packed, so the
                        // fields must not be borrowed in place.
                        let EpollEvent { events, data } = *event;
                        out.push(Event {
                            token: data,
                            readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                            writable: events & EPOLLOUT != 0,
                            hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                        });
                    }
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A cross-thread wake-up line into an event loop: an `eventfd` registered
/// in the loop's [`Poller`]. Any thread may [`Waker::wake`]; the loop drains
/// pending wake-ups with [`Waker::drain`] when the poller reports the fd
/// readable.
pub struct Waker {
    file: File,
}

impl Waker {
    /// A fresh eventfd-backed waker.
    pub fn new() -> std::io::Result<Waker> {
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: a successful eventfd returns a fresh fd we own.
        Ok(Waker { file: File::from(unsafe { OwnedFd::from_raw_fd(fd) }) })
    }

    /// The fd to register with the loop's poller (level-triggered `EPOLLIN`).
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signal the loop. Never blocks: if the eventfd counter is saturated a
    /// wake-up is already pending, which is all this needs to guarantee.
    pub fn wake(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Consume pending wake-ups (called by the loop when the fd is ready).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        while matches!((&self.file).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_wakes_a_blocked_poller_across_threads() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.raw_fd(), 7, EPOLLIN).unwrap();
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            remote.wake();
            remote.wake(); // coalesces, must not block
        });
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        handle.join().unwrap();
    }

    #[test]
    fn poller_reports_socket_readability_edges() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut sender = std::net::TcpStream::connect(addr).unwrap();
        let (receiver, _) = listener.accept().unwrap();
        receiver.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(receiver.as_raw_fd(), 1, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET).unwrap();
        let mut events = Vec::new();
        // A fresh socket is writable.
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        sender.write_all(b"ping\n").unwrap();
        sender.flush().unwrap();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        poller.remove(receiver.as_raw_fd());
    }
}
