//! Socket front-end: an event-driven reactor serving line-delimited JSON
//! over TCP or Unix-domain sockets.
//!
//! ## Architecture (serve v2)
//!
//! The v1 server spent a thread per connection — fine for tens of clients,
//! a synchronisation-and-scheduling tax at thousands (exactly the serial
//! bottleneck the underlying paper is about). v2 is a reactor:
//!
//! * An **accept thread** (the caller of [`Server::run`]) hands accepted
//!   sockets round-robin to a small pool of **event-loop threads**.
//! * Each event loop owns its connections outright: an epoll instance
//!   ([`Poller`]) with every socket registered edge-triggered and
//!   non-blocking, a per-connection incremental line parser, a pipelined
//!   request queue, and an ordered write buffer with backpressure
//!   watermarks (see the crate-private `conn` module).
//! * Requests never execute on an event loop. The loop hands the head of a
//!   connection's pipeline to a pool of **executor threads** (which may
//!   block on the service's shard engines) and keeps polling; the
//!   completion comes back over a channel plus an eventfd [`Waker`].
//!   Responses are written strictly in request order per connection —
//!   that ordering is what makes pipelining safe for clients.
//! * Streaming sweeps are **pull-based**: an executor computes one window
//!   of the sweep at a time ([`SweepService::next_window`]); between
//!   windows the connection holds only a range cursor. If the client stops
//!   draining, the sweep parks at the outbox high watermark and `EPOLLOUT`
//!   re-arms it — a slow client costs a parked cursor, not a pinned thread
//!   or an unbounded buffer.
//!
//! A [`Request::Shutdown`] is acknowledged, the acknowledgement is flushed,
//! and then the whole reactor — accept loop, event loops, executors — winds
//! down; [`Server::run`] returns `Ok`.
//!
//! [`SweepService::next_window`]: crate::service::SweepService::next_window
//! [`Request::Shutdown`]: crate::protocol::Request::Shutdown

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};
use mp_obs::hist::Histogram;
use mp_obs::metrics::Counter;
use mp_obs::trace::{RequestTrace, Stage, TraceLog};

use crate::conn::{Conn, InFlight, HIGH_WATERMARK, LOW_WATERMARK};
use crate::protocol::{
    decode_line, encode_chunk_line, encode_line, Request, RequestEnvelope, Response,
    ResponseEnvelope,
};
use crate::reactor::{Poller, Waker, EPOLLET, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::service::{count_request, SweepService, SweepTicket};

/// Completed request traces retained per server (oldest evicted first).
pub const TRACE_LOG_CAPACITY: usize = 4096;

/// Bucket bounds for the pipeline-depth histogram: powers of two up to
/// [`MAX_PIPELINE`](crate::conn::MAX_PIPELINE).
static PIPELINE_DEPTH_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Returns from `epoll_wait` summed across every event-loop thread.
fn obs_epoll_wakeups() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("serve_epoll_wakeups"))
}

/// Pipelined depth (requests queued plus the one being dispatched) observed
/// at each dispatch.
fn obs_pipeline_depth() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| {
        mp_obs::registry().histogram("serve_pipeline_depth", &PIPELINE_DEPTH_BOUNDS)
    })
}

/// Where a server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7077` (port `0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A connected stream of either flavour.
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connect to `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        }
    }

    /// An independently-owned handle to the same connection (for split
    /// read/write halves).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(stream) => stream.try_clone().map(Stream::Tcp),
            Stream::Unix(stream) => stream.try_clone().map(Stream::Unix),
        }
    }

    /// Switch the socket between blocking and non-blocking mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(stream) => stream.set_nonblocking(nonblocking),
            Stream::Unix(stream) => stream.set_nonblocking(nonblocking),
        }
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(stream) => stream.as_raw_fd(),
            Stream::Unix(stream) => stream.as_raw_fd(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.read(buf),
            Stream::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.write(buf),
            Stream::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(stream) => stream.flush(),
            Stream::Unix(stream) => stream.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(listener) => listener.accept().map(|(stream, _)| Stream::Tcp(stream)),
            Listener::Unix(listener) => listener.accept().map(|(stream, _)| Stream::Unix(stream)),
        }
    }
}

/// Reactor sizing. `0` means *auto* for both knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Event-loop threads (socket I/O only, never blocking work).
    /// Auto: `min(4, available cores)`.
    pub event_loops: usize,
    /// Executor threads (request parsing/encoding and service calls; these
    /// block on the shard engines). Auto: `max(2, shards)`.
    pub executors: usize,
}

/// A listening server bound to an endpoint. [`Server::run`] consumes it and
/// blocks until a shutdown request arrives.
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    service: Arc<SweepService>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    /// Unix socket path to unlink when the server stops.
    cleanup: Option<PathBuf>,
    /// Completed request traces, newest [`TRACE_LOG_CAPACITY`] retained.
    trace_log: Arc<TraceLog>,
}

impl Server {
    /// Bind to `endpoint` with default reactor sizing. For TCP port `0` the
    /// resolved endpoint (with the kernel-assigned port) is what
    /// [`Server::endpoint`] reports. A pre-existing Unix socket file is an
    /// error — two servers must not race for one path; remove stale files
    /// explicitly.
    pub fn bind(endpoint: &Endpoint, service: Arc<SweepService>) -> std::io::Result<Server> {
        Server::bind_with(endpoint, service, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit reactor sizing.
    pub fn bind_with(
        endpoint: &Endpoint,
        service: Arc<SweepService>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let (listener, endpoint, cleanup) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let actual = Endpoint::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), actual, None)
            }
            Endpoint::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(listener) => listener,
                    Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                        // A crashed (SIGKILLed) server leaves its socket file
                        // behind. If nothing answers on it, the file is
                        // stale — reclaim the endpoint instead of forcing
                        // the operator to rm it before every restart.
                        if UnixStream::connect(path).is_ok() {
                            return Err(e);
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                (Listener::Unix(listener), Endpoint::Unix(path.clone()), Some(path.clone()))
            }
        };
        Ok(Server {
            listener,
            endpoint,
            service,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            cleanup,
            trace_log: Arc::new(TraceLog::new(TRACE_LOG_CAPACITY)),
        })
    }

    /// The bound endpoint (with the real port for TCP port-0 binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The server's request-trace log: every completed request's per-stage
    /// timestamps, newest [`TRACE_LOG_CAPACITY`] retained. Clone the handle
    /// before [`Server::run`] consumes the server to inspect traces while
    /// (or after) it serves.
    pub fn trace_log(&self) -> Arc<TraceLog> {
        Arc::clone(&self.trace_log)
    }

    /// The resolved reactor sizing (auto knobs filled in).
    fn sizing(&self) -> (usize, usize) {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let loops = match self.config.event_loops {
            0 => cores.min(4),
            n => n,
        };
        let executors = match self.config.executors {
            0 => self.service.shards().max(2),
            n => n,
        };
        (loops.max(1), executors.max(1))
    }

    /// Accept and serve connections until a shutdown request arrives: spawn
    /// the event loops and executors, then run the accept loop on the
    /// calling thread. Returns once the whole reactor has wound down. A Unix
    /// socket file is unlinked on exit — graceful or not — so a crashed
    /// accept loop never leaves the endpoint permanently unbindable.
    pub fn run(self) -> std::io::Result<()> {
        let result = self.serve();
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        result
    }

    fn serve(&self) -> std::io::Result<()> {
        let (loops, executors) = self.sizing();
        let (exec_tx, exec_rx) = unbounded::<ExecJob>();

        // Create every loop's mailbox + waker up front: any loop must be
        // able to wake every other on shutdown.
        let mut mailboxes = Vec::with_capacity(loops);
        let mut wakers = Vec::with_capacity(loops);
        for _ in 0..loops {
            let (tx, rx) = unbounded::<LoopMsg>();
            mailboxes.push((tx, Some(rx)));
            wakers.push(Arc::new(Waker::new()?));
        }
        let wakers: Vec<Arc<Waker>> = wakers;

        let mut loop_threads = Vec::with_capacity(loops);
        for (index, (tx, rx)) in mailboxes.iter_mut().enumerate() {
            let event_loop = EventLoop {
                poller: Poller::new()?,
                waker: Arc::clone(&wakers[index]),
                inbox: rx.take().expect("receiver taken once"),
                tx: tx.clone(),
                exec: exec_tx.clone(),
                stop: Arc::clone(&self.shutdown),
                all_wakers: wakers.clone(),
                endpoint: self.endpoint.clone(),
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                trace_log: Arc::clone(&self.trace_log),
                verb_hists: HashMap::new(),
            };
            loop_threads.push(
                std::thread::Builder::new()
                    .name(format!("mp-serve-loop-{index}"))
                    .spawn(move || event_loop.run())
                    .expect("failed to spawn event loop"),
            );
        }

        let mut exec_threads = Vec::with_capacity(executors);
        for index in 0..executors {
            let jobs = exec_rx.clone();
            let service = Arc::clone(&self.service);
            exec_threads.push(
                std::thread::Builder::new()
                    .name(format!("mp-serve-exec-{index}"))
                    .spawn(move || run_executor(&service, &jobs))
                    .expect("failed to spawn executor"),
            );
        }
        drop(exec_rx);

        let handles: Vec<(Sender<LoopMsg>, Arc<Waker>)> = mailboxes
            .iter()
            .zip(&wakers)
            .map(|((tx, _), waker)| (tx.clone(), Arc::clone(waker)))
            .collect();
        let result = self.accept_loop(&handles);

        // Wind down: stop flag, wake every loop, then let the executor
        // channel disconnect once the loops (and our own clone) have dropped
        // their senders.
        self.shutdown.store(true, Ordering::Release);
        for waker in &wakers {
            waker.wake();
        }
        drop(handles);
        drop(mailboxes);
        for thread in loop_threads {
            let _ = thread.join();
        }
        drop(exec_tx);
        for thread in exec_threads {
            let _ = thread.join();
        }
        result
    }

    fn accept_loop(&self, handles: &[(Sender<LoopMsg>, Arc<Waker>)]) -> std::io::Result<()> {
        // Transient accept errors (a client resetting a queued connection,
        // momentary fd exhaustion from many handlers) must not kill a
        // resident service with clients in flight; only a persistently
        // failing listener gives up. Success resets the budget.
        let mut consecutive_errors = 0usize;
        let mut next = 0usize;
        loop {
            let stream = match self.listener.accept() {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(e) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    consecutive_errors += 1;
                    if consecutive_errors >= 64 {
                        return Err(e);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            let (tx, waker) = &handles[next % handles.len()];
            next += 1;
            if tx.send(LoopMsg::Accept(stream)).is_ok() {
                waker.wake();
            }
        }
    }
}

/// Token reserved for the loop's waker eventfd.
const WAKER_TOKEN: u64 = 0;
/// First token handed to a connection.
const FIRST_CONN_TOKEN: u64 = 1;

/// Mail addressed to one event loop.
enum LoopMsg {
    /// A freshly accepted connection to adopt.
    Accept(Stream),
    /// An executor finished a job for one of this loop's connections.
    Done(JobDone),
}

/// One unit of work for the executor pool.
struct ExecJob {
    /// The origin loop's mailbox (completions go back where the conn lives).
    reply: Sender<LoopMsg>,
    /// The origin loop's waker.
    waker: Arc<Waker>,
    token: u64,
    seq: u64,
    kind: JobKind,
    /// The request's trace (minted at decode). `None` for the continuation
    /// jobs of a parked streaming sweep — the sweep's trace completed with
    /// its first window's flush.
    trace: Option<RequestTrace>,
}

enum JobKind {
    /// One received line: parse, execute, encode. `Err` carries a
    /// receive-side error (oversized / non-UTF-8 line) to report on id 0.
    Line(Result<String, String>),
    /// Pull the next window of a parked streaming sweep.
    Window {
        /// Correlation id of the sweep request.
        id: u64,
        /// The resumable sweep state.
        ticket: Box<SweepTicket>,
    },
}

/// An executor's completion: encoded response bytes plus what (if anything)
/// remains of the request.
struct JobDone {
    token: u64,
    seq: u64,
    /// Encoded response lines, ready for the outbox.
    bytes: Vec<u8>,
    /// A streaming sweep with windows still to pull (`None` = request
    /// complete).
    next: Option<(u64, Box<SweepTicket>)>,
    /// The request was a shutdown: flush, then stop the server.
    shutdown: bool,
    /// The request's trace, stamped through [`Stage::Encode`]; the event
    /// loop stamps [`Stage::Flush`] and commits it.
    trace: Option<RequestTrace>,
}

/// One event-loop thread: owns a poller, a waker, and a set of connections.
struct EventLoop {
    poller: Poller,
    waker: Arc<Waker>,
    inbox: Receiver<LoopMsg>,
    tx: Sender<LoopMsg>,
    exec: Sender<ExecJob>,
    stop: Arc<AtomicBool>,
    all_wakers: Vec<Arc<Waker>>,
    endpoint: Endpoint,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    trace_log: Arc<TraceLog>,
    /// Per-verb request-latency histograms (`serve_request_ms_<verb>`),
    /// cached so the flush path never takes the registry lock.
    verb_hists: HashMap<&'static str, Arc<Histogram>>,
}

impl EventLoop {
    fn run(mut self) {
        if self.poller.add(self.waker.raw_fd(), WAKER_TOKEN, EPOLLIN).is_err() {
            return;
        }
        let mut events = Vec::new();
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            if self.poller.wait(&mut events).is_err() {
                return;
            }
            obs_epoll_wakeups().inc();
            // Drain the batch by value: handlers mutate the connection map.
            for event in events.drain(..) {
                if event.token == WAKER_TOKEN {
                    self.waker.drain();
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    while let Ok(message) = self.inbox.try_recv() {
                        self.handle_message(message);
                    }
                } else {
                    self.handle_io(event);
                }
            }
        }
    }

    fn handle_message(&mut self, message: LoopMsg) {
        match message {
            LoopMsg::Accept(stream) => {
                if stream.set_nonblocking(true).is_err() {
                    return;
                }
                if let Stream::Tcp(tcp) = &stream {
                    // Responses are written in coalesced bursts; never trade
                    // latency for Nagle batching on top of that.
                    let _ = tcp.set_nodelay(true);
                }
                let token = self.next_token;
                self.next_token += 1;
                let interest = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
                if self.poller.add(stream.as_raw_fd(), token, interest).is_err() {
                    return;
                }
                let mut conn = Conn::new(stream);
                // Bytes may already be waiting (pipelined clients write
                // eagerly); the edge for them fired before registration.
                conn.fill();
                self.conns.insert(token, conn);
                self.pump(token);
            }
            LoopMsg::Done(done) => {
                let Some(conn) = self.conns.get_mut(&done.token) else {
                    // The connection died while the executor worked; the
                    // ticket (if any) is dropped with the completion.
                    return;
                };
                match conn.inflight {
                    InFlight::Dispatched { seq } if seq == done.seq => {}
                    // A completion that does not match the in-flight job
                    // (impossible by construction — one job per connection).
                    _ => return,
                }
                conn.enqueue(&done.bytes);
                if done.shutdown {
                    conn.close_after_flush = true;
                    conn.shutdown_origin = true;
                }
                conn.inflight = match done.next {
                    Some((id, ticket)) => InFlight::Parked { id, ticket },
                    None => InFlight::Idle,
                };
                conn.flush_out();
                if let Some(mut trace) = done.trace {
                    trace.stamp(Stage::Flush, mp_obs::monotonic_ns());
                    self.commit_trace(trace);
                }
                self.pump(done.token);
            }
        }
    }

    fn handle_io(&mut self, event: crate::reactor::Event) {
        let Some(conn) = self.conns.get_mut(&event.token) else {
            return;
        };
        if event.hangup {
            conn.dead = true;
        }
        if event.readable && !conn.read_paused {
            conn.fill();
        }
        if event.writable {
            conn.flush_out();
        }
        self.pump(event.token);
    }

    /// Drive one connection forward: re-arm parked sweeps, dispatch the next
    /// pipelined request, resume paused reads, and retire the connection
    /// when it is finished or dead.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };

        if !conn.dead {
            // Re-arm a parked streaming sweep once the outbox has drained —
            // this is the EPOLLOUT-driven pull that keeps slow readers from
            // buffering whole sweeps.
            if matches!(conn.inflight, InFlight::Parked { .. })
                && conn.pending_out() < LOW_WATERMARK
            {
                let InFlight::Parked { id, ticket } =
                    std::mem::replace(&mut conn.inflight, InFlight::Idle)
                else {
                    unreachable!("matched Parked above");
                };
                let seq = conn.take_seq();
                conn.inflight = InFlight::Dispatched { seq };
                let job = ExecJob {
                    reply: self.tx.clone(),
                    waker: Arc::clone(&self.waker),
                    token,
                    seq,
                    kind: JobKind::Window { id, ticket },
                    trace: None,
                };
                if self.exec.send(job).is_err() {
                    conn.dead = true;
                }
            }

            // Dispatch the head of the pipeline. Only ever one job in
            // flight per connection: that is what guarantees responses in
            // request order. Production is additionally gated on the outbox
            // watermark, so a non-draining client stops consuming executor
            // time entirely.
            if matches!(conn.inflight, InFlight::Idle) && conn.pending_out() < HIGH_WATERMARK {
                if let Some((line, trace)) = conn.pipeline.pop_front() {
                    obs_pipeline_depth().record((conn.pipeline.len() + 1) as f64);
                    let seq = conn.take_seq();
                    conn.inflight = InFlight::Dispatched { seq };
                    let job = ExecJob {
                        reply: self.tx.clone(),
                        waker: Arc::clone(&self.waker),
                        token,
                        seq,
                        kind: JobKind::Line(line),
                        trace: Some(trace),
                    };
                    if self.exec.send(job).is_err() {
                        conn.dead = true;
                    }
                }
            }

            // Resume reading once the pipeline has drained (and dispatch
            // again if that produced work for an idle connection).
            if conn.should_resume_read() {
                conn.read_paused = false;
                conn.fill();
                if matches!(conn.inflight, InFlight::Idle) && !conn.pipeline.is_empty() {
                    self.pump(token);
                    return;
                }
            }
        }

        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead {
            let shutdown_origin = conn.shutdown_origin;
            self.close(token);
            if shutdown_origin {
                self.trigger_shutdown();
            }
            return;
        }
        if conn.close_after_flush && conn.pending_out() == 0 {
            let shutdown_origin = conn.shutdown_origin;
            self.close(token);
            if shutdown_origin {
                self.trigger_shutdown();
            }
            return;
        }
        if conn.drained() {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.remove(conn.stream.as_raw_fd());
        }
    }

    /// Commit a flushed trace: record its decode-to-flush latency on the
    /// verb's histogram and push it into the server's trace log.
    fn commit_trace(&mut self, trace: RequestTrace) {
        if let Some(total_ms) = trace.total_ms() {
            let histogram = self.verb_hists.entry(trace.verb).or_insert_with(|| {
                mp_obs::registry().histogram_ms(&format!("serve_request_ms_{}", trace.verb))
            });
            histogram.record(total_ms);
        }
        self.trace_log.push(trace);
    }

    /// Stop the whole server: flag, wake every loop, and poke the listener
    /// so a blocked `accept` observes the flag.
    fn trigger_shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for waker in &self.all_wakers {
            waker.wake();
        }
        let _ = Stream::connect(&self.endpoint);
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        // Sockets close with their `Conn`s; nothing else to unwind.
        self.conns.clear();
    }
}

/// Executor thread body: pull jobs, run them against the service, post the
/// completion back to the origin loop.
fn run_executor(service: &SweepService, jobs: &Receiver<ExecJob>) {
    while let Ok(mut job) = jobs.recv() {
        if let Some(trace) = &mut job.trace {
            trace.stamp(Stage::Queue, mp_obs::monotonic_ns());
        }
        let done = execute(service, job.token, job.seq, job.kind, job.trace);
        // A dropped mailbox just means the loop (or whole server) wound
        // down while this job ran.
        if job.reply.send(LoopMsg::Done(done)).is_ok() {
            job.waker.wake();
        }
    }
}

/// Run one job to completion-or-parking, encoding every produced response.
/// The trace (if any) gets its verb and its [`Stage::Evaluate`] /
/// [`Stage::Encode`] stamps here and rides back on the completion.
fn execute(
    service: &SweepService,
    token: u64,
    seq: u64,
    kind: JobKind,
    mut trace: Option<RequestTrace>,
) -> JobDone {
    let mut done =
        JobDone { token, seq, bytes: Vec::new(), next: None, shutdown: false, trace: None };
    match kind {
        JobKind::Line(Err(message)) => {
            if let Some(t) = &mut trace {
                t.verb = "invalid";
            }
            push_line(&mut done.bytes, 0, Response::Error { message })
        }
        JobKind::Line(Ok(line)) => match decode_line::<RequestEnvelope>(&line) {
            Err(message) => {
                if let Some(t) = &mut trace {
                    t.verb = "invalid";
                }
                push_line(&mut done.bytes, 0, Response::Error { message })
            }
            // Enforce the protocol's id reservation: a request on id 0 would
            // be indistinguishable from server parse-error responses.
            Ok(envelope) if envelope.id == 0 => {
                if let Some(t) = &mut trace {
                    t.verb = "invalid";
                }
                push_line(
                    &mut done.bytes,
                    0,
                    Response::Error {
                        message: "request id 0 is reserved for server errors; use ids >= 1"
                            .to_string(),
                    },
                )
            }
            Ok(envelope) => {
                let id = envelope.id;
                if let Some(t) = &mut trace {
                    t.verb = envelope.request.verb();
                }
                // The sweep and shutdown arms answer without going through
                // `handle_streaming` (which counts every request it sees),
                // so their per-verb series are counted here.
                if matches!(envelope.request, Request::Sweep { .. } | Request::Shutdown) {
                    count_request(&envelope.request);
                }
                match envelope.request {
                    Request::Sweep { space, start, end, chunk } => {
                        let planned = service.resolve_handle(&space).and_then(|handle| {
                            service.begin_sweep_handle(handle, start..end, chunk)
                        });
                        // The planner has now resolved the prepared space,
                        // costed the query and ruled on admission.
                        stamp_plan(trace.as_mut());
                        match planned {
                            Ok(ticket) => stream_window(
                                service,
                                id,
                                Box::new(ticket),
                                &mut done,
                                trace.as_mut(),
                            ),
                            Err(e) => {
                                stamp_evaluate(trace.as_mut());
                                push_line(&mut done.bytes, id, e.into_response())
                            }
                        }
                    }
                    Request::Shutdown => {
                        stamp_evaluate(trace.as_mut());
                        push_line(&mut done.bytes, id, Response::ShuttingDown);
                        done.shutdown = true;
                    }
                    request => {
                        let responses = service.handle(&request);
                        stamp_evaluate(trace.as_mut());
                        for response in responses {
                            push_line(&mut done.bytes, id, response);
                        }
                    }
                }
            }
        },
        JobKind::Window { id, ticket } => stream_window(service, id, ticket, &mut done, None),
    }
    if let Some(mut t) = trace {
        // Error paths above answer without a service call; give them an
        // evaluate stamp so completed traces are stage-monotonic throughout.
        if t.stage_ns[Stage::Evaluate.index()] == 0 {
            t.stamp(Stage::Evaluate, mp_obs::monotonic_ns());
        }
        t.stamp(Stage::Encode, mp_obs::monotonic_ns());
        done.trace = Some(t);
    }
    done
}

/// Stamp [`Stage::Evaluate`] on a trace (no-op for untraced jobs).
fn stamp_evaluate(trace: Option<&mut RequestTrace>) {
    if let Some(t) = trace {
        t.stamp(Stage::Evaluate, mp_obs::monotonic_ns());
    }
}

/// Stamp [`Stage::Plan`] on a trace (no-op for untraced jobs). Only the
/// planned verbs — sweeps — stamp this stage; everywhere else it stays `0`.
fn stamp_plan(trace: Option<&mut RequestTrace>) {
    if let Some(t) = trace {
        t.stamp(Stage::Plan, mp_obs::monotonic_ns());
    }
}

/// Pull one window of a streaming sweep: encode its chunks, then either
/// finish the request (`SweepDone`) or hand the ticket back for parking.
fn stream_window(
    service: &SweepService,
    id: u64,
    mut ticket: Box<SweepTicket>,
    done: &mut JobDone,
    trace: Option<&mut RequestTrace>,
) {
    let result = service.next_window(&mut ticket);
    stamp_evaluate(trace);
    match result {
        Ok(Some(records)) => {
            for slice in records.chunks(ticket.chunk()) {
                // The dominant line of the protocol: encoded by the direct
                // (value-tree-free) fast path, byte-identical to push_line.
                done.bytes
                    .extend_from_slice(encode_chunk_line(id, slice[0].index, slice).as_bytes());
                done.bytes.push(b'\n');
            }
            if ticket.is_done() {
                push_line(&mut done.bytes, id, Response::SweepDone { stats: ticket.stats() });
            } else {
                done.next = Some((id, ticket));
            }
        }
        Ok(None) => push_line(&mut done.bytes, id, Response::SweepDone { stats: ticket.stats() }),
        Err(e) => push_line(&mut done.bytes, id, e.into_response()),
    }
}

/// Append one encoded response line (with its newline) to an output buffer.
fn push_line(bytes: &mut Vec<u8>, id: u64, response: Response) {
    bytes.extend_from_slice(encode_line(&ResponseEnvelope { id, response }).as_bytes());
    bytes.push(b'\n');
}
