//! Socket front-end: line-delimited JSON over TCP or Unix-domain sockets.
//!
//! One accept loop, one handler thread per connection. Each request's
//! responses are written (and flushed) line by line as they are produced, so
//! a large sweep streams its chunks instead of buffering the whole answer.
//! A [`Request::Shutdown`] from any connection is acknowledged, then stops
//! the accept loop (the handler pokes the listener with a throwaway
//! connection so a blocked `accept` observes the flag).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::protocol::{
    decode_line, encode_line, Request, RequestEnvelope, Response, ResponseEnvelope,
};
use crate::service::SweepService;

/// Where a server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7077` (port `0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A connected stream of either flavour.
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connect to `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        }
    }

    /// An independently-owned handle to the same connection (for split
    /// read/write halves).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(stream) => stream.try_clone().map(Stream::Tcp),
            Stream::Unix(stream) => stream.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.read(buf),
            Stream::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.write(buf),
            Stream::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(stream) => stream.flush(),
            Stream::Unix(stream) => stream.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(listener) => listener.accept().map(|(stream, _)| Stream::Tcp(stream)),
            Listener::Unix(listener) => listener.accept().map(|(stream, _)| Stream::Unix(stream)),
        }
    }
}

/// A listening server bound to an endpoint. [`Server::run`] consumes it and
/// blocks until a shutdown request arrives.
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    service: Arc<SweepService>,
    shutdown: Arc<AtomicBool>,
    /// Unix socket path to unlink when the server stops.
    cleanup: Option<PathBuf>,
}

impl Server {
    /// Bind to `endpoint`. For TCP port `0` the resolved endpoint (with the
    /// kernel-assigned port) is what [`Server::endpoint`] reports. A
    /// pre-existing Unix socket file is an error — two servers must not race
    /// for one path; remove stale files explicitly.
    pub fn bind(endpoint: &Endpoint, service: Arc<SweepService>) -> std::io::Result<Server> {
        let (listener, endpoint, cleanup) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let actual = Endpoint::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), actual, None)
            }
            Endpoint::Unix(path) => {
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener), Endpoint::Unix(path.clone()), Some(path.clone()))
            }
        };
        Ok(Server {
            listener,
            endpoint,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            cleanup,
        })
    }

    /// The bound endpoint (with the real port for TCP port-0 binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Accept and serve connections until a shutdown request arrives.
    /// Connection handlers run on their own threads; `run` joins none of
    /// them on exit beyond the one that requested the shutdown, but every
    /// handler holds only `Arc`s, so late writers fail harmlessly. A Unix
    /// socket file is unlinked on exit — graceful or not — so a crashed
    /// accept loop never leaves the endpoint permanently unbindable.
    pub fn run(self) -> std::io::Result<()> {
        let result = self.accept_loop();
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        result
    }

    fn accept_loop(&self) -> std::io::Result<()> {
        // Transient accept errors (a client resetting a queued connection,
        // momentary fd exhaustion from many handlers) must not kill a
        // resident service with clients in flight; only a persistently
        // failing listener gives up. Success resets the budget.
        let mut consecutive_errors = 0usize;
        loop {
            let stream = match self.listener.accept() {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(e) => {
                    consecutive_errors += 1;
                    if consecutive_errors >= 64 {
                        return Err(e);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let endpoint = self.endpoint.clone();
            std::thread::Builder::new()
                .name("mp-serve-conn".to_string())
                .spawn(move || {
                    // A connection failing mid-stream only ends that client.
                    let _ = serve_connection(stream, &service, &shutdown, &endpoint);
                })
                .expect("failed to spawn connection handler");
        }
    }
}

/// Serve one connection: read request lines, stream response lines. Each
/// response line is written and flushed as the service produces it, so a
/// sweep's chunks reach the client one at a time instead of buffering the
/// whole answer.
fn serve_connection(
    stream: Stream,
    service: &SweepService,
    shutdown: &AtomicBool,
    endpoint: &Endpoint,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match decode_line::<RequestEnvelope>(&line) {
            // Enforce the protocol's id reservation: a request on id 0 would
            // be indistinguishable from server parse-error responses.
            Ok(envelope) if envelope.id == 0 => {
                write_response(
                    &mut writer,
                    0,
                    Response::Error {
                        message: "request id 0 is reserved for server errors; use ids >= 1"
                            .to_string(),
                    },
                )?;
            }
            Ok(envelope) => {
                let id = envelope.id;
                service.handle_streaming(&envelope.request, &mut |response| {
                    write_response(&mut writer, id, response)
                })?;
                if matches!(envelope.request, Request::Shutdown) {
                    shutdown.store(true, Ordering::Release);
                    // Unblock the accept loop so it can observe the flag.
                    let _ = Stream::connect(endpoint);
                    return Ok(());
                }
            }
            // Unparseable line: answer on id 0 — reserved for exactly this,
            // see the protocol module docs — and keep the connection going.
            Err(message) => {
                write_response(&mut writer, 0, Response::Error { message })?;
            }
        }
    }
    Ok(())
}

/// Write one response line and flush it, so chunked answers stream.
fn write_response(writer: &mut impl Write, id: u64, response: Response) -> std::io::Result<()> {
    let line = encode_line(&ResponseEnvelope { id, response });
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}
