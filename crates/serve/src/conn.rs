//! Per-connection state of the reactor server: the receive-side incremental
//! parser, the pipelined request queue, the ordered write buffer with its
//! backpressure watermarks, and the parked cursor of an in-flight streaming
//! sweep.
//!
//! One event-loop thread owns each [`Conn`] outright — no locks, no shared
//! mutation. The connection enforces three bounds, which together make its
//! memory footprint independent of how a client (mis)behaves:
//!
//! * **receive**: request lines longer than the protocol cap are rejected
//!   and discarded incrementally (see
//!   [`LineDecoder`](crate::protocol::LineDecoder));
//! * **pipeline**: at most [`MAX_PIPELINE`] parsed-but-unanswered requests
//!   are held; past that the loop simply stops reading the socket, letting
//!   TCP flow control push back on the client;
//! * **send**: response bytes are produced only while the outbox sits below
//!   [`HIGH_WATERMARK`]; a streaming sweep whose client stops draining is
//!   *parked* — its [`SweepTicket`] holds a range cursor, not records — and
//!   re-armed when `EPOLLOUT` drains the outbox below [`LOW_WATERMARK`].

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};

use mp_obs::metrics::Counter;
use mp_obs::trace::{mint_id, RequestTrace};

use crate::protocol::{LineDecoder, MAX_REQUEST_LINE};
use crate::server::Stream;
use crate::service::SweepTicket;

/// Times a connection's reads were paused because its pipeline hit
/// [`MAX_PIPELINE`] (TCP backpressure engaged).
fn obs_read_pauses() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("serve_read_pauses"))
}

/// Times a connection's outbox crossed [`HIGH_WATERMARK`] from below
/// (response production about to stop for that connection).
fn obs_outbox_high_water() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("serve_outbox_high_water"))
}

/// Stop producing response bytes for a connection whose outbox holds at
/// least this much; the overshoot above the watermark is bounded by one
/// sweep window's encoding.
pub(crate) const HIGH_WATERMARK: usize = 256 * 1024;

/// Resume a parked streaming sweep once the outbox drains below this.
pub(crate) const LOW_WATERMARK: usize = 64 * 1024;

/// Parsed requests a connection may have queued or in flight before the
/// loop stops reading its socket (TCP backpressure instead of memory).
pub(crate) const MAX_PIPELINE: usize = 128;

/// Resume reading once the pipeline has drained to this depth.
pub(crate) const RESUME_PIPELINE: usize = MAX_PIPELINE / 2;

/// What the head of a connection's pipeline is currently doing.
pub(crate) enum InFlight {
    /// Nothing dispatched; the next queued line may go to an executor.
    Idle,
    /// An executor owns the head request; `seq` matches its completion.
    Dispatched {
        /// Sequence number the executor's completion must echo.
        seq: u64,
    },
    /// A streaming sweep waiting for the outbox to drain below the low
    /// watermark before its next window is pulled.
    Parked {
        /// Correlation id of the sweep request.
        id: u64,
        /// The resumable sweep: prepared handle + range cursor + statistics.
        ticket: Box<SweepTicket>,
    },
}

/// One accepted connection, owned by one event-loop thread.
pub(crate) struct Conn {
    pub stream: Stream,
    decoder: LineDecoder,
    /// Encoded response bytes not yet accepted by the kernel.
    outbox: Vec<u8>,
    /// Prefix of `outbox` already written.
    written: usize,
    /// Parsed request lines (or receive-side errors to report) awaiting
    /// dispatch, oldest first, each paired with its request trace (id minted
    /// and [`Stage::Decode`] stamped when the line left the decoder).
    ///
    /// [`Stage::Decode`]: mp_obs::trace::Stage::Decode
    pub pipeline: VecDeque<(Result<String, String>, RequestTrace)>,
    pub inflight: InFlight,
    /// Reading is suspended because the pipeline is full.
    pub read_paused: bool,
    /// The peer closed its sending half; drain the pipeline, then close.
    pub peer_closed: bool,
    /// Close once the outbox drains (set by `shutdown`).
    pub close_after_flush: bool,
    /// This connection's `shutdown` request stops the server once its
    /// acknowledgement has been flushed.
    pub shutdown_origin: bool,
    /// The connection failed (I/O error, protocol-fatal state); remove it.
    pub dead: bool,
    next_seq: u64,
}

impl Conn {
    pub fn new(stream: Stream) -> Conn {
        Conn {
            stream,
            decoder: LineDecoder::new(MAX_REQUEST_LINE),
            outbox: Vec::new(),
            written: 0,
            pipeline: VecDeque::new(),
            inflight: InFlight::Idle,
            read_paused: false,
            peer_closed: false,
            close_after_flush: false,
            shutdown_origin: false,
            dead: false,
            next_seq: 1,
        }
    }

    /// The sequence number for the next dispatched job.
    pub fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Read until the socket would block (edge-triggered contract), the peer
    /// closes, or the pipeline fills. Parsed lines land in `pipeline`.
    pub fn fill(&mut self) {
        let mut buf = [0u8; 64 * 1024];
        while !self.read_paused && !self.dead {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.decoder.push(&buf[..n]);
                    self.drain_lines();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Move complete lines out of the decoder; pause reading at the
    /// pipeline cap (the bytes already read are kept — the cap limits
    /// further reads, it never drops input).
    fn drain_lines(&mut self) {
        while let Some(line) = self.decoder.next_line() {
            let trace = RequestTrace::begin(mint_id(), mp_obs::monotonic_ns());
            self.pipeline.push_back((line, trace));
        }
        if self.pipeline.len() >= MAX_PIPELINE && !self.read_paused {
            self.read_paused = true;
            obs_read_pauses().inc();
        }
    }

    /// Whether reading should resume (pipeline drained past the hysteresis
    /// threshold).
    pub fn should_resume_read(&self) -> bool {
        self.read_paused
            && !self.peer_closed
            && !self.dead
            && self.pipeline.len() <= RESUME_PIPELINE
    }

    /// Queue encoded response bytes for writing.
    pub fn enqueue(&mut self, bytes: &[u8]) {
        let before = self.pending_out();
        self.outbox.extend_from_slice(bytes);
        if before < HIGH_WATERMARK && self.pending_out() >= HIGH_WATERMARK {
            obs_outbox_high_water().inc();
        }
    }

    /// Response bytes not yet accepted by the kernel.
    pub fn pending_out(&self) -> usize {
        self.outbox.len() - self.written
    }

    /// Write until the kernel would block or the outbox is empty. Errors
    /// mark the connection dead (a vanished reader is that client's problem,
    /// never the server's).
    pub fn flush_out(&mut self) {
        while self.written < self.outbox.len() {
            match self.stream.write(&self.outbox[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written == self.outbox.len() {
            self.outbox.clear();
            self.written = 0;
            // A burst (one parked sweep's worth of chunks) must not pin its
            // high-water allocation for the connection's lifetime.
            if self.outbox.capacity() > 2 * HIGH_WATERMARK {
                self.outbox.shrink_to(HIGH_WATERMARK);
            }
        } else if self.written > HIGH_WATERMARK {
            self.outbox.drain(..self.written);
            self.written = 0;
        }
    }

    /// Whether this connection has fully finished: nothing queued, nothing
    /// in flight, nothing left to write, and no more input coming.
    pub fn drained(&self) -> bool {
        self.peer_closed
            && self.pipeline.is_empty()
            && matches!(self.inflight, InFlight::Idle)
            && self.pending_out() == 0
            && self.decoder.buffered() == 0
    }
}
