//! The resident sweep service: sharded engines behind admission queues.
//!
//! A [`SweepService`] owns `shards` long-lived [`Engine`]s, each with its own
//! lock-free memoisation cache and worker pool, fed by one admission queue
//! per shard. A sweep query is split along the space's flat index order into
//! the shards' static **bands** (shard `i` always owns the `i`-th contiguous
//! slice of a given space), so repeated or overlapping queries land every
//! scenario on the shard that cached it — the warm-cache hit rate survives
//! sharding. Partial results merge back in index order, which makes a
//! sharded service answer **bit-identical** to a direct [`Engine::sweep`]
//! over the same space: every scenario's value is a deterministic function
//! of the scenario and backend alone, independent of batch or shard
//! boundaries.
//!
//! Prepared sweeps ([`SweepHandle`]: the space plus its columnar
//! [`SpaceTables`]) are cached by content fingerprint and shared across
//! requests and shards, so a repeated query pays neither the table
//! precomputation nor — thanks to the per-shard caches — the evaluation.
//!
//! [`SpaceTables`]: mp_dse::tables::SpaceTables

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use mp_dse::analysis::{pareto_frontier, top_k, CostAxis};
use mp_dse::backend::EvalBackend;
use mp_dse::curves::{figure_curves, Figure};
use mp_dse::engine::{Engine, EvalRecord, SweepConfig, SweepHandle, SweepResult, SweepStats};
use mp_dse::scenario::ScenarioSpace;
use mp_model::catalogue::CatalogueRegistry;
use mp_model::explore::Curve;
use mp_model::fingerprint::Fnv64;
use mp_par::pool::chunk_range;

use crate::protocol::{
    to_wire, CatalogueEntry, Request, Response, ServiceStats, ShardStats, SpaceSpec, DEFAULT_CHUNK,
    PROTOCOL_VERSION,
};

/// Construction knobs of a [`SweepService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (each an independent engine + cache). Must be ≥ 1.
    pub shards: usize,
    /// Worker threads inside each shard's engine. Must be ≥ 1.
    pub threads_per_shard: usize,
    /// Sweep batch size handed to the engines.
    pub batch_size: usize,
    /// Whether shard engines memoise evaluations.
    pub use_cache: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { shards: 1, threads_per_shard: 1, batch_size: 1024, use_cache: true }
    }
}

/// Error produced by a service query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServeError {}

fn err(message: impl Into<String>) -> ServeError {
    ServeError(message.into())
}

/// One sweep assignment for a shard worker.
struct ShardJob {
    handle: Arc<SweepHandle<'static>>,
    range: Range<usize>,
    config: SweepConfig,
    reply: Sender<(usize, SweepResult)>,
}

/// One shard: a long-lived engine plus its admission queue.
struct Shard {
    engine: Arc<Engine>,
    queue: Sender<ShardJob>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// Maximum prepared sweep snapshots kept resident. The cache key (the query
/// space) is client-controlled, so without a cap a client iterating distinct
/// spaces would grow the service's memory without bound; beyond the cap the
/// least-recently-used snapshot is evicted (in-flight sweeps keep theirs
/// alive through their `Arc`).
const MAX_PREPARED: usize = 32;

/// The prepared-handle cache: fingerprint-keyed, LRU-bounded.
#[derive(Default)]
struct PreparedCache {
    handles: HashMap<u64, Arc<SweepHandle<'static>>>,
    /// Keys in use order, least recently used first.
    order: Vec<u64>,
}

impl PreparedCache {
    fn touch(&mut self, key: u64) {
        self.order.retain(|&k| k != key);
        self.order.push(key);
    }

    fn insert(&mut self, key: u64, handle: Arc<SweepHandle<'static>>) {
        self.handles.insert(key, handle);
        self.touch(key);
        while self.handles.len() > MAX_PREPARED {
            let evict = self.order.remove(0);
            self.handles.remove(&evict);
        }
    }
}

/// The resident, sharded sweep service. See the module docs.
pub struct SweepService {
    backend: Arc<dyn EvalBackend + Send + Sync>,
    shards: Vec<Shard>,
    prepared: Mutex<PreparedCache>,
    registry: CatalogueRegistry,
    sweep_config: SweepConfig,
    queries: AtomicU64,
    started: Instant,
}

impl std::fmt::Debug for SweepService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepService")
            .field("backend", &self.backend.name())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl SweepService {
    /// Start a service evaluating with `backend`: spawns one admission-queue
    /// worker per shard, each owning an engine with
    /// [`ServiceConfig::threads_per_shard`] sweep workers.
    pub fn new(backend: Arc<dyn EvalBackend + Send + Sync>, config: &ServiceConfig) -> Self {
        assert!(config.shards > 0, "service needs at least one shard");
        assert!(config.threads_per_shard > 0, "shards need at least one thread");
        assert!(config.batch_size > 0, "batch size must be positive");
        let backend_for_shards = Arc::clone(&backend);
        let shards = (0..config.shards)
            .map(|index| {
                let engine = Arc::new(Engine::new(config.threads_per_shard));
                let (queue, jobs) = unbounded::<ShardJob>();
                let worker_engine = Arc::clone(&engine);
                let worker_backend = Arc::clone(&backend_for_shards);
                let worker = std::thread::Builder::new()
                    .name(format!("mp-serve-shard-{index}"))
                    .spawn(move || {
                        while let Ok(job) = jobs.recv() {
                            let result = worker_engine.sweep_range(
                                &job.handle,
                                worker_backend.as_ref(),
                                &job.config,
                                job.range.clone(),
                            );
                            // A dropped reply receiver just means the querying
                            // connection went away mid-sweep.
                            let _ = job.reply.send((job.range.start, result));
                        }
                    })
                    .expect("failed to spawn shard worker");
                Shard { engine, queue, worker: Some(worker) }
            })
            .collect();
        SweepService {
            backend,
            shards,
            prepared: Mutex::new(PreparedCache::default()),
            registry: CatalogueRegistry::new(),
            sweep_config: SweepConfig {
                batch_size: config.batch_size,
                use_cache: config.use_cache,
            },
            queries: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Attach a calibration catalogue (what [`SpaceSpec::Catalogue`] resolves
    /// against and [`Request::Catalogue`] lists).
    pub fn with_registry(mut self, registry: CatalogueRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Resolve a wire-level space spec into a concrete space.
    pub fn resolve_space(&self, spec: &SpaceSpec) -> Result<ScenarioSpace, ServeError> {
        match spec {
            SpaceSpec::Explicit(space) => Ok(space.clone()),
            SpaceSpec::Catalogue { ids, space } => {
                if ids.is_empty() {
                    return Err(err("catalogue space needs at least one id"));
                }
                let mut apps = Vec::with_capacity(ids.len());
                for id in ids {
                    let parsed = CatalogueRegistry::parse_id(id)
                        .ok_or_else(|| err(format!("malformed catalogue id `{id}`")))?;
                    let calibration = self
                        .registry
                        .get(parsed)
                        .ok_or_else(|| err(format!("unknown catalogue id `{id}`")))?;
                    apps.push(calibration.app_params().clone());
                }
                Ok(space.clone().with_apps(apps))
            }
        }
    }

    /// The prepared (tables-built) handle for `space`, shared across
    /// requests and LRU-bounded to [`MAX_PREPARED`] snapshots. Keyed by
    /// content fingerprint; an (astronomically unlikely) fingerprint
    /// collision falls back to a fresh uncached handle rather than
    /// answering for the wrong space.
    ///
    /// The cache mutex is held only for the lookup and the insert, never
    /// while the [`SpaceTables`] are built — a first query over a large new
    /// space must not head-of-line-block queries over already-prepared
    /// spaces. Two clients racing on the same new space may both build it;
    /// the loser's copy just gets dropped.
    ///
    /// [`SpaceTables`]: mp_dse::tables::SpaceTables
    fn prepared(&self, space: &ScenarioSpace) -> Arc<SweepHandle<'static>> {
        let key = space_fingerprint(space);
        {
            let mut prepared = self.prepared.lock();
            if let Some(handle) = prepared.handles.get(&key) {
                if handle.space() == space {
                    let handle = Arc::clone(handle);
                    prepared.touch(key);
                    return handle;
                }
                return Arc::new(SweepHandle::owned(space.clone()));
            }
        }
        let handle = Arc::new(SweepHandle::owned(space.clone()));
        let mut prepared = self.prepared.lock();
        match prepared.handles.get(&key) {
            // A racing builder published first (and content matches): share
            // theirs so every in-flight sweep converges on one snapshot.
            Some(existing) if existing.space() == space => {
                let existing = Arc::clone(existing);
                prepared.touch(key);
                existing
            }
            _ => {
                prepared.insert(key, Arc::clone(&handle));
                handle
            }
        }
    }

    /// Evaluate `range` of `space` (`None` = the whole space) across the
    /// shards, returning merged records in index order plus summed stats.
    pub fn sweep(
        &self,
        space: &ScenarioSpace,
        range: Option<Range<usize>>,
    ) -> Result<SweepResult, ServeError> {
        let started = Instant::now();
        let n = space.len();
        let range = range.unwrap_or(0..n);
        if range.start > range.end || range.end > n {
            return Err(err(format!(
                "sweep range {}..{} exceeds the {n}-scenario space",
                range.start, range.end
            )));
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        let handle = self.prepared(space);

        // Intersect the request with each shard's static band of the full
        // space, so a scenario always lands on the same shard's cache no
        // matter how the request is windowed.
        let shards = self.shards.len();
        let (reply, replies) = unbounded();
        let mut outstanding = 0usize;
        for (index, shard) in self.shards.iter().enumerate() {
            let band = chunk_range(index, shards, n);
            let slice = band.start.max(range.start)..band.end.min(range.end);
            if slice.is_empty() {
                continue;
            }
            shard
                .queue
                .send(ShardJob {
                    handle: Arc::clone(&handle),
                    range: slice,
                    config: self.sweep_config,
                    reply: reply.clone(),
                })
                .map_err(|_| err("shard worker has exited"))?;
            outstanding += 1;
        }
        drop(reply);

        let mut partials: Vec<(usize, SweepResult)> = Vec::with_capacity(outstanding);
        for _ in 0..outstanding {
            partials.push(replies.recv().map_err(|_| err("shard worker dropped a sweep reply"))?);
        }
        partials.sort_by_key(|(start, _)| *start);

        let mut records: Vec<EvalRecord> = Vec::with_capacity(range.len());
        let mut stats = SweepStats {
            scenarios: 0,
            valid: 0,
            cache_hits: 0,
            cache_misses: 0,
            warm_entries: 0,
            threads: 0,
            elapsed_seconds: 0.0,
        };
        for (_, partial) in partials {
            records.extend_from_slice(&partial.records);
            stats.scenarios += partial.stats.scenarios;
            stats.valid += partial.stats.valid;
            stats.cache_hits += partial.stats.cache_hits;
            stats.cache_misses += partial.stats.cache_misses;
            stats.warm_entries += partial.stats.warm_entries;
            stats.threads += partial.stats.threads;
        }
        stats.elapsed_seconds = started.elapsed().as_secs_f64();
        debug_assert_eq!(stats.scenarios, range.len());
        Ok(SweepResult { records, stats })
    }

    /// The `k` highest-speedup records of a full sweep of `space`.
    pub fn top_k(&self, space: &ScenarioSpace, k: usize) -> Result<Vec<EvalRecord>, ServeError> {
        Ok(top_k(&self.sweep(space, None)?.records, k))
    }

    /// The Pareto frontier (speedup vs `cost`) of a full sweep of `space`.
    pub fn pareto(
        &self,
        space: &ScenarioSpace,
        cost: CostAxis,
    ) -> Result<Vec<EvalRecord>, ServeError> {
        Ok(pareto_frontier(&self.sweep(space, None)?.records, cost))
    }

    /// The engine-reproduced curve family of one paper figure.
    pub fn curves(&self, figure: Figure) -> Result<Vec<Curve>, ServeError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        figure_curves(figure).map_err(|e| err(format!("figure {figure} failed: {e}")))
    }

    /// Aggregate service statistics.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            backend: self.backend.name().to_string(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(index, shard)| ShardStats {
                    shard: index,
                    threads: shard.engine.threads(),
                    cache: shard.engine.cache().stats(),
                })
                .collect(),
            queries: self.queries.load(Ordering::Relaxed),
            prepared_spaces: self.prepared.lock().handles.len(),
            uptime_seconds: self.started.elapsed().as_secs_f64(),
        }
    }

    /// The calibration catalogue in wire form.
    pub fn catalogue_entries(&self) -> Vec<CatalogueEntry> {
        self.registry
            .entries()
            .iter()
            .map(|calibration| CatalogueEntry {
                id: CatalogueRegistry::format_id(calibration.fingerprint()),
                name: calibration.app_params().name.clone(),
                growth: calibration.growth().label(),
                f: calibration.app_params().f,
                fit_rmse: calibration.fit_rmse(),
            })
            .collect()
    }

    /// Answer one protocol request, emitting responses through `emit` as
    /// they are produced: a sweep's chunks are built (records → wire form)
    /// and emitted **one at a time**, so beyond the sweep result itself at
    /// most one chunk's wire copy is ever alive — the server writes and
    /// flushes each line before the next is built. An `Err` from `emit`
    /// (a dead connection) aborts the remaining chunks.
    /// [`Request::Shutdown`] is acknowledged here but acted on by the
    /// server loop.
    pub fn handle_streaming(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(Response) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        match request {
            Request::Ping => emit(Response::Pong { version: PROTOCOL_VERSION.to_string() }),
            Request::Stats => emit(Response::Stats(self.stats())),
            Request::Catalogue => emit(Response::Catalogue { entries: self.catalogue_entries() }),
            Request::Shutdown => emit(Response::ShuttingDown),
            Request::Sweep { space, start, end, chunk } => {
                let space = match self.resolve_space(space) {
                    Ok(space) => space,
                    Err(e) => return emit(Response::Error { message: e.0 }),
                };
                match self.sweep(&space, Some(*start..*end)) {
                    Ok(result) => {
                        let chunk = if *chunk == 0 { DEFAULT_CHUNK } else { *chunk };
                        for slice in result.records.chunks(chunk) {
                            emit(Response::SweepChunk {
                                start: slice[0].index,
                                records: to_wire(slice),
                            })?;
                        }
                        emit(Response::SweepDone { stats: result.stats })
                    }
                    Err(e) => emit(Response::Error { message: e.0 }),
                }
            }
            Request::TopK { space, k } => {
                self.record_query(space, |records| top_k(records, *k), emit)
            }
            Request::Pareto { space, cost } => {
                self.record_query(space, |records| pareto_frontier(records, *cost), emit)
            }
            Request::Curve { figure } => match self.curves(*figure) {
                Ok(curves) => emit(Response::Curves { curves }),
                Err(e) => emit(Response::Error { message: e.0 }),
            },
        }
    }

    /// [`SweepService::handle_streaming`] with the responses collected into
    /// a vector — the convenient form for in-process use and tests.
    pub fn handle(&self, request: &Request) -> Vec<Response> {
        let mut responses = Vec::new();
        self.handle_streaming(request, &mut |response| {
            responses.push(response);
            Ok(())
        })
        .expect("collecting emitter never fails");
        responses
    }

    /// Shared resolve → sweep → analyse path of the record-returning queries.
    fn record_query(
        &self,
        spec: &SpaceSpec,
        analyse: impl FnOnce(&[EvalRecord]) -> Vec<EvalRecord>,
        emit: &mut dyn FnMut(Response) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let space = match self.resolve_space(spec) {
            Ok(space) => space,
            Err(e) => return emit(Response::Error { message: e.0 }),
        };
        match self.sweep(&space, None) {
            Ok(result) => emit(Response::Records { records: to_wire(&analyse(&result.records)) }),
            Err(e) => emit(Response::Error { message: e.0 }),
        }
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        // Closing the admission queues lets the shard workers drain and exit.
        for shard in &mut self.shards {
            shard.queue = closed_sender();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// A sender whose receiver is already gone, used to drop a shard's live queue
/// in place (plain `drop(shard.queue)` is impossible on a borrowed field).
fn closed_sender<T>() -> Sender<T> {
    let (sender, _) = unbounded();
    sender
}

/// Content fingerprint of a space: FNV over its canonical JSON form. Axis
/// *values* (bit-exact — the JSON printer is shortest-round-trip) and axis
/// order both contribute, matching [`ScenarioSpace`] equality.
fn space_fingerprint(space: &ScenarioSpace) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.write_str(&serde_json::to_string(space).expect("spaces always serialise"));
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_dse::backend::AnalyticBackend;
    use mp_model::params::AppParams;

    fn space() -> ScenarioSpace {
        ScenarioSpace::new()
            .with_apps(AppParams::table2_all())
            .clear_designs()
            .add_symmetric_grid((0..40).map(|i| 1.0 + i as f64 * 3.0))
            .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
    }

    fn service(shards: usize) -> SweepService {
        SweepService::new(
            Arc::new(AnalyticBackend),
            &ServiceConfig { shards, threads_per_shard: 2, ..ServiceConfig::default() },
        )
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_a_direct_engine_sweep() {
        let space = space();
        let direct = Engine::new(2).sweep(&space, &AnalyticBackend, &SweepConfig::default());
        for shards in [1usize, 3] {
            let service = service(shards);
            let served = service.sweep(&space, None).unwrap();
            assert_eq!(served.records.len(), direct.records.len());
            for (a, b) in served.records.iter().zip(direct.records.iter()) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            }
            assert_eq!(served.stats.scenarios, space.len());
        }
    }

    #[test]
    fn range_queries_intersect_the_static_shard_bands() {
        let space = space();
        let service = service(4);
        let full = service.sweep(&space, None).unwrap();
        let n = space.len();
        let windows = [0..n / 5, n / 5..n - 3, n - 3..n, 0..0];
        for window in windows {
            let part = service.sweep(&space, Some(window.clone())).unwrap();
            assert_eq!(part.records.len(), window.len());
            for (record, truth) in part.records.iter().zip(&full.records[window]) {
                assert_eq!(record.index, truth.index);
                assert_eq!(record.speedup.to_bits(), truth.speedup.to_bits());
            }
        }
        assert!(service.sweep(&space, Some(0..n + 1)).is_err());
    }

    #[test]
    fn prepared_handle_cache_is_lru_bounded() {
        let service = service(1);
        // One more distinct space than the cap: the oldest must be evicted.
        for designs in 1..=(MAX_PREPARED + 1) {
            let space = ScenarioSpace::new()
                .clear_designs()
                .add_symmetric_grid((0..designs).map(|i| 1.0 + i as f64));
            service.sweep(&space, None).unwrap();
        }
        assert_eq!(service.stats().prepared_spaces, MAX_PREPARED);
        // Re-querying a recent space is still a handle hit (count unchanged);
        // the evicted first space gets re-prepared without growing past the
        // cap.
        let recent = ScenarioSpace::new()
            .clear_designs()
            .add_symmetric_grid((0..MAX_PREPARED + 1).map(|i| 1.0 + i as f64));
        service.sweep(&recent, None).unwrap();
        assert_eq!(service.stats().prepared_spaces, MAX_PREPARED);
        let evicted = ScenarioSpace::new().clear_designs().add_symmetric_grid([1.0]);
        service.sweep(&evicted, None).unwrap();
        assert_eq!(service.stats().prepared_spaces, MAX_PREPARED);
    }

    #[test]
    fn warm_repeat_queries_hit_the_shard_caches() {
        let space = space();
        let service = service(4);
        let first = service.sweep(&space, None).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        let second = service.sweep(&space, None).unwrap();
        assert_eq!(second.stats.cache_hits, space.len() as u64);
        assert_eq!(second.stats.cache_misses, 0);
        assert!(second.stats.warm_entries > 0);
        let totals = service.stats().cache_totals();
        assert_eq!(totals.entries, space.len());
        assert!(totals.hits >= space.len() as u64);
        // The prepared handle was reused, not rebuilt.
        assert_eq!(service.stats().prepared_spaces, 1);
        assert_eq!(service.stats().queries, 2);
    }

    #[test]
    fn analysis_queries_match_direct_analysis() {
        let space = space();
        let service = service(2);
        let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
        let top = service.top_k(&space, 5).unwrap();
        assert_eq!(top, top_k(&direct.records, 5));
        let frontier = service.pareto(&space, CostAxis::Cores).unwrap();
        assert_eq!(frontier, pareto_frontier(&direct.records, CostAxis::Cores));
    }

    #[test]
    fn protocol_dispatch_streams_chunks_and_reports_errors() {
        let space = space();
        let service = service(2);
        let responses = service.handle(&Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 64,
        });
        let terminal = responses.last().unwrap();
        assert!(matches!(terminal, Response::SweepDone { .. }));
        let chunks = responses.len() - 1;
        assert_eq!(chunks, space.len().div_ceil(64));
        assert!(responses[..chunks].iter().all(|r| !r.is_terminal()));

        let bad = service.handle(&Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 5,
            end: 1,
            chunk: 0,
        });
        assert!(matches!(bad.as_slice(), [Response::Error { .. }]));

        let unknown = service.handle(&Request::Sweep {
            space: SpaceSpec::Catalogue { ids: vec!["0123456789abcdef".into()], space },
            start: 0,
            end: 1,
            chunk: 0,
        });
        assert!(matches!(unknown.as_slice(), [Response::Error { .. }]));
    }
}
