//! The resident sweep service: sharded engines behind a work-stealing
//! scheduler.
//!
//! A [`SweepService`] owns `shards` long-lived [`Engine`]s, each with its own
//! lock-free memoisation cache and worker pool. A sweep query is split along
//! the space's flat index order into cost-sized **work units**
//! ([`mp_dse::units`]) routed to each unit's **home shard** — the shard
//! whose cache placement (`sched::Placement`) owns that slice of
//! the space, initially the static `chunk_range` bands — so repeated or
//! overlapping queries land every scenario on the shard that cached it.
//! Any idle worker may **steal** queued units off another shard's deque
//! (`sched`); a stolen unit still evaluates against its home
//! shard's engine, so stealing moves CPU without moving cache placement,
//! and persistent steal pressure re-bands placement adaptively. Unit
//! results fuse back in index order through the Merge-Path partitioned
//! merge ([`mp_dse::merge`]), which makes a sharded, stolen sweep answer
//! **bit-identical** to a direct [`Engine::sweep`] over the same space:
//! every scenario's value is a deterministic function of the scenario and
//! backend alone, independent of batch, unit or shard boundaries.
//!
//! Between the callers and the shards sits the **query planner**
//! ([`crate::planner`]): concurrent queries over the same prepared space
//! and range **coalesce** onto one in-flight evaluation whose result fans
//! back out per subscriber (byte-identical to an uncoalesced run, follower
//! stats marked [`SweepStats::coalesced`]), and admission is **cost-based**
//! — each shard budgets the *estimated evaluation cost* of its queued work
//! (calibrated from the engine's live metrics) and rejects, retryably and
//! with the estimate attached, what would blow the budget; the raw
//! in-flight depth cap remains as a backstop.
//!
//! Prepared sweeps ([`SweepHandle`]: the space plus its columnar
//! [`SpaceTables`]) are cached by content fingerprint and shared across
//! requests and shards — racing first queries over the same new space share
//! one table build — so a repeated query pays neither the table
//! precomputation nor — thanks to the per-shard caches — the evaluation.
//!
//! [`SpaceTables`]: mp_dse::tables::SpaceTables

use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crossbeam::channel::unbounded;
use mp_obs::hist::Histogram;
use mp_obs::metrics::{Counter, Gauge};
use mp_obs::profile::{thread_lane, Profiler};
use parking_lot::Mutex;

use mp_dse::analysis::{pareto_frontier, top_k, CostAxis};
use mp_dse::backend::EvalBackend;
use mp_dse::curves::{figure_curves, Figure};
use mp_dse::engine::{
    Engine, EvalRecord, RangeCursor, SweepConfig, SweepHandle, SweepResult, SweepStats,
};
use mp_dse::merge::merge_runs;
use mp_dse::scenario::ScenarioSpace;
use mp_model::catalogue::CatalogueRegistry;
use mp_model::explore::Curve;

use crate::planner::{BuildRole, BuildTable, Coalescer, CostModel, PlanKey, Role};
use crate::protocol::{
    to_wire, CatalogueEntry, Request, Response, ServiceStats, ShardStats, SpaceSpec, DEFAULT_CHUNK,
    PROTOCOL_VERSION,
};
use crate::sched::{Placement, Scheduler, UnitDone, WorkUnit};

/// Queries rejected by admission control with a retryable
/// [`Response::Busy`].
fn obs_busy_rejections() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("busy_rejections"))
}

/// Sweeps queued or running across every shard's admission queue (the sum
/// of the per-shard depth gauges the admission gate reads).
fn obs_queue_depth() -> &'static Gauge {
    static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::gauge("executor_queue_depth"))
}

/// Time a work unit spent on its home shard's deque before a worker
/// (home or thief) picked it up, milliseconds.
pub(crate) fn obs_queue_wait_ms() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::histogram_ms("serve_queue_wait_ms"))
}

/// Per-verb request counter (`requests_total_<verb>`), counted once per
/// protocol request at dispatch — socket-served and in-process alike.
fn obs_requests(request: &Request) -> &'static Counter {
    macro_rules! verb_counter {
        ($verb:literal) => {{
            static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
            CELL.get_or_init(|| mp_obs::counter(concat!("requests_total_", $verb)))
        }};
    }
    match request {
        Request::Ping => verb_counter!("ping"),
        Request::Stats => verb_counter!("stats"),
        Request::Metrics => verb_counter!("metrics"),
        Request::Catalogue => verb_counter!("catalogue"),
        Request::Shutdown => verb_counter!("shutdown"),
        Request::Sweep { .. } => verb_counter!("sweep"),
        Request::TopK { .. } => verb_counter!("top_k"),
        Request::Pareto { .. } => verb_counter!("pareto"),
        Request::Curve { .. } => verb_counter!("curve"),
        Request::Prepare { .. } => verb_counter!("prepare"),
        Request::JobSubmit { .. } => verb_counter!("job_submit"),
        Request::JobStatus { .. } => verb_counter!("job_status"),
        Request::JobCancel { .. } => verb_counter!("job_cancel"),
        Request::JobResume { .. } => verb_counter!("job_resume"),
    }
}

/// Count one request on its per-verb series. The socket path calls this for
/// the verbs it answers without delegating to
/// [`SweepService::handle_streaming`] (sweeps and shutdowns), so every
/// request is counted exactly once on either path.
pub(crate) fn count_request(request: &Request) {
    obs_requests(request).inc();
}

/// Construction knobs of a [`SweepService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (each an independent engine + cache). Must be ≥ 1.
    pub shards: usize,
    /// Worker threads inside each shard's engine. Must be ≥ 1.
    pub threads_per_shard: usize,
    /// Sweep batch size handed to the engines.
    pub batch_size: usize,
    /// Whether shard engines memoise evaluations.
    pub use_cache: bool,
    /// Admission cap: sweeps in flight (queued or running) per shard before
    /// new queries are rejected with a retryable [`Response::Busy`] instead
    /// of growing the queue. Must be ≥ 1. The backstop behind the primary,
    /// cost-based gate ([`ServiceConfig::cost_budget_ms`]).
    pub queue_capacity: usize,
    /// Cost-based admission budget: the estimated evaluation cost (ms) a
    /// shard's queued work may reach before further queries are rejected
    /// with a retryable [`Response::Busy`] carrying the estimate. A query
    /// is always admitted onto an idle shard regardless of its size. Must
    /// be positive.
    pub cost_budget_ms: f64,
    /// Pin the cost model's per-scenario cost (ms) instead of calibrating
    /// from the engine's live `dse_batch_ms` / `dse_scenarios_evaluated`
    /// metrics — deterministic admission for tests and benches.
    pub cost_per_scenario_ms: Option<f64>,
    /// Whether concurrent queries over the same prepared space and range
    /// coalesce onto one shared in-flight evaluation. On by default;
    /// disabled for uncoalesced baseline measurements.
    pub coalesce: bool,
    /// Whether idle workers steal queued work units from other shards'
    /// deques (and placement re-bands under persistent steal pressure).
    /// On by default; disabled for static-band baseline measurements —
    /// with stealing off every unit runs on its home shard's worker,
    /// which is exactly the pre-scheduler banding.
    pub steal: bool,
    /// Force the scalar reference kernels even on hosts with SIMD lanes
    /// (the in-process equivalent of `MP_SIMD_FORCE_SCALAR=1`): latched
    /// process-wide via [`mp_model::simd::set_forced_scalar`] at service
    /// construction, for scalar-vs-lane A/B baselines. Both paths are
    /// bit-identical by contract, so flipping this changes throughput only,
    /// never results. A `true` here latches on for the process; it is never
    /// un-set by a later service constructed with `false`.
    pub force_scalar: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            threads_per_shard: 1,
            batch_size: 1024,
            use_cache: true,
            queue_capacity: 1024,
            cost_budget_ms: 30_000.0,
            cost_per_scenario_ms: None,
            coalesce: true,
            steal: true,
            force_scalar: false,
        }
    }
}

/// What kind of failure a [`ServeError`] is — the wire protocol reports the
/// two differently ([`Response::Busy`] is retryable, [`Response::Error`] is
/// not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// The request itself is unanswerable (bad range, unknown catalogue id,
    /// dead shard worker).
    Invalid,
    /// The service's admission queues are full; the request was not executed
    /// and may be retried.
    Busy,
}

/// Error produced by a service query.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Whether the failure is retryable.
    pub kind: ServeErrorKind,
    /// Human-readable reason.
    pub message: String,
    /// The planner's estimated evaluation cost of the rejected query,
    /// milliseconds (`0.0` when the rejection was not cost-informed —
    /// invalid requests, dead workers).
    pub estimated_cost_ms: f64,
}

impl ServeError {
    /// Whether this is an admission rejection (retryable).
    pub fn is_busy(&self) -> bool {
        self.kind == ServeErrorKind::Busy
    }

    /// The terminal wire response reporting this error.
    pub fn into_response(self) -> Response {
        match self.kind {
            ServeErrorKind::Busy => {
                Response::Busy { message: self.message, estimated_cost_ms: self.estimated_cost_ms }
            }
            ServeErrorKind::Invalid => Response::Error { message: self.message },
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

fn err(message: impl Into<String>) -> ServeError {
    ServeError { kind: ServeErrorKind::Invalid, message: message.into(), estimated_cost_ms: 0.0 }
}

/// Best-effort human-readable reason from a caught panic payload.
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "backend panicked".to_string()
    }
}

fn busy(message: impl Into<String>, estimated_cost_ms: f64) -> ServeError {
    ServeError { kind: ServeErrorKind::Busy, message: message.into(), estimated_cost_ms }
}

/// One shard: a long-lived engine plus its admission gauges. The worker
/// threads live in the scheduler ([`crate::sched::Scheduler`]), which owns
/// one deque per shard over these same engines.
struct Shard {
    engine: Arc<Engine>,
    /// Sweeps queued or running whose units are homed on this shard — the
    /// admission-control gauge. Debited once per query at dispatch,
    /// credited by the submitting caller when the shard's last homed unit
    /// of that query completes.
    depth: std::sync::atomic::AtomicUsize,
    /// Estimated evaluation cost of the shard's queued-or-running homed
    /// units, microseconds — what the cost-based admission gate budgets.
    /// Debited per unit at dispatch, credited per completed unit.
    pending_cost_us: AtomicU64,
}

/// Maximum prepared sweep snapshots kept resident. The cache key (the query
/// space) is client-controlled, so without a cap a client iterating distinct
/// spaces would grow the service's memory without bound; beyond the cap the
/// least-recently-used snapshot is evicted (in-flight sweeps keep theirs
/// alive through their `Arc`).
const MAX_PREPARED: usize = 32;

/// The prepared-handle cache: fingerprint-keyed, LRU-bounded.
#[derive(Default)]
struct PreparedCache {
    handles: HashMap<u64, Arc<SweepHandle<'static>>>,
    /// Keys in use order, least recently used first.
    order: Vec<u64>,
}

impl PreparedCache {
    fn touch(&mut self, key: u64) {
        self.order.retain(|&k| k != key);
        self.order.push(key);
    }

    fn insert(&mut self, key: u64, handle: Arc<SweepHandle<'static>>) {
        self.handles.insert(key, handle);
        self.touch(key);
        while self.handles.len() > MAX_PREPARED {
            let evict = self.order.remove(0);
            self.handles.remove(&evict);
        }
    }
}

/// The placement cache: one [`Placement`] per prepared-space fingerprint,
/// bounded like the prepared-handle cache. Placements outlive individual
/// queries — that is what lets adaptive re-banding learn a skewed mix and
/// keep routing repeat queries to the cache that warmed for them.
#[derive(Default)]
struct PlacementCache {
    placements: HashMap<u64, Arc<Placement>>,
    /// Keys in use order, least recently used first.
    order: Vec<u64>,
}

/// The resident, sharded sweep service. See the module docs.
pub struct SweepService {
    backend: Arc<dyn EvalBackend + Send + Sync>,
    shards: Vec<Shard>,
    /// The work-stealing scheduler: one worker and one deque per shard
    /// over the shards' engines. Its own `Drop` drains and joins the
    /// workers, so the service needs no teardown of its own.
    sched: Scheduler,
    placements: Mutex<PlacementCache>,
    prepared: Mutex<PreparedCache>,
    /// In-flight table builds, so racing first queries over the same new
    /// space share one [`SpaceTables`] construction.
    ///
    /// [`SpaceTables`]: mp_dse::tables::SpaceTables
    builds: BuildTable,
    /// The planner's in-flight coalescing table.
    coalescer: Coalescer,
    cost_model: CostModel,
    registry: CatalogueRegistry,
    sweep_config: SweepConfig,
    queue_capacity: usize,
    cost_budget_ms: f64,
    coalesce: bool,
    queries: AtomicU64,
    started: Instant,
    /// The durable-job manager, when one is attached
    /// ([`crate::jobs::JobManager::new`]). Weak: the manager owns the
    /// service (its runner sweeps through it), never the other way around,
    /// so tearing down is cycle-free.
    jobs: OnceLock<std::sync::Weak<crate::jobs::JobManager>>,
}

impl std::fmt::Debug for SweepService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepService")
            .field("backend", &self.backend.name())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl SweepService {
    /// Start a service evaluating with `backend`: spawns the work-stealing
    /// scheduler's one worker per shard, each shard owning an engine with
    /// [`ServiceConfig::threads_per_shard`] sweep workers.
    pub fn new(backend: Arc<dyn EvalBackend + Send + Sync>, config: &ServiceConfig) -> Self {
        assert!(config.shards > 0, "service needs at least one shard");
        assert!(config.threads_per_shard > 0, "shards need at least one thread");
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.queue_capacity > 0, "admission queue capacity must be positive");
        assert!(config.cost_budget_ms > 0.0, "cost budget must be positive");
        if config.force_scalar {
            mp_model::simd::set_forced_scalar(true);
        }
        // Register the core series now: a scrape must see `busy_rejections`
        // at zero on an idle server, not have the series appear at the first
        // rejection. Same for the planner's and the scheduler's series.
        obs_busy_rejections();
        obs_queue_depth();
        obs_queue_wait_ms();
        crate::planner::obs_coalesced_requests();
        crate::planner::obs_shared_scenarios();
        crate::planner::obs_cost_rejections();
        crate::planner::obs_merge_ms();
        let shards: Vec<Shard> = (0..config.shards)
            .map(|_| Shard {
                engine: Arc::new(Engine::new(config.threads_per_shard)),
                depth: std::sync::atomic::AtomicUsize::new(0),
                pending_cost_us: AtomicU64::new(0),
            })
            .collect();
        let engines = shards.iter().map(|shard| Arc::clone(&shard.engine)).collect();
        let sched = Scheduler::new(engines, Arc::clone(&backend), config.steal);
        SweepService {
            backend,
            shards,
            sched,
            placements: Mutex::new(PlacementCache::default()),
            prepared: Mutex::new(PreparedCache::default()),
            builds: BuildTable::default(),
            coalescer: Coalescer::default(),
            cost_model: CostModel::new(config.cost_per_scenario_ms),
            registry: CatalogueRegistry::new(),
            sweep_config: SweepConfig {
                batch_size: config.batch_size,
                use_cache: config.use_cache,
            },
            queue_capacity: config.queue_capacity,
            cost_budget_ms: config.cost_budget_ms,
            coalesce: config.coalesce,
            queries: AtomicU64::new(0),
            started: Instant::now(),
            jobs: OnceLock::new(),
        }
    }

    /// Attach a durable-job manager (called once by
    /// [`crate::jobs::JobManager::new`]): the four `job_*` protocol verbs
    /// dispatch to it. A service without one answers them with an error.
    pub(crate) fn attach_jobs(&self, manager: std::sync::Weak<crate::jobs::JobManager>) {
        let _ = self.jobs.set(manager);
    }

    /// The attached job manager, if one is alive.
    pub fn jobs(&self) -> Option<Arc<crate::jobs::JobManager>> {
        self.jobs.get().and_then(std::sync::Weak::upgrade)
    }

    /// Spill every shard's [`EvalCache`] to `dir` as binary segment files
    /// (`cache-shard-<i>.seg`), each written atomically (tmp file + fsync +
    /// rename). Returns the number of entries spilled. Part of a durable
    /// job's checkpoint; also callable on its own for an orderly shutdown.
    ///
    /// [`EvalCache`]: mp_dse::cache::EvalCache
    pub fn save_cache_segments(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut entries = 0usize;
        for (index, shard) in self.shards.iter().enumerate() {
            let cache = shard.engine.cache();
            entries += cache.len();
            crate::jobs::atomic_write(
                &dir.join(format!("cache-shard-{index}.seg")),
                &cache.save_segment(),
            )?;
        }
        Ok(entries)
    }

    /// Warm-start the shard caches from the segment files a previous
    /// process spilled to `dir`. Segment `i` loads into shard `i % shards`,
    /// so a restart with the same shard count reproduces the exact cache
    /// placement; with a different count the entries still load but may sit
    /// in a shard whose band never probes them (documented cost: a colder
    /// warm start, never a wrong answer — values are keyed by scenario
    /// fingerprint and salt, not by shard).
    ///
    /// Returns the number of entries restored. Corrupt, truncated or
    /// version-stale segments are **skipped with a warning** — a damaged
    /// spill degrades to a cold shard, it never aborts startup.
    pub fn load_cache_segments(&self, dir: &Path) -> usize {
        let mut restored = 0usize;
        for index in 0.. {
            let path = dir.join(format!("cache-shard-{index}.seg"));
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(_) => break,
            };
            let shard = &self.shards[index % self.shards.len()];
            match shard.engine.cache().load_segment(&bytes) {
                Ok(loaded) => restored += loaded,
                Err(e) => mp_obs::warn(
                    "jobs",
                    &format!("skipping cache segment {} (cold start): {e}", path.display()),
                ),
            }
        }
        restored
    }

    /// Attach a calibration catalogue (what [`SpaceSpec::Catalogue`] resolves
    /// against and [`Request::Catalogue`] lists).
    pub fn with_registry(mut self, registry: CatalogueRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Resolve a wire-level space spec into a prepared sweep handle — the
    /// form every query path consumes. [`SpaceSpec::Prepared`] ids hit the
    /// handle cache directly (no parse, clone or fingerprint work);
    /// everything else resolves to a space and goes through the prepared
    /// handle cache.
    pub fn resolve_handle(
        &self,
        spec: &SpaceSpec,
    ) -> Result<Arc<SweepHandle<'static>>, ServeError> {
        match spec {
            SpaceSpec::Prepared { id } => self.lookup_prepared(id),
            SpaceSpec::Explicit(space) => Ok(self.prepared(space)),
            SpaceSpec::Catalogue { .. } => Ok(self.prepared(&self.resolve_space(spec)?)),
        }
    }

    /// Register a space and return its prepared id plus scenario count
    /// (the [`Request::Prepare`] implementation).
    pub fn prepare_spec(&self, spec: &SpaceSpec) -> Result<(String, usize), ServeError> {
        let handle = self.resolve_handle(spec)?;
        let id = CatalogueRegistry::format_id(space_fingerprint(handle.space()));
        Ok((id, handle.len()))
    }

    /// Look a prepared id up in the handle cache.
    fn lookup_prepared(&self, id: &str) -> Result<Arc<SweepHandle<'static>>, ServeError> {
        let key = CatalogueRegistry::parse_id(id)
            .ok_or_else(|| err(format!("malformed prepared-space id `{id}`")))?;
        let mut prepared = self.prepared.lock();
        match prepared.handles.get(&key) {
            Some(handle) => {
                let handle = Arc::clone(handle);
                prepared.touch(key);
                Ok(handle)
            }
            None => Err(err(format!(
                "unknown prepared-space id `{id}` (expired from the LRU cache? re-prepare)"
            ))),
        }
    }

    /// Resolve a wire-level space spec into a concrete space.
    pub fn resolve_space(&self, spec: &SpaceSpec) -> Result<ScenarioSpace, ServeError> {
        match spec {
            SpaceSpec::Explicit(space) => Ok(space.clone()),
            SpaceSpec::Prepared { id } => Ok(self.lookup_prepared(id)?.space().clone()),
            SpaceSpec::Catalogue { ids, space } => {
                if ids.is_empty() {
                    return Err(err("catalogue space needs at least one id"));
                }
                let mut apps = Vec::with_capacity(ids.len());
                for id in ids {
                    let parsed = CatalogueRegistry::parse_id(id)
                        .ok_or_else(|| err(format!("malformed catalogue id `{id}`")))?;
                    let calibration = self
                        .registry
                        .get(parsed)
                        .ok_or_else(|| err(format!("unknown catalogue id `{id}`")))?;
                    apps.push(calibration.app_params().clone());
                }
                Ok(space.clone().with_apps(apps))
            }
        }
    }

    /// The prepared (tables-built) handle for `space`, shared across
    /// requests and LRU-bounded to [`MAX_PREPARED`] snapshots. Keyed by
    /// content fingerprint; an (astronomically unlikely) fingerprint
    /// collision falls back to a fresh uncached handle rather than
    /// answering for the wrong space.
    ///
    /// The cache mutex is held only for the lookup and the insert, never
    /// while the [`SpaceTables`] are built — a first query over a large new
    /// space must not head-of-line-block queries over already-prepared
    /// spaces. Clients racing on the same new space share **one** build
    /// through the planner's [`BuildTable`]: the first becomes the build
    /// leader, the rest block for its handle instead of redundantly
    /// deriving the same columns.
    ///
    /// [`SpaceTables`]: mp_dse::tables::SpaceTables
    fn prepared(&self, space: &ScenarioSpace) -> Arc<SweepHandle<'static>> {
        let key = space_fingerprint(space);
        {
            let mut prepared = self.prepared.lock();
            if let Some(handle) = prepared.handles.get(&key) {
                if handle.space() == space {
                    let handle = Arc::clone(handle);
                    prepared.touch(key);
                    return handle;
                }
                return Arc::new(SweepHandle::owned(space.clone()));
            }
        }
        match self.builds.join(key) {
            BuildRole::Leader => {
                let handle = Arc::new(SweepHandle::owned(space.clone()));
                {
                    let mut prepared = self.prepared.lock();
                    match prepared.handles.get(&key) {
                        // A fingerprint collision landed while we built:
                        // leave the existing snapshot alone, keep ours
                        // uncached.
                        Some(existing) if existing.space() != space => {}
                        _ => prepared.insert(key, Arc::clone(&handle)),
                    }
                }
                self.builds.publish(key, &handle);
                handle
            }
            BuildRole::Follower(build) => {
                let handle = build.wait();
                if handle.space() == space {
                    handle
                } else {
                    // Fingerprint collision with the leader's space: build
                    // a fresh uncached handle rather than answer for the
                    // wrong space.
                    Arc::new(SweepHandle::owned(space.clone()))
                }
            }
        }
    }

    /// Evaluate `range` of `space` (`None` = the whole space) across the
    /// shards, returning merged records in index order plus summed stats.
    /// Subject to admission control: when any participating shard already
    /// has [`ServiceConfig::queue_capacity`] sweeps in flight, the query is
    /// rejected with a retryable busy error instead of queued.
    pub fn sweep(
        &self,
        space: &ScenarioSpace,
        range: Option<Range<usize>>,
    ) -> Result<SweepResult, ServeError> {
        self.sweep_handle(&self.prepared(space), range)
    }

    /// [`SweepService::sweep`] over an already-prepared handle (what the
    /// wire paths use — a [`SpaceSpec::Prepared`] query never touches the
    /// space itself).
    pub fn sweep_handle(
        &self,
        handle: &Arc<SweepHandle<'static>>,
        range: Option<Range<usize>>,
    ) -> Result<SweepResult, ServeError> {
        let n = handle.len();
        let range = range.unwrap_or(0..n);
        check_range(&range, n)?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.admit(handle, &range)?;
        self.sweep_prepared(handle, range)
    }

    /// The durable cache placement of `handle`'s space: fingerprint-keyed,
    /// LRU-bounded like the prepared-handle cache. Fresh placements
    /// reproduce the static bands; adaptive re-banding then mutates them
    /// in place, which is why the same `Arc` must be handed to every query
    /// over the space. A fingerprint collision (placement built for a
    /// different-length space) falls back to a fresh uncached placement.
    fn placement(&self, handle: &SweepHandle<'static>) -> Arc<Placement> {
        let key = handle.fingerprint();
        let mut placements = self.placements.lock();
        if let Some(placement) = placements.placements.get(&key) {
            if placement.len() == handle.len() {
                let placement = Arc::clone(placement);
                placements.order.retain(|&k| k != key);
                placements.order.push(key);
                return placement;
            }
            return Arc::new(Placement::new(handle.len(), self.shards.len()));
        }
        let placement = Arc::new(Placement::new(handle.len(), self.shards.len()));
        placements.placements.insert(key, Arc::clone(&placement));
        placements.order.push(key);
        while placements.placements.len() > MAX_PREPARED {
            let evict = placements.order.remove(0);
            placements.placements.remove(&evict);
        }
        placement
    }

    /// Scenarios of `range` homed on each participating shard, shard-keyed
    /// and deterministic. Admission, cache reservation and unit dispatch
    /// all derive from the same [`Placement::bands`] decomposition, so the
    /// three can never drift apart on what "participating" means.
    fn homed_scenarios(placement: &Placement, range: &Range<usize>) -> BTreeMap<usize, usize> {
        let mut homed: BTreeMap<usize, usize> = BTreeMap::new();
        for (home, slice, _) in placement.bands(range) {
            *homed.entry(home).or_default() += slice.len();
        }
        homed
    }

    /// The admission gate, checked once per *query* — the windows of an
    /// admitted streaming sweep are never rejected mid-answer, they just
    /// queue behind other admitted work. Two conditions, per participating
    /// shard:
    ///
    /// * **cost budget** (primary): the estimated evaluation cost of the
    ///   shard's queued work plus this query's slice must stay within
    ///   [`ServiceConfig::cost_budget_ms`] — a giant sweep can no longer
    ///   bury a queue that hundreds of cheap warm queries would sail
    ///   through, and conversely cheap queries keep being admitted by
    ///   *cost* where a raw depth cap would count them like giants. An
    ///   idle (zero-pending) shard admits anything: budgets bound *waiting*
    ///   work, they must not make oversized queries unanswerable.
    /// * **depth cap** (backstop): at most
    ///   [`ServiceConfig::queue_capacity`] sweeps in flight per shard,
    ///   whatever the model thinks they cost.
    ///
    /// Rejections are retryable ([`Response::Busy`]) and carry the query's
    /// estimated cost.
    fn admit(&self, handle: &SweepHandle<'static>, range: &Range<usize>) -> Result<(), ServeError> {
        let per_scenario_ms = self.cost_model.cost_per_scenario_ms();
        let query_cost_ms = range.len() as f64 * per_scenario_ms;
        let placement = self.placement(handle);
        for (index, scenarios) in Self::homed_scenarios(&placement, range) {
            let shard = &self.shards[index];
            let depth = shard.depth.load(Ordering::Acquire);
            if depth >= self.queue_capacity {
                obs_busy_rejections().inc();
                return Err(busy(
                    format!(
                        "shard {index} admission queue is full ({depth} sweeps in flight, cap {})",
                        self.queue_capacity
                    ),
                    query_cost_ms,
                ));
            }
            let pending_ms = shard.pending_cost_us.load(Ordering::Acquire) as f64 / 1e3;
            let slice_ms = scenarios as f64 * per_scenario_ms;
            if pending_ms > 0.0 && pending_ms + slice_ms > self.cost_budget_ms {
                crate::planner::obs_cost_rejections().inc();
                obs_busy_rejections().inc();
                return Err(busy(
                    format!(
                        "shard {index} estimated backlog {pending_ms:.1} ms + this query's \
                         {slice_ms:.1} ms exceeds the {:.0} ms admission budget",
                        self.cost_budget_ms
                    ),
                    query_cost_ms,
                ));
            }
        }
        Ok(())
    }

    /// The planner's evaluation entry point: every query path (one-shot
    /// sweeps, streaming windows, analysis queries) funnels its admitted,
    /// validated ranges through here. When coalescing is on, concurrent
    /// calls with the same `(prepared-space fingerprint, range)` key share
    /// one scheduled evaluation: the first becomes the leader and evaluates,
    /// the rest block and receive the published result — records
    /// bit-identical, follower stats marked [`SweepStats::coalesced`] so
    /// the shared work is counted once by aggregators but still reported to
    /// every subscriber.
    fn sweep_prepared(
        &self,
        handle: &Arc<SweepHandle<'static>>,
        range: Range<usize>,
    ) -> Result<SweepResult, ServeError> {
        if !self.coalesce || range.is_empty() {
            return self.sweep_scheduled(handle, range);
        }
        let key = PlanKey { fingerprint: handle.fingerprint(), start: range.start, end: range.end };
        match self.coalescer.join(key) {
            Role::Leader => {
                let result = self.sweep_scheduled(handle, range).map(Arc::new);
                self.coalescer.publish(&key, &result);
                // No follower joined: the published Arc is already dropped
                // and the result is returned without a copy.
                result.map(|shared| match Arc::try_unwrap(shared) {
                    Ok(owned) => owned,
                    Err(shared) => SweepResult::clone(&shared),
                })
            }
            Role::Follower(inflight) => {
                crate::planner::obs_coalesced_requests().inc();
                crate::planner::obs_shared_scenarios().add(range.len() as u64);
                let shared = inflight.wait()?;
                let mut result = SweepResult::clone(&shared);
                result.stats.coalesced = true;
                Ok(result)
            }
        }
    }

    /// The scheduled sweep core: decompose `range` into cost-sized work
    /// units along the placement's cache bands, submit them to the
    /// work-stealing scheduler, and fuse the completed units back into
    /// index order with the Merge-Path partitioned merge — bit-identical
    /// to evaluating the range in one piece, whichever worker ran each
    /// unit. No admission check — callers gate first.
    fn sweep_scheduled(
        &self,
        handle: &Arc<SweepHandle<'static>>,
        range: Range<usize>,
    ) -> Result<SweepResult, ServeError> {
        let started = Instant::now();
        let per_scenario_ms = self.cost_model.cost_per_scenario_ms();
        let placement = self.placement(handle);
        let span = mp_dse::units::unit_span(per_scenario_ms);
        let (reply, replies) = unbounded();

        // Decompose along the placement's cache bands first — every unit
        // gets exactly one home shard whose cache owns its scenarios — and
        // then into cost-sized units within each band, so a scenario lands
        // on the same shard's cache no matter how the request is windowed.
        let mut units: Vec<WorkUnit> = Vec::new();
        let mut homes: BTreeMap<usize, usize> = BTreeMap::new();
        for (home, band, _) in placement.bands(&range) {
            for unit_range in mp_dse::units::split_units(band, span) {
                let cost_us = (unit_range.len() as f64 * per_scenario_ms * 1e3) as u64;
                *homes.entry(home).or_insert(0) += 1;
                let segments = placement.segments_of(&unit_range);
                units.push(WorkUnit::new(
                    Arc::clone(handle),
                    unit_range,
                    segments,
                    home,
                    self.sweep_config,
                    Arc::clone(&placement),
                    reply.clone(),
                    cost_us,
                ));
            }
        }
        drop(reply);

        // Debit the admission gauges before dispatch: one queue-depth slot
        // per participating *home* shard (what `admit` gates on) plus each
        // unit's pending cost against its home. Stolen units still debit
        // the home — the admission budget models cache placement, not
        // whichever worker happens to execute.
        for &home in homes.keys() {
            self.shards[home].depth.fetch_add(1, Ordering::AcqRel);
            obs_queue_depth().add(1);
        }
        for unit in &units {
            self.shards[unit.home].pending_cost_us.fetch_add(unit.cost_us, Ordering::AcqRel);
        }
        // Snapshot warm-cache state at dispatch: entries resident in the
        // participating homes' caches, each home counted once per sweep —
        // summing per unit (or per executing worker) would inflate it.
        let warm_entries: usize = if self.sweep_config.use_cache {
            homes.keys().map(|&home| self.shards[home].engine.cache().len()).sum()
        } else {
            0
        };
        let outstanding = units.len();
        let mut remaining: BTreeMap<usize, usize> = homes.clone();
        if let Err(units) = self.sched.submit(units) {
            for unit in &units {
                self.shards[unit.home].pending_cost_us.fetch_sub(unit.cost_us, Ordering::Release);
            }
            for &home in homes.keys() {
                self.shards[home].depth.fetch_sub(1, Ordering::Release);
                obs_queue_depth().sub(1);
            }
            return Err(err("the sweep scheduler has shut down"));
        }

        // Drain *every* outstanding reply before ruling on errors: unit
        // results are already inserted into their home shards' caches and
        // are deterministic, so a retried query re-reads them warm. The
        // *caller* credits the admission gauges — a unit is done for
        // backpressure purposes only once its result is collected, whether
        // its home worker or a thief evaluated it.
        let mut partials: Vec<(usize, SweepResult)> = Vec::with_capacity(outstanding);
        let mut failure: Option<String> = None;
        let mut threads_by_home: BTreeMap<usize, usize> = BTreeMap::new();
        for _ in 0..outstanding {
            let done: UnitDone =
                replies.recv().map_err(|_| err("the scheduler dropped a sweep reply"))?;
            self.shards[done.home].pending_cost_us.fetch_sub(done.cost_us, Ordering::Release);
            if let Some(left) = remaining.get_mut(&done.home) {
                *left -= 1;
                if *left == 0 {
                    remaining.remove(&done.home);
                    self.shards[done.home].depth.fetch_sub(1, Ordering::Release);
                    obs_queue_depth().sub(1);
                }
            }
            match done.result {
                Ok(partial) => {
                    // Distinct evaluation lanes per home, not per unit: a
                    // home's units run one at a time on some worker, so its
                    // thread count is the max any of its units saw.
                    let lanes = threads_by_home.entry(done.home).or_insert(0);
                    *lanes = (*lanes).max(partial.stats.threads);
                    partials.push((done.start, partial));
                }
                Err(reason) => failure = Some(reason),
            }
        }
        if let Some(reason) = failure {
            return Err(err(format!("sweep evaluation failed: {reason}")));
        }

        // Fusion merge: unit runs are index-sorted and disjoint, so after
        // ordering them by start index the Merge-Path recombination is
        // bit-identical to a stable sequential merge whatever order (and
        // on whichever worker) the units ran.
        partials.sort_unstable_by_key(|&(start, _)| start);
        let merge_started = Instant::now();
        let runs: Vec<&[EvalRecord]> =
            partials.iter().map(|(_, partial)| partial.records.as_slice()).collect();
        let records = merge_runs(&runs, self.shards.len());
        crate::planner::obs_merge_ms().record(merge_started.elapsed().as_secs_f64() * 1e3);

        let mut stats = SweepStats {
            scenarios: 0,
            valid: 0,
            cache_hits: 0,
            cache_misses: 0,
            warm_entries,
            threads: threads_by_home.values().sum(),
            coalesced: false,
            elapsed_seconds: 0.0,
        };
        for (_, partial) in &partials {
            stats.scenarios += partial.stats.scenarios;
            stats.valid += partial.stats.valid;
            stats.cache_hits += partial.stats.cache_hits;
            stats.cache_misses += partial.stats.cache_misses;
        }
        stats.elapsed_seconds = started.elapsed().as_secs_f64();
        debug_assert_eq!(stats.scenarios, range.len());
        Ok(SweepResult { records, stats })
    }

    /// Open a **pull-based** streaming sweep over `range` of `space`:
    /// validates and admits the query once, prepares (or reuses) the
    /// [`SweepHandle`], and returns a [`SweepTicket`] whose windows are
    /// computed only when [`SweepService::next_window`] pulls them — nothing
    /// is evaluated or buffered for a consumer that has stopped draining.
    /// `chunk` is the response chunk size (`0` = [`DEFAULT_CHUNK`]); windows
    /// are chunk-aligned so streamed chunk boundaries are identical to a
    /// one-shot sweep's.
    pub fn begin_sweep(
        &self,
        space: &ScenarioSpace,
        range: Range<usize>,
        chunk: usize,
    ) -> Result<SweepTicket, ServeError> {
        self.begin_sweep_handle(self.prepared(space), range, chunk)
    }

    /// [`SweepService::begin_sweep`] over an already-prepared handle.
    pub fn begin_sweep_handle(
        &self,
        handle: Arc<SweepHandle<'static>>,
        range: Range<usize>,
        chunk: usize,
    ) -> Result<SweepTicket, ServeError> {
        check_range(&range, handle.len())?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.admit(&handle, &range)?;
        // Size each participating shard's cache for its whole share of the
        // sweep up front — exactly what a one-shot `Engine::sweep` does —
        // so the window-by-window inserts never rehash (and transiently
        // double) a table mid-stream.
        if self.sweep_config.use_cache {
            let placement = self.placement(&handle);
            for (&home, &scenarios) in &Self::homed_scenarios(&placement, &range) {
                self.shards[home].engine.cache().reserve(scenarios);
            }
        }
        let chunk = if chunk == 0 { DEFAULT_CHUNK } else { chunk };
        // Pull windows of roughly DEFAULT_CHUNK scenarios, rounded to a
        // whole number of response chunks so boundaries stay aligned.
        let window = (DEFAULT_CHUNK / chunk).max(1) * chunk;
        let cursor = handle.cursor(range, window);
        Ok(SweepTicket {
            handle,
            cursor,
            chunk,
            stats: SweepStats {
                scenarios: 0,
                valid: 0,
                cache_hits: 0,
                cache_misses: 0,
                warm_entries: 0,
                threads: 0,
                coalesced: false,
                elapsed_seconds: 0.0,
            },
            started: Instant::now(),
            first_window: true,
        })
    }

    /// Pull the next window of an open streaming sweep: evaluates it across
    /// the shards and returns its records (global indices, index order), or
    /// `None` once the ticket's range is exhausted — read the final merged
    /// statistics from [`SweepTicket::stats`] then.
    pub fn next_window(
        &self,
        ticket: &mut SweepTicket,
    ) -> Result<Option<Vec<EvalRecord>>, ServeError> {
        let Some(window) = ticket.cursor.next_window() else {
            return Ok(None);
        };
        let profiler = Profiler::global();
        let _span = profiler.is_enabled().then(|| {
            profiler.span(
                &format!("window {}..{}", window.start, window.end),
                "serve",
                thread_lane(),
            )
        });
        let result = self.sweep_prepared(&ticket.handle, window)?;
        ticket.stats.scenarios += result.stats.scenarios;
        ticket.stats.valid += result.stats.valid;
        ticket.stats.cache_hits += result.stats.cache_hits;
        ticket.stats.cache_misses += result.stats.cache_misses;
        // Later windows see the entries the earlier ones just inserted; only
        // the first window's count is the sweep's true warm-start budget.
        if ticket.first_window {
            ticket.stats.warm_entries = result.stats.warm_entries;
            ticket.first_window = false;
        }
        ticket.stats.threads = ticket.stats.threads.max(result.stats.threads);
        ticket.stats.coalesced |= result.stats.coalesced;
        ticket.stats.elapsed_seconds = ticket.started.elapsed().as_secs_f64();
        Ok(Some(result.records))
    }

    /// The `k` highest-speedup records of a full sweep of `space`.
    pub fn top_k(&self, space: &ScenarioSpace, k: usize) -> Result<Vec<EvalRecord>, ServeError> {
        Ok(top_k(&self.sweep(space, None)?.records, k))
    }

    /// The Pareto frontier (speedup vs `cost`) of a full sweep of `space`.
    pub fn pareto(
        &self,
        space: &ScenarioSpace,
        cost: CostAxis,
    ) -> Result<Vec<EvalRecord>, ServeError> {
        Ok(pareto_frontier(&self.sweep(space, None)?.records, cost))
    }

    /// The engine-reproduced curve family of one paper figure.
    pub fn curves(&self, figure: Figure) -> Result<Vec<Curve>, ServeError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        figure_curves(figure).map_err(|e| err(format!("figure {figure} failed: {e}")))
    }

    /// Aggregate service statistics.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            backend: self.backend.name().to_string(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(index, shard)| ShardStats {
                    shard: index,
                    threads: shard.engine.threads(),
                    cache: shard.engine.cache().stats(),
                })
                .collect(),
            queries: self.queries.load(Ordering::Relaxed),
            prepared_spaces: self.prepared.lock().handles.len(),
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            metrics: mp_obs::registry().snapshot().to_json(),
        }
    }

    /// The calibration catalogue in wire form.
    pub fn catalogue_entries(&self) -> Vec<CatalogueEntry> {
        self.registry
            .entries()
            .iter()
            .map(|calibration| CatalogueEntry {
                id: CatalogueRegistry::format_id(calibration.fingerprint()),
                name: calibration.app_params().name.clone(),
                growth: calibration.growth().label(),
                f: calibration.app_params().f,
                fit_rmse: calibration.fit_rmse(),
            })
            .collect()
    }

    /// Answer one protocol request, emitting responses through `emit` as
    /// they are produced: a sweep's chunks are built (records → wire form)
    /// and emitted **one at a time**, so beyond the sweep result itself at
    /// most one chunk's wire copy is ever alive — the server writes and
    /// flushes each line before the next is built. An `Err` from `emit`
    /// (a dead connection) aborts the remaining chunks.
    /// [`Request::Shutdown`] is acknowledged here but acted on by the
    /// server loop.
    pub fn handle_streaming(
        &self,
        request: &Request,
        emit: &mut dyn FnMut(Response) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        obs_requests(request).inc();
        match request {
            Request::Ping => emit(Response::Pong { version: PROTOCOL_VERSION.to_string() }),
            Request::Stats => emit(Response::Stats(self.stats())),
            Request::Metrics => {
                let snapshot = mp_obs::registry().snapshot();
                emit(Response::Metrics {
                    json: snapshot.to_json(),
                    prometheus: snapshot.to_prometheus(),
                })
            }
            Request::Catalogue => emit(Response::Catalogue { entries: self.catalogue_entries() }),
            Request::Shutdown => emit(Response::ShuttingDown),
            Request::Sweep { space, start, end, chunk } => {
                let handle = match self.resolve_handle(space) {
                    Ok(handle) => handle,
                    Err(e) => return emit(e.into_response()),
                };
                let mut ticket = match self.begin_sweep_handle(handle, *start..*end, *chunk) {
                    Ok(ticket) => ticket,
                    Err(e) => return emit(e.into_response()),
                };
                loop {
                    match self.next_window(&mut ticket) {
                        Ok(Some(records)) => {
                            for slice in records.chunks(ticket.chunk()) {
                                emit(Response::SweepChunk {
                                    start: slice[0].index,
                                    records: to_wire(slice),
                                })?;
                            }
                        }
                        Ok(None) => return emit(Response::SweepDone { stats: ticket.stats() }),
                        Err(e) => return emit(e.into_response()),
                    }
                }
            }
            Request::TopK { space, k } => {
                self.record_query(space, |records| top_k(records, *k), emit)
            }
            Request::Pareto { space, cost } => {
                self.record_query(space, |records| pareto_frontier(records, *cost), emit)
            }
            Request::Curve { figure } => match self.curves(*figure) {
                Ok(curves) => emit(Response::Curves { curves }),
                Err(e) => emit(e.into_response()),
            },
            Request::Prepare { space } => match self.prepare_spec(space) {
                Ok((id, scenarios)) => emit(Response::Prepared { id, scenarios }),
                Err(e) => emit(e.into_response()),
            },
            Request::JobSubmit { space, start, end, chunk, checkpoint_every } => {
                self.job_verb(emit, |jobs| {
                    let space = self.resolve_space(space)?;
                    jobs.submit(space, *start..*end, *chunk, *checkpoint_every)
                })
            }
            Request::JobStatus { id } => self.job_verb(emit, |jobs| jobs.status(id)),
            Request::JobCancel { id } => self.job_verb(emit, |jobs| jobs.cancel(id)),
            Request::JobResume { id } => self.job_verb(emit, |jobs| jobs.resume(id)),
        }
    }

    /// Shared dispatch of the four job verbs: resolve the attached manager,
    /// run the verb, answer with the resulting snapshot or error.
    fn job_verb(
        &self,
        emit: &mut dyn FnMut(Response) -> std::io::Result<()>,
        verb: impl FnOnce(&crate::jobs::JobManager) -> Result<crate::protocol::JobSnapshot, ServeError>,
    ) -> std::io::Result<()> {
        let Some(jobs) = self.jobs() else {
            return emit(
                err("durable jobs are not enabled on this server (start it with a jobs manager)")
                    .into_response(),
            );
        };
        match verb(&jobs) {
            Ok(snapshot) => emit(Response::Job(snapshot)),
            Err(e) => emit(e.into_response()),
        }
    }

    /// [`SweepService::handle_streaming`] with the responses collected into
    /// a vector — the convenient form for in-process use and tests.
    pub fn handle(&self, request: &Request) -> Vec<Response> {
        let mut responses = Vec::new();
        self.handle_streaming(request, &mut |response| {
            responses.push(response);
            Ok(())
        })
        .expect("collecting emitter never fails");
        responses
    }

    /// Shared resolve → sweep → analyse path of the record-returning queries.
    fn record_query(
        &self,
        spec: &SpaceSpec,
        analyse: impl FnOnce(&[EvalRecord]) -> Vec<EvalRecord>,
        emit: &mut dyn FnMut(Response) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let handle = match self.resolve_handle(spec) {
            Ok(handle) => handle,
            Err(e) => return emit(e.into_response()),
        };
        match self.sweep_handle(&handle, None) {
            Ok(result) => emit(Response::Records { records: to_wire(&analyse(&result.records)) }),
            Err(e) => emit(e.into_response()),
        }
    }
}

/// Validate a sweep range against a space length.
fn check_range(range: &Range<usize>, n: usize) -> Result<(), ServeError> {
    if range.start > range.end || range.end > n {
        return Err(err(format!(
            "sweep range {}..{} exceeds the {n}-scenario space",
            range.start, range.end
        )));
    }
    Ok(())
}

/// An open, admitted streaming sweep: the prepared handle plus a
/// [`RangeCursor`] over the not-yet-pulled remainder and the statistics
/// accumulated so far. Holding a ticket costs one `Arc` on the prepared
/// snapshot — no records are computed or buffered until
/// [`SweepService::next_window`] pulls them, which is what lets the reactor
/// park a sweep for a slow connection and re-arm it from `EPOLLOUT`.
#[derive(Debug)]
pub struct SweepTicket {
    handle: Arc<SweepHandle<'static>>,
    cursor: RangeCursor,
    chunk: usize,
    stats: SweepStats,
    started: Instant,
    first_window: bool,
}

impl SweepTicket {
    /// The response chunk size the query asked for (normalised, never 0).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Scenarios not yet pulled.
    pub fn remaining(&self) -> usize {
        self.cursor.remaining()
    }

    /// Whether every window has been pulled.
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
    }

    /// Statistics accumulated over the windows pulled so far (the final
    /// sweep statistics once [`SweepTicket::is_done`]).
    pub fn stats(&self) -> SweepStats {
        self.stats
    }
}

/// Content fingerprint of a space: FNV over its canonical JSON form
/// (delegates to [`mp_dse::engine::space_fingerprint`], the same hash the
/// planner keys its coalescing table on).
fn space_fingerprint(space: &ScenarioSpace) -> u64 {
    mp_dse::engine::space_fingerprint(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_dse::backend::AnalyticBackend;
    use mp_model::params::AppParams;

    fn space() -> ScenarioSpace {
        ScenarioSpace::new()
            .with_apps(AppParams::table2_all())
            .clear_designs()
            .add_symmetric_grid((0..40).map(|i| 1.0 + i as f64 * 3.0))
            .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
    }

    fn service(shards: usize) -> SweepService {
        SweepService::new(
            Arc::new(AnalyticBackend),
            &ServiceConfig { shards, threads_per_shard: 2, ..ServiceConfig::default() },
        )
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_a_direct_engine_sweep() {
        let space = space();
        let direct = Engine::new(2).sweep(&space, &AnalyticBackend, &SweepConfig::default());
        for shards in [1usize, 3] {
            let service = service(shards);
            let served = service.sweep(&space, None).unwrap();
            assert_eq!(served.records.len(), direct.records.len());
            for (a, b) in served.records.iter().zip(direct.records.iter()) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            }
            assert_eq!(served.stats.scenarios, space.len());
        }
    }

    #[test]
    fn one_scenario_spaces_sweep_cleanly_at_any_shard_count() {
        // The old `band_slices` silently yielded nothing for trailing
        // shards when n < shards; a 1-scenario space must still evaluate
        // its one scenario, warm one cache, and answer repeats from it.
        let space = ScenarioSpace::new().clear_designs().add_symmetric_grid([2.0]);
        assert_eq!(space.len(), 1);
        let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
        for shards in [1usize, 4, 8] {
            let service = service(shards);
            let cold = service.sweep(&space, None).unwrap();
            assert_eq!(cold.records.len(), 1, "{shards} shards");
            assert_eq!(cold.records[0].speedup.to_bits(), direct.records[0].speedup.to_bits());
            assert_eq!(cold.stats.scenarios, 1);
            let warm = service.sweep(&space, None).unwrap();
            assert_eq!(warm.stats.cache_hits, 1, "{shards} shards answer repeats warm");
            assert_eq!(warm.stats.cache_misses, 0);
            assert_eq!(warm.records[0].speedup.to_bits(), direct.records[0].speedup.to_bits());
            // Streaming path, same degenerate shape.
            let mut ticket = service.begin_sweep(&space, 0..1, 0).unwrap();
            let window = service.next_window(&mut ticket).unwrap().expect("one window");
            assert_eq!(window.len(), 1);
            assert!(service.next_window(&mut ticket).unwrap().is_none());
        }
    }

    #[test]
    fn range_queries_intersect_the_static_shard_bands() {
        let space = space();
        let service = service(4);
        let full = service.sweep(&space, None).unwrap();
        let n = space.len();
        let windows = [0..n / 5, n / 5..n - 3, n - 3..n, 0..0];
        for window in windows {
            let part = service.sweep(&space, Some(window.clone())).unwrap();
            assert_eq!(part.records.len(), window.len());
            for (record, truth) in part.records.iter().zip(&full.records[window]) {
                assert_eq!(record.index, truth.index);
                assert_eq!(record.speedup.to_bits(), truth.speedup.to_bits());
            }
        }
        assert!(service.sweep(&space, Some(0..n + 1)).is_err());
    }

    #[test]
    fn prepared_handle_cache_is_lru_bounded() {
        let service = service(1);
        // One more distinct space than the cap: the oldest must be evicted.
        for designs in 1..=(MAX_PREPARED + 1) {
            let space = ScenarioSpace::new()
                .clear_designs()
                .add_symmetric_grid((0..designs).map(|i| 1.0 + i as f64));
            service.sweep(&space, None).unwrap();
        }
        assert_eq!(service.stats().prepared_spaces, MAX_PREPARED);
        // Re-querying a recent space is still a handle hit (count unchanged);
        // the evicted first space gets re-prepared without growing past the
        // cap.
        let recent = ScenarioSpace::new()
            .clear_designs()
            .add_symmetric_grid((0..MAX_PREPARED + 1).map(|i| 1.0 + i as f64));
        service.sweep(&recent, None).unwrap();
        assert_eq!(service.stats().prepared_spaces, MAX_PREPARED);
        let evicted = ScenarioSpace::new().clear_designs().add_symmetric_grid([1.0]);
        service.sweep(&evicted, None).unwrap();
        assert_eq!(service.stats().prepared_spaces, MAX_PREPARED);
    }

    #[test]
    fn warm_repeat_queries_hit_the_shard_caches() {
        let space = space();
        let service = service(4);
        let first = service.sweep(&space, None).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        let second = service.sweep(&space, None).unwrap();
        assert_eq!(second.stats.cache_hits, space.len() as u64);
        assert_eq!(second.stats.cache_misses, 0);
        assert!(second.stats.warm_entries > 0);
        let totals = service.stats().cache_totals();
        assert_eq!(totals.entries, space.len());
        assert!(totals.hits >= space.len() as u64);
        // The prepared handle was reused, not rebuilt.
        assert_eq!(service.stats().prepared_spaces, 1);
        assert_eq!(service.stats().queries, 2);
    }

    #[test]
    fn analysis_queries_match_direct_analysis() {
        let space = space();
        let service = service(2);
        let direct = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());
        let top = service.top_k(&space, 5).unwrap();
        assert_eq!(top, top_k(&direct.records, 5));
        let frontier = service.pareto(&space, CostAxis::Cores).unwrap();
        assert_eq!(frontier, pareto_frontier(&direct.records, CostAxis::Cores));
    }

    #[test]
    fn pulled_windows_are_bit_identical_to_a_blocking_sweep() {
        let space = space();
        let service = service(3);
        let blocking = service.sweep(&space, None).unwrap();
        // A ragged sub-range and a chunk size that does not divide it.
        let range = 7..space.len() - 5;
        let mut ticket = service.begin_sweep(&space, range.clone(), 100).unwrap();
        assert_eq!(ticket.chunk(), 100);
        assert_eq!(ticket.remaining(), range.len());
        let mut pulled = Vec::new();
        while let Some(records) = service.next_window(&mut ticket).unwrap() {
            assert!(records.len() <= 8100, "windows pull at most ~DEFAULT_CHUNK scenarios");
            if !ticket.is_done() {
                assert_eq!(records.len() % 100, 0, "non-final windows are chunk-aligned");
            }
            pulled.extend(records);
        }
        assert!(ticket.is_done());
        let stats = ticket.stats();
        assert_eq!(stats.scenarios, range.len());
        assert_eq!(pulled.len(), range.len());
        for (record, truth) in pulled.iter().zip(&blocking.records[range]) {
            assert_eq!(record.index, truth.index);
            assert_eq!(record.speedup.to_bits(), truth.speedup.to_bits());
        }
        // The ticket pulled everything warm (the blocking sweep filled the
        // caches), so hits account for every scenario.
        assert_eq!(stats.cache_hits, stats.scenarios as u64);

        // Range validation happens at begin time.
        let bad = service.begin_sweep(&space, 0..space.len() + 1, 0).unwrap_err();
        assert!(!bad.is_busy());
    }

    #[test]
    fn protocol_dispatch_streams_chunks_and_reports_errors() {
        let space = space();
        let service = service(2);
        let responses = service.handle(&Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk: 64,
        });
        let terminal = responses.last().unwrap();
        assert!(matches!(terminal, Response::SweepDone { .. }));
        let chunks = responses.len() - 1;
        assert_eq!(chunks, space.len().div_ceil(64));
        assert!(responses[..chunks].iter().all(|r| !r.is_terminal()));

        let bad = service.handle(&Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 5,
            end: 1,
            chunk: 0,
        });
        assert!(matches!(bad.as_slice(), [Response::Error { .. }]));

        let unknown = service.handle(&Request::Sweep {
            space: SpaceSpec::Catalogue { ids: vec!["0123456789abcdef".into()], space },
            start: 0,
            end: 1,
            chunk: 0,
        });
        assert!(matches!(unknown.as_slice(), [Response::Error { .. }]));
    }
}
