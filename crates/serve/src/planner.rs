//! The multi-query planner: in-flight coalescing and cost-based admission.
//!
//! Sits between the executor pool and the shard engines. Three concerns:
//!
//! * **Coalescing** (`Coalescer`) — a table of in-flight evaluations
//!   keyed by `(prepared-space fingerprint, normalized range)`. The first
//!   query to arrive for a key becomes the **leader** and evaluates as
//!   usual; queries that arrive while it is in flight become **followers**,
//!   block until the leader publishes, and receive the shared result — one
//!   evaluation, fanned back out per subscriber. Pull-based streaming
//!   sweeps request deterministic chunk-aligned windows, so overlapping
//!   full sweeps coalesce window by window without any range arithmetic.
//! * **Cost model** ([`CostModel`]) — estimates a query's evaluation cost
//!   in milliseconds from the per-scenario cost observed by the engine's
//!   always-on `dse_batch_ms` histogram and `dse_scenarios_evaluated`
//!   counter (per-backend by construction: a service owns one backend, and
//!   the calibration is read at admission time so it tracks the live
//!   warm/cold mix). A seeded default covers the pre-calibration window.
//! * **Metrics** — the planner's own always-registered series:
//!   `planner_coalesced_requests`, `planner_shared_scenarios`,
//!   `planner_cost_rejections` counters and the `planner_merge_ms`
//!   histogram timing the Merge-Path band recombination.
//!
//! **Why followers can always block.** A follower waits on the leader of
//! the *same window*, and leadership is taken inside the evaluation path —
//! the leader is by definition already running on an executor (or a caller
//! thread) and proceeds through the shard workers, which never coalesce.
//! There is no waits-for cycle: followers wait on a leader, leaders wait
//! only on shard workers.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use mp_obs::hist::Histogram;
use mp_obs::metrics::Counter;

use mp_dse::engine::{SweepHandle, SweepResult};

use crate::service::ServeError;

/// Requests answered from another request's in-flight evaluation (follower
/// side of a coalesced window).
pub(crate) fn obs_coalesced_requests() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("planner_coalesced_requests"))
}

/// Scenario results fanned out to followers without re-evaluation (the
/// evaluations saved by coalescing).
pub(crate) fn obs_shared_scenarios() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("planner_shared_scenarios"))
}

/// Queries rejected by the estimated-cost admission gate (a subset of
/// `busy_rejections`).
pub(crate) fn obs_cost_rejections() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("planner_cost_rejections"))
}

/// Time spent in the Merge-Path recombination of per-shard band results,
/// milliseconds per banded sweep.
pub(crate) fn obs_merge_ms() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::histogram_ms("planner_merge_ms"))
}

/// The engine-side calibration series the cost model reads (the same global
/// series `mp_dse`'s engine records into, resolved by name).
fn obs_dse_scenarios() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("dse_scenarios_evaluated"))
}

fn obs_dse_batch_ms() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::histogram_ms("dse_batch_ms"))
}

/// Seeded per-scenario cost before enough engine data exists to calibrate
/// (2 µs — the right order for the analytic backend on one core).
const DEFAULT_COST_PER_SCENARIO_MS: f64 = 0.002;

/// Scenarios the engine must have processed before the live calibration is
/// trusted over the seed — below this, one pathological batch (a test
/// backend blocking inside an evaluation, say) would dominate the mean.
const MIN_CALIBRATION_SCENARIOS: u64 = 4096;

/// Calibration sanity clamp, ms per scenario. Guards the admission gate
/// against a polluted global histogram; a real backend above the ceiling is
/// indistinguishable from one at it as far as "this query is enormous"
/// goes.
const COST_CLAMP_MS: (f64, f64) = (1e-6, 100.0);

/// Scenarios a calibration window must span before it closes and folds into
/// the decayed estimate. One full-grid sweep (~200k scenarios) closes ~50
/// windows, so the estimate re-converges well within one load pass after a
/// regime change.
const CALIBRATION_WINDOW_SCENARIOS: u64 = 4096;

/// EWMA weight of the newest closed window. At ½, a stale regime's
/// contribution halves per window — under 1% of the estimate after seven
/// windows (~29k scenarios) of the new regime.
const CALIBRATION_EWMA_ALPHA: f64 = 0.5;

/// Rolling calibration state: the engine-counter totals at the last window
/// close, plus the decayed per-scenario estimate.
#[derive(Debug, Default)]
struct CalibrationWindow {
    /// `dse_scenarios_evaluated` at the last window close.
    last_scenarios: u64,
    /// `dse_batch_ms` histogram sum at the last window close.
    last_sum_ms: f64,
    /// Exponentially decayed per-scenario cost over closed windows, ms.
    /// `None` until the first window closes (the seeded default applies).
    ewma_ms: Option<f64>,
}

impl CalibrationWindow {
    /// Fold the current engine totals in, closing a window if enough new
    /// scenarios have arrived, and return the per-scenario estimate, ms.
    ///
    /// The first window to close spans the counters' whole history — the
    /// lifetime mean, exactly the pre-windowed behaviour — and every later
    /// window is a bounded delta, so a throughput regime change (a kernel
    /// getting 2× faster, a cache warming up) decays out of the estimate
    /// geometrically instead of being averaged against all of history
    /// forever.
    fn fold(&mut self, total_scenarios: u64, total_sum_ms: f64) -> f64 {
        let new_scenarios = total_scenarios.saturating_sub(self.last_scenarios);
        let window_ready = match self.ewma_ms {
            // Trust no window until enough data exists for the first one —
            // below this, one pathological batch would dominate.
            None => total_scenarios >= MIN_CALIBRATION_SCENARIOS,
            Some(_) => new_scenarios >= CALIBRATION_WINDOW_SCENARIOS,
        };
        if window_ready && new_scenarios > 0 {
            let window_ms = ((total_sum_ms - self.last_sum_ms).max(0.0) / new_scenarios as f64)
                .clamp(COST_CLAMP_MS.0, COST_CLAMP_MS.1);
            self.ewma_ms = Some(match self.ewma_ms {
                None => window_ms,
                Some(prev) => prev + CALIBRATION_EWMA_ALPHA * (window_ms - prev),
            });
            self.last_scenarios = total_scenarios;
            self.last_sum_ms = total_sum_ms;
        }
        self.ewma_ms.unwrap_or(DEFAULT_COST_PER_SCENARIO_MS)
    }
}

/// The planner's per-backend evaluation cost model. See the module docs.
#[derive(Debug)]
pub struct CostModel {
    /// Fixed per-scenario cost override (tests and benches); `None` reads
    /// the live engine calibration.
    override_ms: Option<f64>,
    /// Windowed-delta calibration state (see [`CalibrationWindow`]).
    window: Mutex<CalibrationWindow>,
}

impl CostModel {
    /// A model calibrating from the engine's global metrics, or pinned to
    /// `override_ms` when given.
    pub fn new(override_ms: Option<f64>) -> CostModel {
        CostModel { override_ms, window: Mutex::new(CalibrationWindow::default()) }
    }

    /// The current estimated cost of evaluating one scenario, milliseconds:
    /// an exponentially decayed mean over bounded windows of the engine's
    /// batch time and scenario counters, seeded with
    /// `DEFAULT_COST_PER_SCENARIO_MS` until enough data exists. This is a
    /// deliberately *mean* cost across the live warm/cold mix — admission
    /// budgets queued work, and queued work arrives in the same mix — but
    /// windowing keeps it the mean of the *recent* mix: samples recorded
    /// before a throughput regime change stop mis-sizing work within one
    /// load pass.
    pub fn cost_per_scenario_ms(&self) -> f64 {
        if let Some(ms) = self.override_ms {
            return ms;
        }
        let scenarios = obs_dse_scenarios().value();
        let sum_ms = obs_dse_batch_ms().snapshot().sum;
        self.window.lock().expect("planner locks are never poisoned").fold(scenarios, sum_ms)
    }

    /// Estimated evaluation cost of a `scenarios`-sized query, milliseconds.
    pub fn estimate_ms(&self, scenarios: usize) -> f64 {
        scenarios as f64 * self.cost_per_scenario_ms()
    }
}

/// A coalescing-table key: which prepared space, which exact index range.
/// Streaming windows are chunk-aligned and deterministic, so overlapping
/// sweeps of the same space produce *equal* keys window by window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    /// Content fingerprint of the prepared space.
    pub fingerprint: u64,
    /// Window start (inclusive).
    pub start: usize,
    /// Window end (exclusive).
    pub end: usize,
}

/// One in-flight shared evaluation: the slot the leader publishes into and
/// followers wait on.
pub(crate) struct InflightSweep {
    done: Mutex<Option<Result<Arc<SweepResult>, ServeError>>>,
    ready: Condvar,
}

impl InflightSweep {
    fn new() -> InflightSweep {
        InflightSweep { done: Mutex::new(None), ready: Condvar::new() }
    }

    /// Block until the leader publishes, then return the shared result.
    pub(crate) fn wait(&self) -> Result<Arc<SweepResult>, ServeError> {
        let mut done = self.done.lock().expect("planner locks are never poisoned");
        while done.is_none() {
            done = self.ready.wait(done).expect("planner locks are never poisoned");
        }
        done.as_ref().expect("checked above").clone()
    }
}

/// What [`Coalescer::join`] assigned the calling query.
pub(crate) enum Role {
    /// First in: evaluate, then [`Coalescer::publish`].
    Leader,
    /// An equal-keyed evaluation is in flight: wait on it.
    Follower(Arc<InflightSweep>),
}

/// The in-flight coalescing table. Entries live exactly as long as their
/// leader's evaluation: inserted at [`Coalescer::join`], removed at
/// [`Coalescer::publish`] — a completed result is never served to a query
/// that arrives later (coalescing shares *in-flight* work; it is not a
/// result cache, and subscriber-visible semantics stay identical to an
/// uncoalesced run).
#[derive(Default)]
pub(crate) struct Coalescer {
    inflight: Mutex<HashMap<PlanKey, Arc<InflightSweep>>>,
}

impl Coalescer {
    /// Join the in-flight evaluation for `key`, becoming its leader if none
    /// is running.
    pub(crate) fn join(&self, key: PlanKey) -> Role {
        let mut inflight = self.inflight.lock().expect("planner locks are never poisoned");
        match inflight.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                Role::Follower(Arc::clone(entry.get()))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Arc::new(InflightSweep::new()));
                Role::Leader
            }
        }
    }

    /// Publish the leader's result for `key` and wake every follower. The
    /// entry is removed from the table *before* the result lands, so
    /// queries arriving from here on start a fresh evaluation.
    pub(crate) fn publish(&self, key: &PlanKey, result: &Result<Arc<SweepResult>, ServeError>) {
        let entry = self
            .inflight
            .lock()
            .expect("planner locks are never poisoned")
            .remove(key)
            .expect("only the leader publishes, exactly once");
        *entry.done.lock().expect("planner locks are never poisoned") = Some(result.clone());
        entry.ready.notify_all();
    }
}

/// A build-sharing table for [`SpaceTables`] construction: same leader /
/// follower protocol as [`Coalescer`], over prepared-handle builds. Two
/// clients racing a query over the same *new* space used to both pay the
/// columnar precomputation (the loser's copy was dropped); with the build
/// table the first becomes the leader and the rest wait for its handle.
///
/// [`SpaceTables`]: mp_dse::tables::SpaceTables
#[derive(Default)]
pub(crate) struct BuildTable {
    building: Mutex<HashMap<u64, Arc<InflightBuild>>>,
}

/// One in-flight prepared-handle build.
pub(crate) struct InflightBuild {
    done: Mutex<Option<Arc<SweepHandle<'static>>>>,
    ready: Condvar,
}

impl InflightBuild {
    /// Block until the building leader publishes its handle.
    pub(crate) fn wait(&self) -> Arc<SweepHandle<'static>> {
        let mut done = self.done.lock().expect("planner locks are never poisoned");
        while done.is_none() {
            done = self.ready.wait(done).expect("planner locks are never poisoned");
        }
        Arc::clone(done.as_ref().expect("checked above"))
    }
}

/// What [`BuildTable::join`] assigned the calling builder.
pub(crate) enum BuildRole {
    /// First in: build the tables, then [`BuildTable::publish`].
    Leader,
    /// The same fingerprint is being built: wait for the leader's handle.
    Follower(Arc<InflightBuild>),
}

impl BuildTable {
    /// Join the in-flight build for `fingerprint`, becoming the leader if
    /// none is running.
    pub(crate) fn join(&self, fingerprint: u64) -> BuildRole {
        let mut building = self.building.lock().expect("planner locks are never poisoned");
        match building.entry(fingerprint) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                BuildRole::Follower(Arc::clone(entry.get()))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Arc::new(InflightBuild {
                    done: Mutex::new(None),
                    ready: Condvar::new(),
                }));
                BuildRole::Leader
            }
        }
    }

    /// Publish the built handle for `fingerprint` and wake the waiters.
    pub(crate) fn publish(&self, fingerprint: u64, handle: &Arc<SweepHandle<'static>>) {
        let entry = self
            .building
            .lock()
            .expect("planner locks are never poisoned")
            .remove(&fingerprint)
            .expect("only the build leader publishes, exactly once");
        *entry.done.lock().expect("planner locks are never poisoned") = Some(Arc::clone(handle));
        entry.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_override_pins_the_estimate() {
        let model = CostModel::new(Some(0.5));
        assert_eq!(model.cost_per_scenario_ms(), 0.5);
        assert_eq!(model.estimate_ms(100), 50.0);
    }

    #[test]
    fn calibrated_cost_stays_within_the_clamp() {
        let model = CostModel::new(None);
        let ms = model.cost_per_scenario_ms();
        assert!(
            (ms >= COST_CLAMP_MS.0 && ms <= COST_CLAMP_MS.1) || ms == DEFAULT_COST_PER_SCENARIO_MS,
            "cost {ms} outside clamp"
        );
    }

    #[test]
    fn calibration_seeds_then_reports_the_first_window_mean() {
        let mut window = CalibrationWindow::default();
        // Below the trust threshold: the seeded default, untouched state.
        assert_eq!(window.fold(100, 100.0), DEFAULT_COST_PER_SCENARIO_MS);
        assert_eq!(window.last_scenarios, 0);
        // First window spans all history: the lifetime mean (1 ms/scenario).
        assert_eq!(window.fold(8192, 8192.0), 1.0);
        // A sub-window delta re-reports the standing estimate unchanged.
        assert_eq!(window.fold(8192 + 100, 8192.0 + 100.0), 1.0);
        assert_eq!(window.last_scenarios, 8192);
    }

    #[test]
    fn calibration_converges_within_one_load_pass_after_a_regime_change() {
        let mut window = CalibrationWindow::default();
        // A long pre-change history at 1 ms/scenario…
        let mut scenarios = 1_000_000u64;
        let mut sum_ms = 1_000_000.0f64;
        assert_eq!(window.fold(scenarios, sum_ms), 1.0);
        // …then the kernels get 10× faster (0.1 ms/scenario). A lifetime
        // mean would still answer ~0.93 after eight windows of new data;
        // the decayed window must converge to within 5% of the new cost on
        // ~32k scenarios — a small fraction of one full-grid load pass.
        for _ in 0..8 {
            scenarios += CALIBRATION_WINDOW_SCENARIOS;
            sum_ms += CALIBRATION_WINDOW_SCENARIOS as f64 * 0.1;
            window.fold(scenarios, sum_ms);
        }
        let ms = window.fold(scenarios, sum_ms);
        assert!((ms - 0.1).abs() / 0.1 < 0.05, "stale estimate {ms} after regime change");
        // Deterministic fixed point: steady-state windows pin the estimate.
        for _ in 0..4 {
            scenarios += CALIBRATION_WINDOW_SCENARIOS;
            sum_ms += CALIBRATION_WINDOW_SCENARIOS as f64 * 0.1;
        }
        let settled = window.fold(scenarios, sum_ms);
        assert!((settled - 0.1).abs() / 0.1 < 0.05, "estimate {settled} drifted");
    }

    #[test]
    fn followers_see_exactly_the_leaders_publication() {
        let coalescer = Coalescer::default();
        let key = PlanKey { fingerprint: 7, start: 0, end: 4 };
        assert!(matches!(coalescer.join(key), Role::Leader));
        let Role::Follower(entry) = coalescer.join(key) else {
            panic!("second join while in flight must follow");
        };
        let published: Result<Arc<SweepResult>, ServeError> = Err(ServeError {
            kind: crate::service::ServeErrorKind::Invalid,
            message: "boom".into(),
            estimated_cost_ms: 0.0,
        });
        let waiter = std::thread::spawn(move || entry.wait());
        coalescer.publish(&key, &published);
        let got = waiter.join().unwrap();
        assert_eq!(got.unwrap_err().message, "boom");
        // The entry is gone: the next join leads a fresh evaluation.
        assert!(matches!(coalescer.join(key), Role::Leader));
    }
}
