//! A small blocking client for the serve protocol, used by the `repro load`
//! generator and the differential tests.

use std::io::{BufRead, BufReader, Write};
use std::ops::Range;

use mp_dse::analysis::CostAxis;
use mp_dse::curves::Figure;
use mp_dse::engine::{EvalRecord, SweepStats};
use mp_dse::scenario::ScenarioSpace;
use mp_model::explore::Curve;

use crate::protocol::{
    decode_line, encode_line, CatalogueEntry, Request, RequestEnvelope, Response, ResponseEnvelope,
    ServiceStats,
};
use crate::server::{Endpoint, Stream};

/// Error produced by a client call: transport failure, protocol violation or
/// a server-reported error.
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError(format!("transport error: {e}"))
    }
}

fn err(message: impl Into<String>) -> ClientError {
    ClientError(message.into())
}

/// A blocking connection to a sweep service.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream, next_id: 1 })
    }

    /// Send one request and collect its responses through the terminal one.
    /// Responses for other ids are a protocol violation (this client keeps
    /// one request in flight at a time).
    pub fn call(&mut self, request: Request) -> Result<Vec<Response>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_line(&RequestEnvelope { id, request });
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut responses = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(err("server closed the connection mid-request"));
            }
            let envelope: ResponseEnvelope = decode_line(line.trim_end()).map_err(err)?;
            if envelope.id != id {
                return Err(err(format!(
                    "response id {} does not match request id {id}",
                    envelope.id
                )));
            }
            let terminal = envelope.response.is_terminal();
            responses.push(envelope.response);
            if terminal {
                return Ok(responses);
            }
        }
    }

    fn single(&mut self, request: Request) -> Result<Response, ClientError> {
        let mut responses = self.call(request)?;
        if responses.len() != 1 {
            return Err(err(format!("expected one response, got {}", responses.len())));
        }
        match responses.pop().expect("length checked") {
            Response::Error { message } => Err(err(format!("server error: {message}"))),
            response => Ok(response),
        }
    }

    /// Liveness probe; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<String, ClientError> {
        match self.single(Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetch service statistics.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.single(Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// List the service's calibration catalogue.
    pub fn catalogue(&mut self) -> Result<Vec<CatalogueEntry>, ClientError> {
        match self.single(Request::Catalogue)? {
            Response::Catalogue { entries } => Ok(entries),
            other => Err(unexpected("Catalogue", &other)),
        }
    }

    /// Sweep `range` of `space` (`None` = the whole space), reassembling the
    /// streamed chunks. Records come back in index order with global indices.
    pub fn sweep(
        &mut self,
        space: &ScenarioSpace,
        range: Option<Range<usize>>,
        chunk: usize,
    ) -> Result<(Vec<EvalRecord>, SweepStats), ClientError> {
        let range = range.unwrap_or(0..space.len());
        let responses = self.call(Request::Sweep {
            space: super::protocol::SpaceSpec::Explicit(space.clone()),
            start: range.start,
            end: range.end,
            chunk,
        })?;
        let mut records: Vec<EvalRecord> = Vec::with_capacity(range.len());
        let mut stats = None;
        for response in responses {
            match response {
                Response::SweepChunk { start, records: wire } => {
                    if records.len() + range.start != start {
                        return Err(err(format!(
                            "out-of-order sweep chunk: expected start {}, got {start}",
                            records.len() + range.start
                        )));
                    }
                    records.extend(wire.into_iter().map(EvalRecord::from));
                }
                Response::SweepDone { stats: s } => stats = Some(s),
                Response::Error { message } => return Err(err(format!("server error: {message}"))),
                other => return Err(unexpected("SweepChunk/SweepDone", &other)),
            }
        }
        let stats = stats.ok_or_else(|| err("sweep ended without a SweepDone"))?;
        if records.len() != range.len() {
            return Err(err(format!(
                "sweep returned {} of {} records",
                records.len(),
                range.len()
            )));
        }
        Ok((records, stats))
    }

    /// The `k` best records of a full sweep of `space`.
    pub fn top_k(
        &mut self,
        space: &ScenarioSpace,
        k: usize,
    ) -> Result<Vec<EvalRecord>, ClientError> {
        let request =
            Request::TopK { space: super::protocol::SpaceSpec::Explicit(space.clone()), k };
        match self.single(request)? {
            Response::Records { records } => Ok(super::protocol::from_wire(&records)),
            other => Err(unexpected("Records", &other)),
        }
    }

    /// The Pareto frontier of a full sweep of `space`.
    pub fn pareto(
        &mut self,
        space: &ScenarioSpace,
        cost: CostAxis,
    ) -> Result<Vec<EvalRecord>, ClientError> {
        let request =
            Request::Pareto { space: super::protocol::SpaceSpec::Explicit(space.clone()), cost };
        match self.single(request)? {
            Response::Records { records } => Ok(super::protocol::from_wire(&records)),
            other => Err(unexpected("Records", &other)),
        }
    }

    /// The curve family of one paper figure.
    pub fn curves(&mut self, figure: Figure) -> Result<Vec<Curve>, ClientError> {
        match self.single(Request::Curve { figure })? {
            Response::Curves { curves } => Ok(curves),
            other => Err(unexpected("Curves", &other)),
        }
    }

    /// Ask the server to stop accepting connections and exit its serve loop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.single(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    let label = match got {
        Response::Pong { .. } => "Pong",
        Response::Stats(_) => "Stats",
        Response::Catalogue { .. } => "Catalogue",
        Response::ShuttingDown => "ShuttingDown",
        Response::SweepChunk { .. } => "SweepChunk",
        Response::SweepDone { .. } => "SweepDone",
        Response::Records { .. } => "Records",
        Response::Curves { .. } => "Curves",
        Response::Error { .. } => "Error",
    };
    err(format!("expected {wanted} response, got {label}"))
}
