//! A small blocking client for the serve protocol, used by the `repro load`
//! generator and the differential tests.
//!
//! The read path is incremental: responses are reassembled from whatever
//! pieces the socket yields through the same [`LineDecoder`] the server
//! uses, so a line split across reads — or a read containing several
//! pipelined responses — decodes identically. A connection that closes in
//! the middle of a line is a transport error, never a truncated parse.
//!
//! [`Client::call_pipelined`] issues many requests back-to-back on one
//! connection (one write, one flush) and then collects every answer in
//! request order — the client side of the server's pipelined protocol.

use std::io::{Read, Write};
use std::ops::Range;
use std::time::Duration;

use mp_dse::analysis::CostAxis;
use mp_dse::curves::Figure;
use mp_dse::engine::{EvalRecord, SweepStats};
use mp_dse::scenario::ScenarioSpace;
use mp_model::explore::Curve;

use crate::protocol::{
    decode_chunk_line, decode_line, encode_line, CatalogueEntry, JobSnapshot, LineDecoder, Request,
    RequestEnvelope, Response, ResponseEnvelope, ServiceStats,
};
use crate::server::{Endpoint, Stream};

/// Error produced by a client call: transport failure, protocol violation or
/// a server-reported error.
#[derive(Debug)]
pub struct ClientError {
    /// Human-readable reason.
    pub message: String,
    /// Whether the server rejected the request with a retryable
    /// [`Response::Busy`] (admission control) rather than failing it.
    pub busy: bool,
    /// The planner's cost estimate for the rejected query, milliseconds
    /// (`0.0` when the server did not supply one, or the error is not a
    /// busy rejection). Retry loops use it as a floor on their backoff.
    pub estimated_cost_ms: f64,
}

impl ClientError {
    /// Whether the failure is a retryable admission rejection.
    pub fn is_busy(&self) -> bool {
        self.busy
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        err(format!("transport error: {e}"))
    }
}

fn err(message: impl Into<String>) -> ClientError {
    ClientError { message: message.into(), busy: false, estimated_cost_ms: 0.0 }
}

/// A bounded, jittered exponential-backoff schedule for retrying busy
/// rejections — shared by `repro load`'s query loop, the `repro job`
/// commands and the server-side job runner, so every retry path in the
/// stack backs off the same way.
///
/// The delay for attempt `n` (1-based) is `base · 2^(n-1)` capped at
/// `cap`, floored at half the server's `estimated_cost_ms` hint when one
/// was supplied (there is no point re-asking much sooner than the backlog
/// can drain), then jittered ±50% by a deterministic xorshift mix of
/// `(n, salt)` — deterministic so tests reproduce, salted so concurrent
/// retriers do not stampede in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum busy retries after the first attempt; exceeding it
    /// surfaces the busy error to the caller.
    pub retries: usize,
    /// First-retry delay.
    pub base: Duration,
    /// Backoff ceiling (also caps the `estimated_cost_ms` floor).
    pub cap: Duration,
}

impl RetryPolicy {
    /// A policy with millisecond base/cap and the default retry budget.
    pub fn backoff_ms(base_ms: u64, cap_ms: u64) -> RetryPolicy {
        RetryPolicy {
            retries: 200,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
        }
    }

    /// Same schedule, different retry budget.
    pub fn with_retries(mut self, retries: usize) -> RetryPolicy {
        self.retries = retries;
        self
    }

    /// The sleep before retry `attempt` (1-based), see the type docs.
    pub fn delay(&self, attempt: u32, salt: u64, estimated_cost_ms: f64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.cap);
        let floor = Duration::from_secs_f64((estimated_cost_ms.max(0.0) / 1_000.0) * 0.5);
        let nominal = exp.max(floor.min(self.cap));
        // xorshift64* of (attempt, salt) → uniform jitter factor in
        // [0.5, 1.5). No RNG dependency, fully reproducible.
        let mut x = salt ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let unit = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(nominal.as_secs_f64() * (0.5 + unit))
    }
}

/// What a retried call ended as: the final (non-busy, or budget-exhausted)
/// responses plus how hard the client had to try.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The final call's responses.
    pub responses: Vec<Response>,
    /// Busy rejections absorbed before the final call.
    pub busy_retries: u64,
    /// `true` when the retry budget ran out and `responses` still holds a
    /// busy rejection.
    pub exhausted: bool,
}

/// No cap on response lines: the server is trusted and a sweep chunk line is
/// legitimately hundreds of kilobytes.
const MAX_RESPONSE_LINE: usize = usize::MAX / 2;

/// A blocking connection to a sweep service.
pub struct Client {
    stream: Stream,
    decoder: LineDecoder,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        Ok(Client { stream, decoder: LineDecoder::new(MAX_RESPONSE_LINE), next_id: 1 })
    }

    /// One complete response line, reassembled across however many reads the
    /// transport needs. EOF with a partial line buffered is reported as a
    /// mid-line close, not parsed as a (truncated) response.
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.decoder.next_line() {
                Some(Ok(line)) => return Ok(line),
                Some(Err(message)) => return Err(err(format!("malformed response: {message}"))),
                None => {}
            }
            let read = self.stream.read(&mut buf)?;
            if read == 0 {
                return Err(if self.decoder.buffered() > 0 {
                    err("server closed the connection mid-line")
                } else {
                    err("server closed the connection mid-request")
                });
            }
            self.decoder.push(&buf[..read]);
        }
    }

    /// Read responses for request `id` through its terminal one.
    fn collect(&mut self, id: u64) -> Result<Vec<Response>, ClientError> {
        let mut responses = Vec::new();
        loop {
            let line = self.read_line()?;
            // Sweep chunks dominate the stream; their dedicated parser skips
            // the generic value-tree path and declines (to the fallback) on
            // anything that is not exactly a chunk line.
            let envelope: ResponseEnvelope = match decode_chunk_line(&line) {
                Some(envelope) => envelope,
                None => decode_line(&line).map_err(|e| err(format!("malformed response: {e}")))?,
            };
            if envelope.id != id {
                return Err(err(format!(
                    "response id {} does not match request id {id}",
                    envelope.id
                )));
            }
            let terminal = envelope.response.is_terminal();
            responses.push(envelope.response);
            if terminal {
                return Ok(responses);
            }
        }
    }

    /// Send one request and collect its responses through the terminal one.
    /// Responses for other ids are a protocol violation (this method keeps
    /// one request in flight at a time).
    pub fn call(&mut self, request: Request) -> Result<Vec<Response>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = encode_line(&RequestEnvelope { id, request }).into_bytes();
        line.push(b'\n');
        self.stream.write_all(&line)?;
        self.stream.flush()?;
        self.collect(id)
    }

    /// Pipeline `requests` on this connection: every request line is written
    /// (one buffered write, one flush) **before** any response is read, then
    /// the answers are collected strictly in request order — the server
    /// guarantees that ordering. Returns one response list per request.
    pub fn call_pipelined(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Vec<Response>>, ClientError> {
        let first_id = self.next_id;
        let mut wire = Vec::new();
        for request in requests {
            let id = self.next_id;
            self.next_id += 1;
            wire.extend_from_slice(encode_line(&RequestEnvelope { id, request }).as_bytes());
            wire.push(b'\n');
        }
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        (first_id..self.next_id).map(|id| self.collect(id)).collect()
    }

    /// [`Client::call`], retrying busy rejections per `policy`. Any
    /// non-busy outcome (success or hard error) returns immediately; a
    /// busy streak longer than the policy's budget returns with
    /// [`RetryOutcome::exhausted`] set so the caller decides whether
    /// exhaustion is an error (the request itself is cloned per attempt —
    /// busy rejections are terminal, so each retry is a fresh exchange).
    pub fn call_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
        salt: u64,
    ) -> Result<RetryOutcome, ClientError> {
        let mut busy_retries = 0u64;
        loop {
            let responses = self.call(request.clone())?;
            let cost = responses.iter().find_map(|r| match r {
                Response::Busy { estimated_cost_ms, .. } => Some(*estimated_cost_ms),
                _ => None,
            });
            let Some(cost) = cost else {
                return Ok(RetryOutcome { responses, busy_retries, exhausted: false });
            };
            if busy_retries as usize >= policy.retries {
                return Ok(RetryOutcome { responses, busy_retries, exhausted: true });
            }
            busy_retries += 1;
            std::thread::sleep(policy.delay(busy_retries as u32, salt, cost));
        }
    }

    fn single(&mut self, request: Request) -> Result<Response, ClientError> {
        let mut responses = self.call(request)?;
        if responses.len() != 1 {
            return Err(err(format!("expected one response, got {}", responses.len())));
        }
        check_single(responses.pop().expect("length checked"))
    }

    /// Liveness probe; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<String, ClientError> {
        match self.single(Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetch service statistics.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.single(Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Fetch the server's metrics-registry snapshot: `(json, prometheus)`,
    /// the same snapshot rendered as one JSON object and as Prometheus
    /// exposition text.
    pub fn metrics(&mut self) -> Result<(String, String), ClientError> {
        match self.single(Request::Metrics)? {
            Response::Metrics { json, prometheus } => Ok((json, prometheus)),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// List the service's calibration catalogue.
    pub fn catalogue(&mut self) -> Result<Vec<CatalogueEntry>, ClientError> {
        match self.single(Request::Catalogue)? {
            Response::Catalogue { entries } => Ok(entries),
            other => Err(unexpected("Catalogue", &other)),
        }
    }

    /// Register `space` server-side; returns the prepared id (for
    /// [`SpaceSpec::Prepared`] queries via the `*_prepared` methods) and the
    /// space's scenario count.
    ///
    /// [`SpaceSpec::Prepared`]: crate::protocol::SpaceSpec::Prepared
    pub fn prepare(&mut self, space: &ScenarioSpace) -> Result<(String, usize), ClientError> {
        let request =
            Request::Prepare { space: super::protocol::SpaceSpec::Explicit(space.clone()) };
        match self.single(request)? {
            Response::Prepared { id, scenarios } => Ok((id, scenarios)),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// [`Client::sweep`] against a prepared space id — the request is a few
    /// dozen bytes instead of the space's JSON.
    pub fn sweep_prepared(
        &mut self,
        id: &str,
        range: Range<usize>,
        chunk: usize,
    ) -> Result<(Vec<EvalRecord>, SweepStats), ClientError> {
        let responses = self.call(Request::Sweep {
            space: super::protocol::SpaceSpec::Prepared { id: id.to_string() },
            start: range.start,
            end: range.end,
            chunk,
        })?;
        assemble_sweep(responses, &range)
    }

    /// [`Client::top_k`] against a prepared space id.
    pub fn top_k_prepared(&mut self, id: &str, k: usize) -> Result<Vec<EvalRecord>, ClientError> {
        let request =
            Request::TopK { space: super::protocol::SpaceSpec::Prepared { id: id.to_string() }, k };
        match self.single(request)? {
            Response::Records { records } => Ok(super::protocol::from_wire(&records)),
            other => Err(unexpected("Records", &other)),
        }
    }

    /// [`Client::pareto`] against a prepared space id.
    pub fn pareto_prepared(
        &mut self,
        id: &str,
        cost: CostAxis,
    ) -> Result<Vec<EvalRecord>, ClientError> {
        let request = Request::Pareto {
            space: super::protocol::SpaceSpec::Prepared { id: id.to_string() },
            cost,
        };
        match self.single(request)? {
            Response::Records { records } => Ok(super::protocol::from_wire(&records)),
            other => Err(unexpected("Records", &other)),
        }
    }

    /// Sweep `range` of `space` (`None` = the whole space), reassembling the
    /// streamed chunks. Records come back in index order with global indices.
    pub fn sweep(
        &mut self,
        space: &ScenarioSpace,
        range: Option<Range<usize>>,
        chunk: usize,
    ) -> Result<(Vec<EvalRecord>, SweepStats), ClientError> {
        let range = range.unwrap_or(0..space.len());
        let responses = self.call(Request::Sweep {
            space: super::protocol::SpaceSpec::Explicit(space.clone()),
            start: range.start,
            end: range.end,
            chunk,
        })?;
        assemble_sweep(responses, &range)
    }

    /// The `k` best records of a full sweep of `space`.
    pub fn top_k(
        &mut self,
        space: &ScenarioSpace,
        k: usize,
    ) -> Result<Vec<EvalRecord>, ClientError> {
        let request =
            Request::TopK { space: super::protocol::SpaceSpec::Explicit(space.clone()), k };
        match self.single(request)? {
            Response::Records { records } => Ok(super::protocol::from_wire(&records)),
            other => Err(unexpected("Records", &other)),
        }
    }

    /// The Pareto frontier of a full sweep of `space`.
    pub fn pareto(
        &mut self,
        space: &ScenarioSpace,
        cost: CostAxis,
    ) -> Result<Vec<EvalRecord>, ClientError> {
        let request =
            Request::Pareto { space: super::protocol::SpaceSpec::Explicit(space.clone()), cost };
        match self.single(request)? {
            Response::Records { records } => Ok(super::protocol::from_wire(&records)),
            other => Err(unexpected("Records", &other)),
        }
    }

    /// The curve family of one paper figure.
    pub fn curves(&mut self, figure: Figure) -> Result<Vec<Curve>, ClientError> {
        match self.single(Request::Curve { figure })? {
            Response::Curves { curves } => Ok(curves),
            other => Err(unexpected("Curves", &other)),
        }
    }

    /// Submit a durable sweep job over `range` of `space` (`None` = the
    /// whole space); returns its initial snapshot. `chunk` sizes the
    /// runner windows, `checkpoint_every` the checkpoint cadence in
    /// completed windows (`0` = the server's defaults for both).
    pub fn job_submit(
        &mut self,
        space: &ScenarioSpace,
        range: Option<Range<usize>>,
        chunk: usize,
        checkpoint_every: usize,
    ) -> Result<JobSnapshot, ClientError> {
        let range = range.unwrap_or(0..space.len());
        let request = Request::JobSubmit {
            space: super::protocol::SpaceSpec::Explicit(space.clone()),
            start: range.start,
            end: range.end,
            chunk,
            checkpoint_every,
        };
        match self.single(request)? {
            Response::Job(snapshot) => Ok(snapshot),
            other => Err(unexpected("Job", &other)),
        }
    }

    /// The current snapshot of job `id`.
    pub fn job_status(&mut self, id: &str) -> Result<JobSnapshot, ClientError> {
        match self.single(Request::JobStatus { id: id.to_string() })? {
            Response::Job(snapshot) => Ok(snapshot),
            other => Err(unexpected("Job", &other)),
        }
    }

    /// Request cancellation of job `id` (graceful: the runner checkpoints
    /// before parking it).
    pub fn job_cancel(&mut self, id: &str) -> Result<JobSnapshot, ClientError> {
        match self.single(Request::JobCancel { id: id.to_string() })? {
            Response::Job(snapshot) => Ok(snapshot),
            other => Err(unexpected("Job", &other)),
        }
    }

    /// Re-queue a settled job; only incomplete windows are re-evaluated.
    pub fn job_resume(&mut self, id: &str) -> Result<JobSnapshot, ClientError> {
        match self.single(Request::JobResume { id: id.to_string() })? {
            Response::Job(snapshot) => Ok(snapshot),
            other => Err(unexpected("Job", &other)),
        }
    }

    /// Poll job `id` until it settles (completed, cancelled, failed or
    /// suspended) or `timeout` elapses; returns the last snapshot either
    /// way, erring only on transport/protocol failures or timeout.
    pub fn job_wait(&mut self, id: &str, timeout: Duration) -> Result<JobSnapshot, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let snapshot = self.job_status(id)?;
            if snapshot.is_settled() {
                return Ok(snapshot);
            }
            if std::time::Instant::now() >= deadline {
                return Err(err(format!(
                    "job {id} still `{}` after {:.1}s",
                    snapshot.state,
                    timeout.as_secs_f64()
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Ask the server to stop accepting connections and exit its serve loop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.single(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// Map server-reported failures of a single-response call to errors.
fn check_single(response: Response) -> Result<Response, ClientError> {
    match response {
        Response::Error { message } => Err(err(format!("server error: {message}"))),
        Response::Busy { message, estimated_cost_ms } => {
            Err(busy_error(&message, estimated_cost_ms))
        }
        response => Ok(response),
    }
}

/// Reassemble one sweep's streamed responses (chunks in index order, then
/// `SweepDone`) into records plus statistics. Shared by the one-shot and
/// pipelined sweep paths.
pub fn assemble_sweep(
    responses: Vec<Response>,
    range: &Range<usize>,
) -> Result<(Vec<EvalRecord>, SweepStats), ClientError> {
    let mut records: Vec<EvalRecord> = Vec::with_capacity(range.len());
    let mut stats = None;
    for response in responses {
        match response {
            Response::SweepChunk { start, records: wire } => {
                if records.len() + range.start != start {
                    return Err(err(format!(
                        "out-of-order sweep chunk: expected start {}, got {start}",
                        records.len() + range.start
                    )));
                }
                records.extend(wire.into_iter().map(EvalRecord::from));
            }
            Response::SweepDone { stats: s } => stats = Some(s),
            Response::Error { message } => return Err(err(format!("server error: {message}"))),
            Response::Busy { message, estimated_cost_ms } => {
                return Err(busy_error(&message, estimated_cost_ms))
            }
            other => return Err(unexpected("SweepChunk/SweepDone", &other)),
        }
    }
    let stats = stats.ok_or_else(|| err("sweep ended without a SweepDone"))?;
    if records.len() != range.len() {
        return Err(err(format!("sweep returned {} of {} records", records.len(), range.len())));
    }
    Ok((records, stats))
}

/// A busy rejection as a retryable client error, carrying the planner's
/// cost estimate when the server supplied one.
fn busy_error(message: &str, estimated_cost_ms: f64) -> ClientError {
    let message = if estimated_cost_ms > 0.0 {
        format!("server busy: {message} (estimated query cost {estimated_cost_ms:.1} ms)")
    } else {
        format!("server busy: {message}")
    };
    ClientError { message, busy: true, estimated_cost_ms }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    let label = match got {
        Response::Pong { .. } => "Pong",
        Response::Stats(_) => "Stats",
        Response::Metrics { .. } => "Metrics",
        Response::Catalogue { .. } => "Catalogue",
        Response::ShuttingDown => "ShuttingDown",
        Response::SweepChunk { .. } => "SweepChunk",
        Response::SweepDone { .. } => "SweepDone",
        Response::Records { .. } => "Records",
        Response::Curves { .. } => "Curves",
        Response::Prepared { .. } => "Prepared",
        Response::Job(_) => "Job",
        Response::Error { .. } => "Error",
        Response::Busy { .. } => "Busy",
    };
    err(format!("expected {wanted} response, got {label}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_is_deterministic_and_jittered_within_half_to_three_halves() {
        let policy = RetryPolicy::backoff_ms(10, 1_000);
        for attempt in 1..=12u32 {
            for salt in [0u64, 1, 42, u64::MAX] {
                let a = policy.delay(attempt, salt, 0.0);
                let b = policy.delay(attempt, salt, 0.0);
                assert_eq!(a, b, "same (attempt, salt) must reproduce exactly");
                // Nominal for this attempt: base * 2^(n-1) capped.
                let nominal = Duration::from_millis(10)
                    .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
                    .min(Duration::from_millis(1_000));
                let ratio = a.as_secs_f64() / nominal.as_secs_f64();
                assert!(
                    (0.5..1.5).contains(&ratio),
                    "attempt {attempt} salt {salt}: jitter factor {ratio} outside [0.5, 1.5)"
                );
            }
        }
    }

    #[test]
    fn retry_delay_doubles_then_saturates_at_the_cap() {
        let policy = RetryPolicy::backoff_ms(10, 1_000);
        // Compare jitter-free nominals by dividing the jitter back out:
        // same (attempt, salt) → same factor, so fix the salt and recover
        // the nominal from a second policy with a huge cap.
        let uncapped = RetryPolicy::backoff_ms(10, u64::MAX / 4);
        for attempt in 1..=7u32 {
            // 10ms * 2^6 = 640ms < 1s: no cap engaged yet, identical.
            let capped = policy.delay(attempt, 7, 0.0);
            let free = uncapped.delay(attempt, 7, 0.0);
            assert_eq!(capped, free, "attempt {attempt} below the cap");
        }
        // Far past the cap the schedule is flat: attempts 9 and 10 differ
        // only in jitter, never exceeding cap * 1.5.
        for attempt in [9u32, 10, 33, 64, 1_000] {
            let d = policy.delay(attempt, 7, 0.0);
            assert!(
                d <= Duration::from_millis(1_500),
                "attempt {attempt}: {d:?} exceeds the jittered cap"
            );
            assert!(d >= Duration::from_millis(500), "attempt {attempt}: cap floor holds");
        }
    }

    #[test]
    fn retry_delay_shift_saturation_keeps_high_attempts_finite() {
        // 2^(n-1) overflows u32 from attempt 33 on; checked_shl saturates
        // the multiplier to u32::MAX and saturating_mul pins the product,
        // so the cap rules — no wrap back to tiny delays.
        let policy = RetryPolicy::backoff_ms(1, 2_000);
        let at_32 = policy.delay(32, 5, 0.0);
        for attempt in [33u32, 40, 1_000, u32::MAX] {
            let d = policy.delay(attempt, 5, 0.0);
            assert!(
                (Duration::from_millis(1_000)..=Duration::from_millis(3_000)).contains(&d),
                "attempt {attempt}: saturated delay {d:?} stays at the jittered cap"
            );
        }
        assert!(at_32 >= Duration::from_millis(1_000), "already capped at attempt 32");
    }

    #[test]
    fn retry_delay_floors_at_half_the_estimated_cost_capped() {
        let policy = RetryPolicy::backoff_ms(1, 1_000);
        // A 10s backlog hint floors the first retry at cost/2 = 5s, which
        // the cap then pins to 1s (jittered to at most 1.5s).
        let hinted = policy.delay(1, 3, 10_000.0);
        assert!(hinted >= Duration::from_millis(500), "floor engaged: {hinted:?}");
        assert!(hinted <= Duration::from_millis(1_500), "cap bounds the floor: {hinted:?}");
        // A modest hint floors early attempts without touching the cap:
        // nominal = max(1ms * 2^0, 40ms / 2) = 20ms.
        let modest = policy.delay(1, 3, 40.0);
        assert!(
            (Duration::from_millis(10)..Duration::from_millis(30)).contains(&modest),
            "20ms nominal, jittered: {modest:?}"
        );
        // Negative and NaN-free zero hints degrade to the exponential term.
        let plain = policy.delay(1, 3, 0.0);
        let negative = policy.delay(1, 3, -7.0);
        assert_eq!(plain, negative, "negative hints clamp to no floor");
    }

    #[test]
    fn retry_jitter_seed_mixes_salt_and_attempt() {
        let policy = RetryPolicy::backoff_ms(100, 100_000);
        // Distinct salts de-correlate concurrent retriers on one attempt.
        let salts: Vec<Duration> = (0..16).map(|s| policy.delay(3, s * 7_919, 0.0)).collect();
        let distinct = salts.iter().collect::<std::collections::BTreeSet<_>>().len();
        assert!(distinct >= 15, "salted jitter must not collide in lockstep: {distinct}/16");
        // The `| 1` in the seed keeps the degenerate salt/attempt mix that
        // would zero the xorshift state alive: salt chosen so
        // salt ^ (attempt * GOLDEN) == 0 without it.
        let attempt = 2u32;
        let zeroing_salt = u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let d = policy.delay(attempt, zeroing_salt, 0.0);
        let nominal = Duration::from_millis(200);
        let ratio = d.as_secs_f64() / nominal.as_secs_f64();
        assert!(
            (0.5..1.5).contains(&ratio),
            "zero-seed guard still jitters within bounds: {ratio}"
        );
    }
}
