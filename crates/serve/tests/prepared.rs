//! The prepared-space query path (`prepare` → query by id): answers must be
//! bit-identical to explicit-space queries and to a direct `Engine::sweep`,
//! ids must be stable and idempotent, and evicted or malformed ids must
//! fail cleanly with a re-preparable error.

use std::sync::Arc;

use mp_dse::analysis::CostAxis;
use mp_dse::backend::AnalyticBackend;
use mp_dse::engine::{Engine, SweepConfig};
use mp_dse::scenario::ScenarioSpace;
use mp_serve::prelude::*;

fn space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(mp_model::params::AppParams::table2_all())
        .with_budgets(vec![64.0, 256.0])
        .clear_designs()
        .add_symmetric_grid((0..32).map(|i| 1.0 + i as f64 * 4.0))
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
}

fn service(shards: usize) -> Arc<SweepService> {
    Arc::new(SweepService::new(
        Arc::new(AnalyticBackend),
        &ServiceConfig { shards, threads_per_shard: 2, ..ServiceConfig::default() },
    ))
}

#[test]
fn prepared_queries_are_bit_identical_to_explicit_and_direct() {
    let space = space();
    let direct = Engine::new(2).sweep(&space, &AnalyticBackend, &SweepConfig::default());
    let service = service(2);

    let spec = SpaceSpec::Explicit(space.clone());
    let (id, scenarios) = service.prepare_spec(&spec).unwrap();
    assert_eq!(scenarios, space.len());
    assert_eq!(id.len(), 16, "prepared ids are 16 hex digits: {id}");
    // Idempotent: preparing the same space again returns the same id.
    assert_eq!(service.prepare_spec(&spec).unwrap().0, id);

    let prepared = SpaceSpec::Prepared { id: id.clone() };
    let via_handle = service.resolve_handle(&prepared).unwrap();
    let result = service.sweep_handle(&via_handle, None).unwrap();
    assert_eq!(result.records.len(), direct.records.len());
    for (a, b) in result.records.iter().zip(direct.records.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        assert_eq!(a.cores.to_bits(), b.cores.to_bits());
        assert_eq!(a.area.to_bits(), b.area.to_bits());
    }

    // The protocol path agrees with the explicit-spec path response for
    // response.
    let explicit_answers = service.handle(&Request::TopK { space: spec, k: 9 });
    let prepared_answers = service.handle(&Request::TopK { space: prepared, k: 9 });
    assert_eq!(
        encode_line(&explicit_answers.last().unwrap().clone()),
        encode_line(&prepared_answers.last().unwrap().clone()),
    );
}

#[test]
fn prepared_ids_work_over_the_socket_and_survive_pipelining() {
    let space = space();
    let direct = Engine::new(2).sweep(&space, &AnalyticBackend, &SweepConfig::default());
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), service(2)).unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&endpoint).unwrap();
    let (id, scenarios) = client.prepare(&space).unwrap();
    assert_eq!(scenarios, space.len());

    // One-shot prepared queries.
    let (records, stats) = client.sweep_prepared(&id, 0..scenarios, 50).unwrap();
    assert_eq!(stats.scenarios, scenarios);
    for (a, b) in records.iter().zip(direct.records.iter()) {
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }
    let top = client.top_k_prepared(&id, 5).unwrap();
    assert_eq!(top, mp_dse::analysis::top_k(&direct.records, 5));
    let frontier = client.pareto_prepared(&id, CostAxis::Area).unwrap();
    assert_eq!(frontier, mp_dse::analysis::pareto_frontier(&direct.records, CostAxis::Area));

    // Pipelined prepared queries, including a range window.
    let prepared = || SpaceSpec::Prepared { id: id.clone() };
    let window = 7..scenarios - 3;
    let responses = client
        .call_pipelined(vec![
            Request::Sweep { space: prepared(), start: window.start, end: window.end, chunk: 0 },
            Request::TopK { space: prepared(), k: 3 },
            Request::Ping,
        ])
        .unwrap();
    let (ranged, _) = assemble_sweep(responses[0].clone(), &window).unwrap();
    for (a, b) in ranged.iter().zip(&direct.records[window]) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }
    assert!(matches!(responses[1].as_slice(), [Response::Records { .. }]));
    assert!(matches!(responses[2].as_slice(), [Response::Pong { .. }]));

    // Bad ids fail cleanly and keep the connection alive.
    let malformed = client.top_k_prepared("zz", 1).unwrap_err();
    assert!(malformed.message.contains("malformed"), "{malformed}");
    let unknown = client.top_k_prepared("00112233aabbccdd", 1).unwrap_err();
    assert!(unknown.message.contains("re-prepare"), "{unknown}");
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);

    client.shutdown().unwrap();
    serving.join().unwrap();
}

#[test]
fn evicted_prepared_ids_report_expiry_not_wrong_answers() {
    let service = service(1);
    let space = space();
    let (id, _) = service.prepare_spec(&SpaceSpec::Explicit(space.clone())).unwrap();

    // Push well past the LRU cap with distinct spaces so the id is evicted.
    for designs in 1..=40usize {
        let filler = ScenarioSpace::new()
            .clear_designs()
            .add_symmetric_grid((0..designs).map(|i| 1.0 + i as f64));
        service.prepare_spec(&SpaceSpec::Explicit(filler)).unwrap();
    }
    let expired = service.resolve_handle(&SpaceSpec::Prepared { id: id.clone() }).unwrap_err();
    assert!(!expired.is_busy());
    assert!(expired.message.contains("re-prepare"), "{expired}");

    // Re-preparing restores service under the same id.
    let (again, _) = service.prepare_spec(&SpaceSpec::Explicit(space)).unwrap();
    assert_eq!(again, id, "content-addressed ids are stable across eviction");
    assert!(service.resolve_handle(&SpaceSpec::Prepared { id }).is_ok());
}
