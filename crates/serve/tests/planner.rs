//! Deterministic planner behaviour, pinned with a gated backend (no sleeps
//! in the control flow — the test decides exactly when evaluations finish):
//!
//! * **coalescing** — overlapping in-flight sweeps share one evaluation:
//!   the leader evaluates every scenario exactly once, followers receive a
//!   bit-identical clone marked `stats.coalesced`, and the planner counters
//!   account the shared work;
//! * **cost-based admission** — a shard whose estimated pending cost would
//!   exceed the budget rejects new queries with a busy error carrying the
//!   query's own cost estimate, and admission reopens once the backlog
//!   drains.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use mp_dse::backend::{DseError, EvalBackend};
use mp_dse::scenario::{Scenario, ScenarioSpace};
use mp_serve::prelude::*;

/// A backend whose evaluations block until the test releases them. Each
/// entry bumps `entered` (total evaluations ever started) and waits on the
/// `release` latch.
struct GateBackend {
    entered: Arc<AtomicUsize>,
    enter_signal: Arc<Condvar>,
    enter_lock: Arc<Mutex<()>>,
    release: Arc<(Mutex<bool>, Condvar)>,
}

impl GateBackend {
    #[allow(clippy::type_complexity)]
    fn new() -> (GateBackend, Arc<AtomicUsize>, Arc<(Mutex<bool>, Condvar)>) {
        let entered = Arc::new(AtomicUsize::new(0));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let backend = GateBackend {
            entered: Arc::clone(&entered),
            enter_signal: Arc::new(Condvar::new()),
            enter_lock: Arc::new(Mutex::new(())),
            release: Arc::clone(&release),
        };
        (backend, entered, release)
    }
}

impl EvalBackend for GateBackend {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        self.enter_signal.notify_all();
        let (open, signal) = &*self.release;
        let mut open = open.lock().unwrap();
        while !*open {
            open = signal.wait(open).unwrap();
        }
        drop(open);
        let _lock = self.enter_lock.lock().unwrap();
        // A deterministic, scenario-dependent value so reordered or
        // misattributed records cannot cancel out in the parity checks.
        Ok(scenario.design.area() * 2.0 + 1.0)
    }
}

fn open(release: &Arc<(Mutex<bool>, Condvar)>) {
    let (open, signal) = &**release;
    *open.lock().unwrap() = true;
    signal.notify_all();
}

/// Read a counter's current value from the global metrics registry.
fn series(name: &str) -> u64 {
    let json = mp_obs::registry().snapshot().to_json();
    let marker = format!("\"{name}\":");
    let Some(at) = json.find(&marker) else { return 0 };
    json[at + marker.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

#[test]
fn overlapping_inflight_sweeps_evaluate_once_and_fan_out_marked_clones() {
    let (backend, entered, release) = GateBackend::new();
    let space =
        ScenarioSpace::new().clear_designs().add_symmetric_grid((0..48).map(|i| 1.0 + i as f64));
    let service = Arc::new(SweepService::new(
        Arc::new(backend),
        &ServiceConfig {
            shards: 1,
            threads_per_shard: 1,
            use_cache: false,
            ..ServiceConfig::default()
        },
    ));

    let coalesced_before = series("planner_coalesced_requests");
    let shared_before = series("planner_shared_scenarios");

    // The leader: takes the coalescing slot for the (single) window, then
    // blocks inside the gated backend.
    let leader = {
        let service = Arc::clone(&service);
        let space = space.clone();
        std::thread::spawn(move || service.sweep(&space, None).unwrap())
    };
    while entered.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }

    // Followers: same space, same full range — equal plan keys. Each
    // increments the coalesced counter *before* blocking on the leader's
    // publication, so the counter doubles as the "all joined" signal.
    const FOLLOWERS: usize = 4;
    let followers: Vec<_> = (0..FOLLOWERS)
        .map(|_| {
            let service = Arc::clone(&service);
            let space = space.clone();
            std::thread::spawn(move || service.sweep(&space, None).unwrap())
        })
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while series("planner_coalesced_requests") - coalesced_before < FOLLOWERS as u64 {
        assert!(std::time::Instant::now() < deadline, "followers never joined the leader");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    open(&release);
    let lead_result = leader.join().unwrap();
    assert!(!lead_result.stats.coalesced, "the leader evaluated; its stats are unshared");
    assert_eq!(lead_result.stats.scenarios, space.len());
    for follower in followers {
        let result = follower.join().unwrap();
        assert!(result.stats.coalesced, "followers carry the shared-result marker");
        assert_eq!(result.stats.scenarios, space.len(), "shared stats still cover the range");
        assert_eq!(result.records.len(), lead_result.records.len());
        for (a, b) in result.records.iter().zip(lead_result.records.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "shared records are bit-exact");
        }
    }

    // The whole fan-out cost exactly one evaluation per scenario, and the
    // planner accounted the scenarios it saved.
    assert_eq!(entered.load(Ordering::SeqCst), space.len(), "shared work is evaluated once");
    assert_eq!(
        series("planner_shared_scenarios") - shared_before,
        (FOLLOWERS * space.len()) as u64
    );

    // With nothing in flight the table is empty again: a fresh sweep leads
    // its own evaluation (total evaluations grow by the full space).
    let again = service.sweep(&space, None).unwrap();
    assert!(!again.stats.coalesced);
    assert_eq!(entered.load(Ordering::SeqCst), 2 * space.len());
}

#[test]
fn pending_cost_above_the_budget_rejects_with_the_query_estimate() {
    let (backend, entered, release) = GateBackend::new();
    let space =
        ScenarioSpace::new().clear_designs().add_symmetric_grid((0..64).map(|i| 2.0 + i as f64));
    // Each scenario is pinned at 1 ms, so the 64-scenario sweep estimates
    // 64 ms against a 10 ms budget: admitted when the shard is idle, a cost
    // rejection while anything is pending.
    let service = Arc::new(SweepService::new(
        Arc::new(backend),
        &ServiceConfig {
            shards: 1,
            threads_per_shard: 1,
            use_cache: false,
            cost_budget_ms: 10.0,
            cost_per_scenario_ms: Some(1.0),
            ..ServiceConfig::default()
        },
    ));

    let rejections_before = series("planner_cost_rejections");

    // An idle shard admits even an over-budget query (work conservation:
    // rejecting it would leave the shard idle forever).
    let occupied = {
        let service = Arc::clone(&service);
        let space = space.clone();
        std::thread::spawn(move || service.sweep(&space, None).unwrap())
    };
    while entered.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }

    // 64 ms pending + 64 ms new > 10 ms budget: rejected, with this query's
    // own estimate on the error.
    let rejected = service.sweep(&space, None).unwrap_err();
    assert!(rejected.is_busy(), "cost rejections are retryable: {rejected}");
    assert_eq!(rejected.kind, ServeErrorKind::Busy);
    assert_eq!(rejected.estimated_cost_ms, 64.0, "estimate = scenarios × pinned cost");
    assert_eq!(series("planner_cost_rejections") - rejections_before, 1);
    // The same rejection over the protocol carries the estimate.
    let responses =
        service.handle(&Request::TopK { space: SpaceSpec::Explicit(space.clone()), k: 2 });
    match responses.as_slice() {
        [Response::Busy { estimated_cost_ms, .. }] => assert_eq!(*estimated_cost_ms, 64.0),
        other => panic!("expected a busy response, got {other:?}"),
    }

    // Drain the backlog: pending cost returns to zero and admission reopens.
    open(&release);
    let first = occupied.join().unwrap();
    assert_eq!(first.stats.scenarios, space.len());
    let second = service.sweep(&space, None).unwrap();
    assert_eq!(second.stats.scenarios, space.len());
    for (a, b) in first.records.iter().zip(second.records.iter()) {
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }
}
