//! Backpressure behaviour of the serve stack, verified at both layers:
//!
//! * **admission control** — a shard whose in-flight cap is reached rejects
//!   new queries with a retryable busy error instead of queueing them
//!   (deterministic: the backend blocks on a gate the test controls);
//! * **write-side watermarks** — a client that drains its socket slowly
//!   parks its streaming sweep at the outbox high watermark; `EPOLLOUT`
//!   re-arms it, the full answer still arrives bit-identical, and fast
//!   clients on the same server are never head-of-line blocked behind it.

use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

use mp_dse::backend::{AnalyticBackend, DseError, EvalBackend};
use mp_dse::engine::{Engine, EvalRecord, SweepConfig};
use mp_dse::scenario::{Scenario, ScenarioSpace};
use mp_serve::prelude::*;

/// A counter the shard worker bumps when it enters an evaluation.
type EnterGate = Arc<(Mutex<usize>, Condvar)>;
/// A latch the test opens to let blocked evaluations finish.
type ReleaseGate = Arc<(Mutex<bool>, Condvar)>;

/// A backend whose evaluations block until the test releases them, so the
/// test can hold a shard busy deterministically (no sleeps, no racing).
struct GateBackend {
    entered: EnterGate,
    release: ReleaseGate,
}

impl GateBackend {
    fn new() -> (GateBackend, EnterGate, ReleaseGate) {
        let entered = Arc::new((Mutex::new(0usize), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let backend = GateBackend { entered: Arc::clone(&entered), release: Arc::clone(&release) };
        (backend, entered, release)
    }
}

impl EvalBackend for GateBackend {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn evaluate(&self, _scenario: &Scenario<'_>) -> Result<f64, DseError> {
        {
            let (count, signal) = &*self.entered;
            *count.lock().unwrap() += 1;
            signal.notify_all();
        }
        let (open, signal) = &*self.release;
        let mut open = open.lock().unwrap();
        while !*open {
            open = signal.wait(open).unwrap();
        }
        Ok(1.0)
    }
}

fn tiny_space() -> ScenarioSpace {
    ScenarioSpace::new().clear_designs().add_symmetric_grid([4.0])
}

#[test]
fn full_shard_queue_rejects_with_busy_then_recovers() {
    let (backend, entered, release) = GateBackend::new();
    let service = Arc::new(SweepService::new(
        Arc::new(backend),
        &ServiceConfig {
            shards: 1,
            threads_per_shard: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    ));

    // Occupy the only shard: this sweep blocks inside the gated backend.
    let space = tiny_space();
    let occupied = {
        let service = Arc::clone(&service);
        let space = space.clone();
        std::thread::spawn(move || service.sweep(&space, None))
    };
    {
        let (count, signal) = &*entered;
        let mut count = count.lock().unwrap();
        while *count == 0 {
            count = signal.wait(count).unwrap();
        }
    }

    // The shard is at its in-flight cap: new queries bounce, retryably, on
    // both the service API and the wire protocol — and nothing was queued.
    let rejected = service.sweep(&space, None).unwrap_err();
    assert!(rejected.is_busy(), "expected busy, got: {rejected}");
    assert_eq!(rejected.kind, ServeErrorKind::Busy);
    let responses =
        service.handle(&Request::TopK { space: SpaceSpec::Explicit(space.clone()), k: 3 });
    assert!(
        matches!(responses.as_slice(), [Response::Busy { .. }]),
        "protocol reports busy: {responses:?}"
    );
    let streaming = service.begin_sweep(&space, 0..space.len(), 0).unwrap_err();
    assert!(streaming.is_busy(), "streaming admission uses the same gate");

    // Drain the gate: the occupied sweep completes and admission reopens.
    {
        let (open, signal) = &*release;
        *open.lock().unwrap() = true;
        signal.notify_all();
    }
    let first = occupied.join().unwrap().unwrap();
    assert_eq!(first.stats.scenarios, space.len());
    let second = service.sweep(&space, None).unwrap();
    assert_eq!(second.stats.scenarios, space.len());
    for (a, b) in first.records.iter().zip(second.records.iter()) {
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    }
}

/// Read one sweep's worth of response lines from a raw socket, slowly:
/// small reads with pauses, so the server's outbox repeatedly fills past its
/// watermark and the parked sweep must be re-armed from `EPOLLOUT`.
fn slow_read_sweep(endpoint: &Endpoint, space: &ScenarioSpace, chunk: usize) -> Vec<EvalRecord> {
    let mut stream = Stream::connect(endpoint).unwrap();
    let request = RequestEnvelope {
        id: 1,
        request: Request::Sweep {
            space: SpaceSpec::Explicit(space.clone()),
            start: 0,
            end: space.len(),
            chunk,
        },
    };
    let mut line = encode_line(&request).into_bytes();
    line.push(b'\n');
    stream.write_all(&line).unwrap();
    stream.flush().unwrap();

    let mut decoder = LineDecoder::new(usize::MAX / 2);
    let mut responses = Vec::new();
    let mut buf = [0u8; 8 * 1024];
    'read: loop {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed before the sweep finished");
        decoder.push(&buf[..n]);
        while let Some(line) = decoder.next_line() {
            let envelope: ResponseEnvelope = decode_line(&line.unwrap()).unwrap();
            assert_eq!(envelope.id, 1);
            let terminal = envelope.response.is_terminal();
            responses.push(envelope.response);
            if terminal {
                break 'read;
            }
        }
        // The slow part: let the server race far ahead of this reader.
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let (records, stats) = assemble_sweep(responses, &(0..space.len())).unwrap();
    assert_eq!(stats.scenarios, space.len());
    records
}

#[test]
fn slow_readers_park_their_sweep_and_never_block_fast_clients() {
    // Big enough that the full wire answer (~60 bytes/record, tens of
    // thousands of records) is far above the 256 KiB outbox high watermark,
    // so the sweep must park and re-arm several times.
    let space = ScenarioSpace::new()
        .with_apps(mp_model::params::AppParams::table2_all())
        .with_budgets(vec![64.0, 256.0])
        .with_growths(vec![
            mp_model::growth::GrowthFunction::Linear,
            mp_model::growth::GrowthFunction::Logarithmic,
        ])
        .clear_designs()
        .add_symmetric_grid((0..1024).map(|i| 1.0 + i as f64 * 0.25))
        .add_asymmetric_grid([1.0, 2.0, 4.0, 8.0], (0..192).map(|i| 2.0 + i as f64));
    assert!(space.len() > 20_000, "space must dwarf the watermark: {}", space.len());
    let service = Arc::new(SweepService::new(
        Arc::new(AnalyticBackend),
        &ServiceConfig { shards: 2, threads_per_shard: 1, ..ServiceConfig::default() },
    ));
    let server = Server::bind_with(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        service,
        ServerConfig { event_loops: 1, executors: 2 },
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.run().unwrap());

    let truth = Engine::new(1).sweep(&space, &AnalyticBackend, &SweepConfig::default());

    // One slow reader and one fast client, concurrently on the one loop.
    let slow = {
        let endpoint = endpoint.clone();
        let space = space.clone();
        std::thread::spawn(move || slow_read_sweep(&endpoint, &space, 128))
    };
    let fast_started = std::time::Instant::now();
    let mut fast = Client::connect(&endpoint).unwrap();
    for _ in 0..3 {
        let (records, _) = fast.sweep(&space, None, 0).unwrap();
        assert_eq!(records.len(), truth.records.len());
    }
    let fast_elapsed = fast_started.elapsed();

    let slow_records = slow.join().unwrap();
    assert_eq!(slow_records.len(), truth.records.len());
    for (a, b) in slow_records.iter().zip(truth.records.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        assert_eq!(a.cores.to_bits(), b.cores.to_bits());
        assert_eq!(a.area.to_bits(), b.area.to_bits());
    }
    // The fast client must have finished long before the slow reader's
    // paced drain (which takes at least 2ms per 8 KiB read): head-of-line
    // isolation, not just eventual completion.
    assert!(
        fast_elapsed < std::time::Duration::from_secs(30),
        "fast client stalled behind the slow reader: {fast_elapsed:?}"
    );

    let mut control = Client::connect(&endpoint).unwrap();
    control.shutdown().unwrap();
    serving.join().unwrap();
}
