//! Synthetic data-set generation.
//!
//! MineBench ships fixed input files; their essential properties for the
//! merging-phase study are only the *shape* of the data set — the number of
//! points `N`, dimensions `D` and natural clusters `C` — because the merging
//! phase operates on `C·D` accumulator elements regardless of the actual
//! coordinates. This module generates Gaussian-mixture data sets with exactly
//! those shapes (including the scaled variants of Table IV), deterministically
//! from a seed so every experiment is reproducible.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape and seed of a synthetic data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of points `N`.
    pub points: usize,
    /// Number of dimensions `D`.
    pub dims: usize,
    /// Number of generating clusters `C` (also the ground-truth cluster count).
    pub clusters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Create a spec.
    pub fn new(points: usize, dims: usize, clusters: usize, seed: u64) -> Self {
        DatasetSpec { points, dims, clusters, seed }
    }

    /// The paper's `kmeans-base` / `fuzzy-base` shape (N = 17 695, D = 9, C = 8).
    pub fn base() -> Self {
        DatasetSpec::new(17_695, 9, 8, 0x5EED)
    }

    /// Table IV `*-dim` variant: doubled dimensionality.
    pub fn dim_scaled() -> Self {
        DatasetSpec::new(17_695, 18, 8, 0x5EED)
    }

    /// Table IV `*-point` variant: doubled point count (at 18 dimensions).
    pub fn point_scaled() -> Self {
        DatasetSpec::new(35_390, 18, 8, 0x5EED)
    }

    /// Table IV `*-center` variant: 32 cluster centres (at 18 dimensions).
    pub fn center_scaled() -> Self {
        DatasetSpec::new(17_695, 18, 32, 0x5EED)
    }

    /// The paper's `hop-default` shape (61 440 particles in 3-D space).
    pub fn hop_default() -> Self {
        DatasetSpec::new(61_440, 3, 16, 0x401)
    }

    /// The paper's `hop-med` shape (491 520 particles in 3-D space).
    pub fn hop_medium() -> Self {
        DatasetSpec::new(491_520, 3, 16, 0x401)
    }

    /// A small shape for unit tests and doc examples.
    pub fn tiny() -> Self {
        DatasetSpec::new(600, 4, 3, 7)
    }

    /// Generate the data set described by this spec.
    pub fn generate(&self) -> Dataset {
        Dataset::generate(*self)
    }
}

/// A dense, row-major data set of `points × dims` coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    spec: DatasetSpec,
    /// Row-major coordinates, `points * dims` values.
    values: Vec<f64>,
    /// Ground-truth generating cluster of every point.
    labels: Vec<usize>,
    /// Generating cluster centres, row-major `clusters * dims`.
    true_centers: Vec<f64>,
}

impl Dataset {
    /// Generate a Gaussian-mixture data set: `spec.clusters` centres are placed
    /// on a coarse grid in `[0, 10)^D` and each point is drawn from an
    /// isotropic Gaussian (σ = 0.5) around a uniformly chosen centre.
    pub fn generate(spec: DatasetSpec) -> Self {
        assert!(spec.points > 0, "dataset needs at least one point");
        assert!(spec.dims > 0, "dataset needs at least one dimension");
        assert!(spec.clusters > 0, "dataset needs at least one cluster");
        assert!(spec.clusters <= spec.points, "cannot have more clusters than points");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let spread = 10.0;
        let sigma = 0.5;

        let mut true_centers: Vec<f64> = Vec::with_capacity(spec.clusters * spec.dims);
        // Rejection-sample the centres so every pair is at least ~6σ apart,
        // keeping the generated mixture well separated regardless of the seed
        // (the clustering tests rely on separability). A retry cap keeps the
        // loop total even for crowded configurations, where late centres may
        // end up closer together.
        let min_separation = 6.0 * sigma;
        for c in 0..spec.clusters {
            let mut candidate = vec![0.0; spec.dims];
            for attempt in 0..100 {
                for slot in candidate.iter_mut() {
                    *slot = rng.gen_range(0.0..spread);
                }
                let well_separated = (0..c).all(|other| {
                    let dist2: f64 = (0..spec.dims)
                        .map(|d| {
                            let delta = candidate[d] - true_centers[other * spec.dims + d];
                            delta * delta
                        })
                        .sum();
                    dist2 >= min_separation * min_separation
                });
                if well_separated || attempt == 99 {
                    break;
                }
            }
            true_centers.extend_from_slice(&candidate);
        }

        let normal = rand::distributions::Uniform::new(-1.0f64, 1.0);
        let mut values = Vec::with_capacity(spec.points * spec.dims);
        let mut labels = Vec::with_capacity(spec.points);
        for i in 0..spec.points {
            // Round-robin cluster assignment: blob sizes are exactly balanced
            // and any prefix of `clusters` points covers every blob, so
            // first-k-points seeding (the MineBench kmeans behaviour) starts
            // from one point per generating cluster for every seed.
            let c = i % spec.clusters;
            labels.push(c);
            for d in 0..spec.dims {
                // Sum of three uniforms approximates a Gaussian well enough for
                // clustering inputs and avoids a dependency on rand_distr.
                let noise: f64 = (0..3).map(|_| normal.sample(&mut rng)).sum::<f64>() / 3.0;
                values.push(true_centers[c * spec.dims + d] + noise * sigma * 3.0_f64.sqrt());
            }
        }
        Dataset { spec, values, labels, true_centers }
    }

    /// The spec this data set was generated from.
    pub fn spec(&self) -> DatasetSpec {
        self.spec
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.spec.points
    }

    /// Whether the data set is empty (never true for generated sets).
    pub fn is_empty(&self) -> bool {
        self.spec.points == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.spec.dims
    }

    /// Number of generating clusters.
    pub fn clusters(&self) -> usize {
        self.spec.clusters
    }

    /// The coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        let d = self.spec.dims;
        &self.values[i * d..(i + 1) * d]
    }

    /// All coordinates, row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Ground-truth generating labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Generating centres, row-major (`clusters * dims`).
    pub fn true_centers(&self) -> &[f64] {
        &self.true_centers
    }

    /// Squared Euclidean distance between point `i` and an arbitrary
    /// `dims`-long coordinate slice.
    pub fn distance2_to(&self, i: usize, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.dims());
        self.point(i)
            .iter()
            .zip(coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }
}

/// Named Table IV data-set variants for kmeans/fuzzy sensitivity experiments.
pub fn table4_specs() -> Vec<(&'static str, DatasetSpec)> {
    vec![
        ("base", DatasetSpec::base()),
        ("dim", DatasetSpec::dim_scaled()),
        ("point", DatasetSpec::point_scaled()),
        ("center", DatasetSpec::center_scaled()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::tiny().generate();
        let b = DatasetSpec::tiny().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::new(100, 3, 2, 1).generate();
        let b = DatasetSpec::new(100, 3, 2, 2).generate();
        assert_ne!(a.values(), b.values());
    }

    #[test]
    fn shapes_match_spec() {
        let spec = DatasetSpec::new(123, 7, 5, 99);
        let ds = spec.generate();
        assert_eq!(ds.len(), 123);
        assert_eq!(ds.dims(), 7);
        assert_eq!(ds.clusters(), 5);
        assert_eq!(ds.values().len(), 123 * 7);
        assert_eq!(ds.labels().len(), 123);
        assert_eq!(ds.true_centers().len(), 5 * 7);
        assert_eq!(ds.point(10).len(), 7);
    }

    #[test]
    fn base_spec_matches_paper_attributes() {
        let s = DatasetSpec::base();
        assert_eq!((s.points, s.dims, s.clusters), (17_695, 9, 8));
        let s = DatasetSpec::point_scaled();
        assert_eq!((s.points, s.dims, s.clusters), (35_390, 18, 8));
        let s = DatasetSpec::center_scaled();
        assert_eq!((s.points, s.dims, s.clusters), (17_695, 18, 32));
        assert_eq!(DatasetSpec::hop_default().points, 61_440);
        assert_eq!(DatasetSpec::hop_medium().points, 491_520);
    }

    #[test]
    fn points_cluster_near_their_generating_centre() {
        let ds = DatasetSpec::new(2000, 4, 4, 42).generate();
        // Each point should be closer to its own generating centre than to the
        // average distance to all centres, in the large majority of cases.
        let mut closer = 0usize;
        for i in 0..ds.len() {
            let own = ds.labels()[i];
            let own_d = ds.distance2_to(i, &ds.true_centers()[own * 4..(own + 1) * 4]);
            let min_other = (0..ds.clusters())
                .filter(|&c| c != own)
                .map(|c| ds.distance2_to(i, &ds.true_centers()[c * 4..(c + 1) * 4]))
                .fold(f64::MAX, f64::min);
            if own_d < min_other {
                closer += 1;
            }
        }
        assert!(closer as f64 / ds.len() as f64 > 0.9, "only {closer} points near their centre");
    }

    #[test]
    fn distance_is_zero_to_itself() {
        let ds = DatasetSpec::tiny().generate();
        for i in [0usize, 5, 100] {
            assert_eq!(ds.distance2_to(i, ds.point(i)), 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_points_rejected() {
        DatasetSpec::new(0, 3, 1, 0).generate();
    }

    #[test]
    #[should_panic]
    fn more_clusters_than_points_rejected() {
        DatasetSpec::new(3, 2, 5, 0).generate();
    }

    #[test]
    fn table4_specs_cover_four_variants() {
        let specs = table4_specs();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].0, "base");
    }
}
