//! HOP density-based clustering with an instrumented merging phase.
//!
//! HOP (Eisenstein & Hut) groups particles by density: every particle
//! estimates its local density from its `k` nearest neighbours, "hops" to its
//! densest neighbour, and the chains of hops terminate at local density maxima
//! that define the groups. The MineBench implementation has three parallel
//! kernels (tree construction, density estimation, hopping) followed by a
//! group-merging phase; the paper notes that
//!
//! * the *tree construction* kernel does not scale to 16 cores (which is why
//!   hop's overall speedup saturates around 13.5×), and
//! * the merging phase is dominated by memory accesses and its overhead grows
//!   *super-linearly* with the core count (`fored = 155 %`).
//!
//! This implementation reproduces that structure:
//!
//! 1. **Init** — take the particle positions.
//! 2. **Parallel (limited scaling)** — build the k-d tree; only the top
//!    recursion levels run concurrently, mirroring MineBench's limited
//!    parallelism.
//! 3. **Parallel** — per-particle density estimation via k-nearest-neighbour
//!    queries.
//! 4. **Parallel** — hop each particle to its densest neighbour and chase the
//!    chain to its root (a density peak).
//! 5. **Reduction (merging phase)** — per-thread partial group tables
//!    (root → member count, density mass) are merged into the global group
//!    table; the work grows with the number of threads *and* touches
//!    scattered memory, reproducing the super-linear growth.
//! 6. **Constant serial** — groups smaller than `min_group_size` are dropped
//!    and the surviving groups are relabelled densest-first.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mp_profile::Profiler;
use mp_runtime::{Control, PhaseExec, PhaseGraph, PhaseScheduler, PhasedWorkload};

use crate::data::Dataset;
use crate::kdtree::KdTree;

/// Configuration of a HOP run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopConfig {
    /// Number of nearest neighbours used for the density estimate and the hop
    /// candidate set (MineBench's `nDens`/`nHop` are of this order).
    pub neighbors: usize,
    /// Groups with fewer members than this are discarded (noise suppression).
    pub min_group_size: usize,
    /// How many threads participate in the tree build (MineBench's tree kernel
    /// has limited parallelism; capping this models the same behaviour).
    pub max_tree_build_threads: usize,
}

impl Default for HopConfig {
    fn default() -> Self {
        HopConfig { neighbors: 12, min_group_size: 8, max_tree_build_threads: 4 }
    }
}

/// Result of a HOP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopResult {
    /// Group id of every particle, or `usize::MAX` for particles whose group
    /// was discarded as noise.
    pub group_of: Vec<usize>,
    /// Number of surviving groups.
    pub groups: usize,
    /// Member count of each surviving group, densest group first.
    pub group_sizes: Vec<usize>,
    /// Estimated density of every particle.
    pub densities: Vec<f64>,
}

/// The HOP workload.
#[derive(Debug, Clone)]
pub struct Hop {
    config: HopConfig,
}

impl Hop {
    /// Create a workload with the given configuration.
    pub fn new(config: HopConfig) -> Self {
        assert!(config.neighbors > 0, "neighbors must be positive");
        assert!(config.max_tree_build_threads > 0, "tree build threads must be positive");
        Hop { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HopConfig {
        &self.config
    }

    /// The phase-graph view of this workload over `data`, ready for a
    /// [`PhaseScheduler`].
    pub fn phased<'a>(&'a self, data: &'a Dataset) -> PhasedHop<'a> {
        PhasedHop { workload: self, data }
    }

    /// Run HOP on `data` with `threads` worker threads, recording phases into
    /// `profiler` (executed through the phase-graph scheduler).
    pub fn run(&self, data: &Dataset, threads: usize, profiler: &Profiler) -> HopResult {
        PhaseScheduler::new(threads).run(&self.phased(data), profiler).output
    }

    /// Convenience: run without instrumentation.
    pub fn run_uninstrumented(&self, data: &Dataset, threads: usize) -> HopResult {
        PhaseScheduler::new(threads).run_uninstrumented(&self.phased(data)).output
    }
}

/// [`Hop`] expressed as a phase-graph workload: four parallel kernels (the
/// tree build with limited scaling), the scattered-memory group-table merge,
/// and the constant serial group filter — a single pass through the body.
pub struct PhasedHop<'a> {
    workload: &'a Hop,
    data: &'a Dataset,
}

/// State carried from the single body pass to finalisation.
#[derive(Default)]
pub struct HopState {
    group_of: Vec<usize>,
    group_sizes: Vec<usize>,
    densities: Vec<f64>,
}

impl PhasedWorkload for PhasedHop<'_> {
    type State = HopState;
    type Output = HopResult;

    fn name(&self) -> &str {
        "hop"
    }

    fn graph(&self) -> PhaseGraph {
        PhaseGraph::builder(1)
            .parallel_limited("build-kdtree", self.workload.config.max_tree_build_threads)
            .parallel("density")
            .parallel("hop")
            .parallel("chase-roots")
            .parallel("partial-group-tables")
            .reduction("merge-group-tables")
            .serial("filter-groups")
            .build()
            .expect("hop phase graph is valid")
    }

    fn init(&self, _exec: &PhaseExec<'_>) -> HopState {
        HopState::default()
    }

    fn iteration(&self, state: &mut HopState, exec: &PhaseExec<'_>, _iter: usize) -> Control {
        let data = self.data;
        let n = data.len();
        let k = self.workload.config.neighbors.min(n.saturating_sub(1)).max(1);

        // -------- Parallel kernel 1: tree construction (limited scaling). ----
        let tree = exec.parallel_task("build-kdtree", |build_threads| {
            KdTree::build(data.values(), data.dims(), build_threads)
        });

        // -------- Parallel kernel 2: density estimation. ----------------------
        let densities: Vec<f64> = exec
            .parallel("density", n, |_ctx, range| {
                let mut local = Vec::with_capacity(range.len());
                for i in range {
                    let neighbors = tree.knn(data.point(i), k, Some(i));
                    // Cubic-spline-free surrogate: density ∝ k / (volume of the
                    // ball reaching the k-th neighbour). A tiny epsilon keeps
                    // coincident points finite.
                    let r2 = neighbors.last().map(|nb| nb.dist2).unwrap_or(0.0);
                    let volume = (r2.sqrt().powi(data.dims() as i32)).max(1e-12);
                    local.push(k as f64 / volume);
                }
                local
            })
            .into_iter()
            .flatten()
            .collect();

        // -------- Parallel kernel 3: hop to the densest neighbour. -----------
        let hop_to: Vec<usize> = exec
            .parallel("hop", n, |_ctx, range| {
                let mut local = Vec::with_capacity(range.len());
                for i in range {
                    let neighbors = tree.knn(data.point(i), k, Some(i));
                    // Candidate set is the particle itself plus its neighbours;
                    // hop to the candidate with the highest (density, index).
                    let mut best = i;
                    for nb in &neighbors {
                        if (densities[nb.index], nb.index) > (densities[best], best) {
                            best = nb.index;
                        }
                    }
                    local.push(best);
                }
                local
            })
            .into_iter()
            .flatten()
            .collect();

        // Chase hop chains to their roots (density peaks). Still parallel: the
        // chains are read-only.
        let roots: Vec<usize> = exec
            .parallel("chase-roots", n, |_ctx, range| {
                let mut local = Vec::with_capacity(range.len());
                for i in range {
                    let mut cur = i;
                    let mut steps = 0usize;
                    while hop_to[cur] != cur && steps <= n {
                        cur = hop_to[cur];
                        steps += 1;
                    }
                    local.push(cur);
                }
                local
            })
            .into_iter()
            .flatten()
            .collect();

        // -------- Merging phase: combine per-thread group tables. ------------
        // Each thread builds a partial table  root → (member count, density
        // mass) over its chunk; the tables are then merged serially, touching
        // one hash entry per (thread, group) pair — the scattered-memory merge
        // the paper blames for hop's super-linear overhead.
        let partial_tables: Vec<HashMap<usize, (usize, f64)>> =
            exec.parallel("partial-group-tables", n, |_ctx, range| {
                let mut table: HashMap<usize, (usize, f64)> = HashMap::new();
                for i in range {
                    let entry = table.entry(roots[i]).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += densities[i];
                }
                table
            });

        let global_table: HashMap<usize, (usize, f64)> =
            exec.reduce_with("merge-group-tables", || {
                let mut global: HashMap<usize, (usize, f64)> = HashMap::new();
                for table in &partial_tables {
                    for (&root, &(count, mass)) in table {
                        let entry = global.entry(root).or_insert((0, 0.0));
                        entry.0 += count;
                        entry.1 += mass;
                    }
                }
                global
            });

        // -------- Constant serial phase: filter and relabel groups. ----------
        let (group_ids, group_sizes) = exec.serial("filter-groups", || {
            let mut groups: Vec<(usize, usize, f64)> = global_table
                .iter()
                .filter(|(_, &(count, _))| count >= self.workload.config.min_group_size)
                .map(|(&root, &(count, mass))| (root, count, mass))
                .collect();
            // Densest (highest mass) groups first, ties broken by root id for
            // determinism.
            groups.sort_by(|a, b| {
                b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            let ids: HashMap<usize, usize> =
                groups.iter().enumerate().map(|(gid, &(root, _, _))| (root, gid)).collect();
            let sizes: Vec<usize> = groups.iter().map(|&(_, count, _)| count).collect();
            (ids, sizes)
        });

        state.group_of =
            roots.iter().map(|root| group_ids.get(root).copied().unwrap_or(usize::MAX)).collect();
        state.group_sizes = group_sizes;
        state.densities = densities;
        Control::Break
    }

    fn finalize(&self, state: HopState, _exec: &PhaseExec<'_>) -> HopResult {
        HopResult {
            group_of: state.group_of,
            groups: state.group_sizes.len(),
            group_sizes: state.group_sizes,
            densities: state.densities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DatasetSpec;

    fn blobs() -> Dataset {
        // Three well-separated blobs in 3-D.
        DatasetSpec::new(900, 3, 3, 17).generate()
    }

    #[test]
    fn hop_finds_roughly_the_generating_blobs() {
        let data = blobs();
        // The number of density peaks scales with points-per-neighbourhood
        // (n / k): hopping only reaches the k nearest neighbours, so a 300-
        // point blob fragments under the 12-neighbour default. 24 neighbours
        // smooth the density estimate enough that each blob keeps a handful
        // of peaks at most, independent of the data seed.
        let hop = Hop::new(HopConfig { neighbors: 24, ..HopConfig::default() });
        let r = hop.run_uninstrumented(&data, 4);
        assert!(r.groups >= 2, "expected at least two groups, got {}", r.groups);
        assert!(r.groups <= 12, "expected few groups, got {}", r.groups);
        assert_eq!(r.group_of.len(), data.len());
        assert_eq!(r.densities.len(), data.len());
        // The surviving groups should cover most of the points.
        let covered = r.group_of.iter().filter(|&&g| g != usize::MAX).count();
        assert!(covered as f64 / data.len() as f64 > 0.8);
    }

    #[test]
    fn group_sizes_are_sorted_and_match_assignments() {
        let data = blobs();
        let r = Hop::new(HopConfig::default()).run_uninstrumented(&data, 3);
        assert_eq!(r.group_sizes.len(), r.groups);
        // Sizes recomputed from assignments must match the reported sizes.
        let mut counts = vec![0usize; r.groups];
        for &g in &r.group_of {
            if g != usize::MAX {
                counts[g] += 1;
            }
        }
        assert_eq!(counts, r.group_sizes);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let data = blobs();
        let hop = Hop::new(HopConfig::default());
        let r1 = hop.run_uninstrumented(&data, 1);
        for threads in [2usize, 4, 8] {
            let rt = hop.run_uninstrumented(&data, threads);
            assert_eq!(r1.groups, rt.groups, "threads={threads}");
            assert_eq!(r1.group_of, rt.group_of, "threads={threads}");
        }
    }

    #[test]
    fn densities_are_positive_and_peak_inside_blobs() {
        let data = blobs();
        let r = Hop::new(HopConfig::default()).run_uninstrumented(&data, 2);
        assert!(r.densities.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn min_group_size_filters_noise() {
        let data = blobs();
        let permissive = Hop::new(HopConfig { min_group_size: 1, ..Default::default() })
            .run_uninstrumented(&data, 2);
        let strict = Hop::new(HopConfig { min_group_size: 50, ..Default::default() })
            .run_uninstrumented(&data, 2);
        assert!(strict.groups <= permissive.groups);
    }

    #[test]
    fn profiler_records_merging_phase() {
        let data = blobs();
        let profiler = Profiler::new("hop", 4);
        Hop::new(HopConfig::default()).run(&data, 4, &profiler);
        let profile = profiler.finish();
        assert!(profile.parallel_time() > 0.0);
        assert!(profile.reduction_time() > 0.0);
        assert!(profile.constant_serial_time() > 0.0);
        assert!(profile.parallel_fraction() > 0.5);
    }

    #[test]
    fn hop_chains_terminate() {
        // Even on degenerate data (all points identical) the run terminates and
        // produces one group covering everything.
        let spec = DatasetSpec::new(64, 2, 1, 5);
        let data = spec.generate();
        let r = Hop::new(HopConfig { min_group_size: 1, ..Default::default() })
            .run_uninstrumented(&data, 4);
        assert!(r.groups >= 1);
    }

    #[test]
    #[should_panic]
    fn zero_neighbors_rejected() {
        Hop::new(HopConfig { neighbors: 0, ..Default::default() });
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let data = blobs();
        Hop::new(HopConfig::default()).run_uninstrumented(&data, 0);
    }
}
