//! # mp-workloads — MineBench-style clustering workloads with merging phases
//!
//! From-scratch Rust implementations of the clustering applications the paper
//! studies (MineBench's `kmeans`, `fuzzy` c-means and `hop`, plus hop's
//! kd-tree kernel as a standalone scenario). Every workload is an
//! [`mp_runtime::PhasedWorkload`]: it *declares* its phase graph — parallel
//! kernels, the merging (reduction) phase whose growth with the thread count
//! is the subject of the paper, and constant serial work — and the
//! `mp-runtime` scheduler executes it with automatic per-phase, per-thread
//! instrumentation.
//!
//! The crate also contains:
//!
//! * [`data`] — a synthetic Gaussian-mixture data generator reproducing the
//!   data-set shapes of Table IV (N points, D dimensions, C centres),
//! * [`kdtree`] — the k-d tree substrate used by HOP's neighbour searches and
//!   the standalone kd-tree workload built on it,
//! * [`runner`] — a uniform driver that runs any workload across thread
//!   counts, producing `mp-profile` run profiles or streaming scheduler
//!   records straight into a `StreamingExtractor` for calibration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod fuzzy;
pub mod hop;
pub mod kdtree;
pub mod kmeans;
pub mod runner;

/// Commonly used items.
pub mod prelude {
    pub use crate::data::{Dataset, DatasetSpec};
    pub use crate::fuzzy::{FuzzyCMeans, FuzzyConfig, FuzzyResult};
    pub use crate::hop::{Hop, HopConfig, HopResult};
    pub use crate::kdtree::{KdTreeConfig, KdTreeResult, KdTreeWorkload};
    pub use crate::kmeans::{KMeans, KMeansConfig, KMeansResult};
    pub use crate::runner::{run_sweep, ClusteringWorkload, WorkloadKind};
}

pub use prelude::*;
