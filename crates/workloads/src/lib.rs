//! # mp-workloads — MineBench-style clustering workloads with merging phases
//!
//! From-scratch Rust implementations of the three clustering applications the
//! paper studies (MineBench's `kmeans`, `fuzzy` c-means and `hop`), structured
//! so that the phases the paper times are explicit and instrumented:
//!
//! * a **parallel phase** in which every thread processes a chunk of the data
//!   set and produces a *partial result*,
//! * a **merging (reduction) phase** that combines the per-thread partials —
//!   the phase whose growth with the thread count is the subject of the paper,
//! * a **constant serial phase** (convergence checks, centre recomputation)
//!   whose cost does not depend on the thread count.
//!
//! The crate also contains:
//!
//! * [`data`] — a synthetic Gaussian-mixture data generator reproducing the
//!   data-set shapes of Table IV (N points, D dimensions, C centres),
//! * [`kdtree`] — the k-d tree substrate used by HOP's neighbour searches,
//! * [`runner`] — a uniform driver that runs any workload across thread
//!   counts and produces `mp-profile` run profiles ready for parameter
//!   extraction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod fuzzy;
pub mod hop;
pub mod kdtree;
pub mod kmeans;
pub mod runner;

/// Commonly used items.
pub mod prelude {
    pub use crate::data::{Dataset, DatasetSpec};
    pub use crate::fuzzy::{FuzzyCMeans, FuzzyConfig, FuzzyResult};
    pub use crate::hop::{Hop, HopConfig, HopResult};
    pub use crate::kmeans::{KMeans, KMeansConfig, KMeansResult};
    pub use crate::runner::{run_sweep, ClusteringWorkload, WorkloadKind};
}

pub use prelude::*;
