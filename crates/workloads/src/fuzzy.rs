//! Parallel fuzzy c-means clustering with an instrumented merging phase.
//!
//! Fuzzy c-means generalises k-means by assigning every point a *membership
//! degree* in every cluster instead of a hard label. The MineBench
//! implementation has the same phase structure as kmeans — a parallel
//! membership/accumulation phase followed by a merging phase over `C·D`
//! accumulator elements — which is why the paper reports an even larger
//! reduction fraction for it (`fred = 65 %` of the serial time, Table II): the
//! per-point work is heavier but the merge is identical, and the serial
//! sections are tiny.
//!
//! Phases per iteration:
//! 1. **Parallel** — each thread computes memberships of its points to all
//!    centres (fuzzifier `m = 2`) and accumulates partial weighted sums and
//!    weights.
//! 2. **Reduction** — per-thread partials are merged with the configured
//!    strategy.
//! 3. **Constant serial** — new centres are computed and the centre movement
//!    is compared against the convergence threshold.

use serde::{Deserialize, Serialize};

use mp_par::reduce::ReductionStrategy;
use mp_profile::Profiler;
use mp_runtime::{Control, PhaseExec, PhaseGraph, PhaseScheduler, PhasedWorkload};

use crate::data::Dataset;

/// Configuration of a fuzzy c-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzyConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Fuzzifier exponent `m` (> 1). MineBench uses 2.0.
    pub fuzziness: f64,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence threshold on the maximum centre movement between
    /// iterations.
    pub epsilon: f64,
    /// How the per-thread partial results are merged.
    pub reduction: ReductionStrategy,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        FuzzyConfig {
            clusters: 8,
            fuzziness: 2.0,
            max_iters: 50,
            epsilon: 1e-3,
            reduction: ReductionStrategy::SerialLinear,
        }
    }
}

impl FuzzyConfig {
    /// Configuration matching the data set's generating cluster count.
    pub fn for_dataset(ds: &Dataset) -> Self {
        FuzzyConfig { clusters: ds.clusters(), ..Default::default() }
    }
}

/// Result of a fuzzy c-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyResult {
    /// Final cluster centres, row-major `clusters × dims`.
    pub centers: Vec<f64>,
    /// Hard assignment of every point (cluster of maximum membership).
    pub assignments: Vec<usize>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Final maximum centre movement (convergence measure).
    pub final_delta: f64,
}

/// The fuzzy c-means workload.
#[derive(Debug, Clone)]
pub struct FuzzyCMeans {
    config: FuzzyConfig,
}

impl FuzzyCMeans {
    /// Create a workload with the given configuration.
    pub fn new(config: FuzzyConfig) -> Self {
        assert!(config.clusters > 0, "clusters must be positive");
        assert!(config.fuzziness > 1.0, "fuzziness must exceed 1");
        assert!(config.max_iters > 0, "max_iters must be positive");
        FuzzyCMeans { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FuzzyConfig {
        &self.config
    }

    /// The phase-graph view of this workload over `data`, ready for a
    /// [`PhaseScheduler`].
    pub fn phased<'a>(&'a self, data: &'a Dataset) -> PhasedFuzzy<'a> {
        PhasedFuzzy { workload: self, data }
    }

    /// Run fuzzy c-means on `data` with `threads` worker threads, recording
    /// phases into `profiler` (executed through the phase-graph scheduler).
    pub fn run(&self, data: &Dataset, threads: usize, profiler: &Profiler) -> FuzzyResult {
        PhaseScheduler::new(threads).run(&self.phased(data), profiler).output
    }

    /// Convenience: run without instrumentation.
    pub fn run_uninstrumented(&self, data: &Dataset, threads: usize) -> FuzzyResult {
        PhaseScheduler::new(threads).run_uninstrumented(&self.phased(data)).output
    }
}

/// [`FuzzyCMeans`] expressed as a phase-graph workload: a parallel membership
/// kernel, the merging phase over `C·D + C` accumulator elements, a constant
/// serial centre update, and a final parallel hard-assignment pass.
pub struct PhasedFuzzy<'a> {
    workload: &'a FuzzyCMeans,
    data: &'a Dataset,
}

/// Loop state of a scheduled fuzzy c-means run.
pub struct FuzzyState {
    k: usize,
    centers: Vec<f64>,
    iterations: usize,
    final_delta: f64,
}

impl PhasedWorkload for PhasedFuzzy<'_> {
    type State = FuzzyState;
    type Output = FuzzyResult;

    fn name(&self) -> &str {
        "fuzzy"
    }

    fn graph(&self) -> PhaseGraph {
        PhaseGraph::builder(self.workload.config.max_iters)
            .init("init-centers")
            .parallel("memberships")
            .reduction("merge-partials")
            .serial("recompute-centers")
            .finalize_parallel("final-assignments")
            .build()
            .expect("fuzzy phase graph is valid")
    }

    fn init(&self, exec: &PhaseExec<'_>) -> FuzzyState {
        let data = self.data;
        let n = data.len();
        let d = data.dims();
        let k = self.workload.config.clusters.min(n);

        // Spread initial centres over the first points.
        let centers = exec.init("init-centers", || {
            let stride = (n / k).max(1);
            let mut c = Vec::with_capacity(k * d);
            for i in 0..k {
                c.extend_from_slice(data.point((i * stride).min(n - 1)));
            }
            c
        });

        FuzzyState { k, centers, iterations: 0, final_delta: f64::MAX }
    }

    fn iteration(&self, state: &mut FuzzyState, exec: &PhaseExec<'_>, _iter: usize) -> Control {
        let data = self.data;
        let n = data.len();
        let d = data.dims();
        let k = state.k;
        let m = self.workload.config.fuzziness;
        // Membership exponent for distance ratios: 2 / (m - 1).
        let ratio_exp = 2.0 / (m - 1.0);
        // Flat partial layout: [weighted sums (k·d) | weights (k)].
        let partial_len = k * d + k;

        // -------- Parallel phase: memberships + partial accumulation. --------
        let centers = &state.centers;
        let partials = exec.parallel("memberships", n, |_ctx, range| {
            let mut partial = vec![0.0f64; partial_len];
            let (sums, weights) = partial.split_at_mut(k * d);
            let mut dist2 = vec![0.0f64; k];
            for i in range {
                let point = data.point(i);
                let mut zero_cluster = None;
                for (c, dc) in dist2.iter_mut().enumerate() {
                    let center = &centers[c * d..(c + 1) * d];
                    *dc = point.iter().zip(center.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                    if *dc == 0.0 {
                        zero_cluster = Some(c);
                    }
                }
                for c in 0..k {
                    // Membership of point i in cluster c under the
                    // standard FCM update; points coinciding with a
                    // centre get full membership there.
                    let u = match zero_cluster {
                        Some(z) => {
                            if c == z {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        None => {
                            let mut denom = 0.0;
                            for &other in dist2.iter() {
                                denom += (dist2[c] / other).powf(ratio_exp / 2.0);
                            }
                            1.0 / denom
                        }
                    };
                    let w = u.powf(m);
                    weights[c] += w;
                    for (s, p) in sums[c * d..(c + 1) * d].iter_mut().zip(point.iter()) {
                        *s += w * p;
                    }
                }
            }
            partial
        });

        // -------- Merging phase. ---------------------------------------------
        let (merged, _stats) =
            exec.reduce("merge-partials", &partials, self.workload.config.reduction);

        // -------- Constant serial phase: new centres + convergence. ----------
        let (new_centers, delta) = exec.serial("recompute-centers", || {
            let mut new_centers = state.centers.clone();
            let mut max_delta: f64 = 0.0;
            for c in 0..k {
                let w = merged[k * d + c];
                if w > 0.0 {
                    for dd in 0..d {
                        let v = merged[c * d + dd] / w;
                        max_delta = max_delta.max((v - state.centers[c * d + dd]).abs());
                        new_centers[c * d + dd] = v;
                    }
                }
            }
            (new_centers, max_delta)
        });

        state.centers = new_centers;
        state.final_delta = delta;
        state.iterations += 1;
        if delta <= self.workload.config.epsilon {
            Control::Break
        } else {
            Control::Continue
        }
    }

    fn finalize(&self, state: FuzzyState, exec: &PhaseExec<'_>) -> FuzzyResult {
        let data = self.data;
        let n = data.len();
        let d = data.dims();
        let k = state.k;
        let centers = &state.centers;

        // Hard assignments from the final centres (one extra parallel pass).
        let chunks = exec.parallel("final-assignments", n, |_ctx, range| {
            let mut local = Vec::with_capacity(range.len());
            for i in range {
                let point = data.point(i);
                let mut best = 0usize;
                let mut best_d = f64::MAX;
                for c in 0..k {
                    let center = &centers[c * d..(c + 1) * d];
                    let dist: f64 =
                        point.iter().zip(center.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                local.push(best);
            }
            local
        });
        let assignments: Vec<usize> = chunks.into_iter().flatten().collect();

        FuzzyResult {
            centers: state.centers.clone(),
            assignments,
            iterations: state.iterations,
            final_delta: state.final_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DatasetSpec;

    fn tiny_data() -> Dataset {
        DatasetSpec::new(600, 4, 3, 7).generate()
    }

    #[test]
    fn fuzzy_converges_on_separable_data() {
        let data = tiny_data();
        let fcm = FuzzyCMeans::new(FuzzyConfig::for_dataset(&data));
        let r = fcm.run_uninstrumented(&data, 4);
        assert!(r.iterations <= 50);
        assert!(r.final_delta <= 1e-3 || r.iterations == 50);
        assert_eq!(r.centers.len(), 12);
        assert_eq!(r.assignments.len(), 600);
    }

    #[test]
    fn centers_are_close_to_generating_centers() {
        let data = DatasetSpec::new(2400, 3, 4, 13).generate();
        let fcm = FuzzyCMeans::new(FuzzyConfig::for_dataset(&data));
        let r = fcm.run_uninstrumented(&data, 4);
        for c in 0..4 {
            let truth = &data.true_centers()[c * 3..(c + 1) * 3];
            let min_d2 = (0..4)
                .map(|f| {
                    r.centers[f * 3..(f + 1) * 3]
                        .iter()
                        .zip(truth.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .fold(f64::MAX, f64::min);
            assert!(min_d2 < 2.5, "generating centre {c} unmatched (d2={min_d2})");
        }
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let data = tiny_data();
        let fcm = FuzzyCMeans::new(FuzzyConfig::for_dataset(&data));
        let r1 = fcm.run_uninstrumented(&data, 1);
        for threads in [2usize, 5, 8] {
            let rt = fcm.run_uninstrumented(&data, threads);
            assert_eq!(r1.iterations, rt.iterations, "threads={threads}");
            for (a, b) in r1.centers.iter().zip(rt.centers.iter()) {
                assert!((a - b).abs() < 1e-6, "threads={threads}");
            }
        }
    }

    #[test]
    fn result_is_independent_of_reduction_strategy() {
        let data = tiny_data();
        let mut config = FuzzyConfig::for_dataset(&data);
        let baseline = FuzzyCMeans::new(config).run_uninstrumented(&data, 4);
        for strategy in ReductionStrategy::all() {
            config.reduction = strategy;
            let r = FuzzyCMeans::new(config).run_uninstrumented(&data, 4);
            for (a, b) in baseline.centers.iter().zip(r.centers.iter()) {
                assert!((a - b).abs() < 1e-6, "{strategy:?}");
            }
        }
    }

    #[test]
    fn profiler_records_reduction_and_parallel_phases() {
        let data = tiny_data();
        let fcm = FuzzyCMeans::new(FuzzyConfig::for_dataset(&data));
        let profiler = Profiler::new("fuzzy", 4);
        fcm.run(&data, 4, &profiler);
        let profile = profiler.finish();
        assert!(profile.parallel_time() > 0.0);
        assert!(profile.reduction_time() > 0.0);
        assert!(profile.constant_serial_time() > 0.0);
        // Fuzzy's per-point work is heavier than kmeans', so the parallel
        // fraction should be very high.
        assert!(profile.parallel_fraction() > 0.8);
    }

    #[test]
    fn fuzzy_and_kmeans_agree_on_well_separated_data() {
        // With well-separated Gaussians the hard assignments from fuzzy c-means
        // should mostly agree with the ground-truth labels.
        let data = DatasetSpec::new(1500, 3, 3, 21).generate();
        let fcm = FuzzyCMeans::new(FuzzyConfig::for_dataset(&data));
        let r = fcm.run_uninstrumented(&data, 4);
        // Build the best cluster → label mapping by majority vote.
        let mut agree = 0usize;
        for c in 0..3 {
            let mut counts = [0usize; 3];
            for i in 0..data.len() {
                if r.assignments[i] == c {
                    counts[data.labels()[i]] += 1;
                }
            }
            agree += counts.iter().copied().max().unwrap_or(0);
        }
        assert!(agree as f64 / data.len() as f64 > 0.9);
    }

    #[test]
    #[should_panic]
    fn fuzziness_must_exceed_one() {
        FuzzyCMeans::new(FuzzyConfig { fuzziness: 1.0, ..Default::default() });
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let data = tiny_data();
        FuzzyCMeans::new(FuzzyConfig::default()).run_uninstrumented(&data, 0);
    }
}
