//! A k-d tree for nearest-neighbour queries, plus the kd-tree workload.
//!
//! HOP's density estimation needs the `k` nearest neighbours of every
//! particle. MineBench's implementation builds a balanced k-d tree once and
//! queries it from all threads; the *tree construction* kernel is the part of
//! hop that the paper notes does not scale to 16 cores. This implementation
//! follows the same structure: a median-split balanced tree over point indices
//! with an optionally parallel build (sub-trees built by separate threads) and
//! read-only concurrent kNN queries.
//!
//! [`KdTreeWorkload`] exposes the tree as a standalone phased scenario — the
//! limited-scaling build, a fully-parallel all-points kNN pass producing
//! per-thread distance histograms, a merging phase over the histograms and a
//! constant serial summary — so the tree kernel can be characterised and
//! calibrated on its own, isolated from the rest of HOP.

use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use mp_par::reduce::ReductionStrategy;
use mp_profile::Profiler;
use mp_runtime::{Control, PhaseExec, PhaseGraph, PhaseScheduler, PhasedWorkload};

use crate::data::Dataset;

/// A balanced k-d tree over a borrowed point set.
#[derive(Debug)]
pub struct KdTree<'a> {
    /// Row-major coordinates of the indexed points.
    points: &'a [f64],
    dims: usize,
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index of the point stored at this node.
    point: usize,
    /// Splitting dimension.
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// One neighbour returned by a kNN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbouring point.
    pub index: usize,
    /// Squared Euclidean distance to the query point.
    pub dist2: f64,
}

/// Max-heap ordering by distance so the heap root is the current worst
/// candidate.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist2: f64,
    index: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist2
            .partial_cmp(&other.dist2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.index.cmp(&other.index))
    }
}

impl<'a> KdTree<'a> {
    /// Build a tree over `points` (row-major, `len × dims`).
    ///
    /// `build_threads` controls how many threads participate in the build: the
    /// top `log2(build_threads)` levels of recursion spawn their right subtree
    /// on a separate scoped thread, matching the limited parallelism of the
    /// MineBench kernel.
    pub fn build(points: &'a [f64], dims: usize, build_threads: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert_eq!(points.len() % dims, 0, "points length must be a multiple of dims");
        let n = points.len() / dims;
        let mut indices: Vec<usize> = (0..n).collect();
        // Pre-allocate the node arena; each recursion level fills a disjoint
        // sub-range so the parallel build can hand out non-overlapping slices.
        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        let root = if n == 0 {
            None
        } else {
            nodes.resize(n, Node { point: 0, axis: 0, left: None, right: None });
            let mut builder = Builder { points, dims };
            Some(builder.build_range(&mut nodes, 0, &mut indices, 0, build_threads.max(1)))
        };
        KdTree { points, dims, nodes, root }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The `k` nearest neighbours of `query` (a `dims`-long slice), sorted by
    /// increasing distance. If `exclude` is `Some(i)`, point `i` is skipped —
    /// used to exclude the query point itself when it is part of the set.
    pub fn knn(&self, query: &[f64], k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        self.search(self.root, query, k, exclude, &mut heap);
        let mut out: Vec<Neighbor> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| Neighbor { index: e.index, dist2: e.dist2 })
            .collect();
        out.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap());
        out
    }

    fn point_coords(&self, idx: usize) -> &[f64] {
        &self.points[idx * self.dims..(idx + 1) * self.dims]
    }

    fn search(
        &self,
        node: Option<usize>,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        let Some(node_idx) = node else { return };
        let node = self.nodes[node_idx];
        let coords = self.point_coords(node.point);
        if Some(node.point) != exclude {
            let dist2: f64 = coords.iter().zip(query.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
            if heap.len() < k {
                heap.push(HeapEntry { dist2, index: node.point });
            } else if let Some(top) = heap.peek() {
                if dist2 < top.dist2 {
                    heap.pop();
                    heap.push(HeapEntry { dist2, index: node.point });
                }
            }
        }
        let diff = query[node.axis] - coords[node.axis];
        let (near, far) =
            if diff <= 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        self.search(near, query, k, exclude, heap);
        let worst = heap.peek().map(|e| e.dist2).unwrap_or(f64::MAX);
        if heap.len() < k || diff * diff < worst {
            self.search(far, query, k, exclude, heap);
        }
    }
}

/// Recursive median-split builder.
struct Builder<'a> {
    points: &'a [f64],
    dims: usize,
}

impl Builder<'_> {
    /// Build the subtree for `indices`, writing its nodes into
    /// `nodes[offset .. offset + indices.len()]` and returning the arena index
    /// of the subtree root.
    fn build_range(
        &mut self,
        nodes: &mut [Node],
        offset: usize,
        indices: &mut [usize],
        depth: usize,
        threads: usize,
    ) -> usize {
        let axis = depth % self.dims;
        let mid = indices.len() / 2;
        indices.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a * self.dims + axis]
                .partial_cmp(&self.points[b * self.dims + axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let point = indices[mid];
        let root_slot = offset + mid;

        let (left_indices, rest) = indices.split_at_mut(mid);
        let right_indices = &mut rest[1..];
        let (left_nodes, rest_nodes) = nodes.split_at_mut(mid);
        let right_nodes = &mut rest_nodes[1..];

        let left;
        let right;
        if threads > 1 && left_indices.len() > 256 && right_indices.len() > 256 {
            let mut right_builder = Builder { points: self.points, dims: self.dims };
            let right_offset = offset + mid + 1;
            let (l, r) = std::thread::scope(|scope| {
                let handle = scope.spawn(move || {
                    if right_indices.is_empty() {
                        None
                    } else {
                        Some(right_builder.build_range(
                            right_nodes,
                            right_offset,
                            right_indices,
                            depth + 1,
                            threads / 2,
                        ))
                    }
                });
                let l = if left_indices.is_empty() {
                    None
                } else {
                    Some(self.build_range(
                        left_nodes,
                        offset,
                        left_indices,
                        depth + 1,
                        threads - threads / 2,
                    ))
                };
                (l, handle.join().expect("kd-tree build worker panicked"))
            });
            left = l;
            right = r;
        } else {
            left = if left_indices.is_empty() {
                None
            } else {
                Some(self.build_range(left_nodes, offset, left_indices, depth + 1, 1))
            };
            right = if right_indices.is_empty() {
                None
            } else {
                Some(self.build_range(right_nodes, offset + mid + 1, right_indices, depth + 1, 1))
            };
        }

        nodes[mid] = Node { point, axis, left, right };
        // Note: `nodes` here is the *local* slice whose element `mid` is the
        // subtree root located at arena index `root_slot`.
        root_slot
    }
}

/// Configuration of a kd-tree workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KdTreeConfig {
    /// Neighbours per kNN query.
    pub neighbors: usize,
    /// Buckets of the kth-neighbour distance histogram (the reduction
    /// elements of the merging phase).
    pub buckets: usize,
    /// Thread cap of the tree-construction kernel (MineBench's tree build has
    /// limited parallelism).
    pub max_tree_build_threads: usize,
    /// How the per-thread histograms are merged.
    pub reduction: ReductionStrategy,
}

impl Default for KdTreeConfig {
    fn default() -> Self {
        KdTreeConfig {
            neighbors: 8,
            buckets: 64,
            max_tree_build_threads: 4,
            reduction: ReductionStrategy::SerialLinear,
        }
    }
}

/// Result of a kd-tree workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KdTreeResult {
    /// Histogram of kth-neighbour distances over all points.
    pub histogram: Vec<f64>,
    /// Mean kth-neighbour distance.
    pub mean_kth_distance: f64,
    /// Number of kNN queries executed (= number of points).
    pub queries: usize,
}

/// The kd-tree workload: build + all-points kNN characterisation.
#[derive(Debug, Clone)]
pub struct KdTreeWorkload {
    config: KdTreeConfig,
}

impl KdTreeWorkload {
    /// Create a workload with the given configuration.
    pub fn new(config: KdTreeConfig) -> Self {
        assert!(config.neighbors > 0, "neighbors must be positive");
        assert!(config.buckets > 0, "buckets must be positive");
        assert!(config.max_tree_build_threads > 0, "tree build threads must be positive");
        KdTreeWorkload { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KdTreeConfig {
        &self.config
    }

    /// The phase-graph view of this workload over `data`, ready for a
    /// [`PhaseScheduler`].
    pub fn phased<'a>(&'a self, data: &'a Dataset) -> PhasedKdTree<'a> {
        PhasedKdTree { workload: self, data }
    }

    /// Run the workload on `data` with `threads` worker threads, recording
    /// phases into `profiler` (executed through the phase-graph scheduler).
    pub fn run(&self, data: &Dataset, threads: usize, profiler: &Profiler) -> KdTreeResult {
        PhaseScheduler::new(threads).run(&self.phased(data), profiler).output
    }

    /// Convenience: run without instrumentation.
    pub fn run_uninstrumented(&self, data: &Dataset, threads: usize) -> KdTreeResult {
        PhaseScheduler::new(threads).run_uninstrumented(&self.phased(data)).output
    }
}

/// [`KdTreeWorkload`] expressed as a phase-graph workload.
pub struct PhasedKdTree<'a> {
    workload: &'a KdTreeWorkload,
    data: &'a Dataset,
}

/// State of a scheduled kd-tree workload run.
#[derive(Default)]
pub struct KdTreeState {
    /// Bucket width of the distance histogram (from the data extent).
    scale: f64,
    histogram: Vec<f64>,
    mean_kth_distance: f64,
}

impl PhasedWorkload for PhasedKdTree<'_> {
    type State = KdTreeState;
    type Output = KdTreeResult;

    fn name(&self) -> &str {
        "kdtree"
    }

    fn graph(&self) -> PhaseGraph {
        PhaseGraph::builder(1)
            .init("measure-extent")
            .parallel_limited("build-kdtree", self.workload.config.max_tree_build_threads)
            .parallel("knn-histogram")
            .reduction("merge-histograms")
            .serial("summarize")
            .build()
            .expect("kd-tree phase graph is valid")
    }

    fn init(&self, exec: &PhaseExec<'_>) -> KdTreeState {
        let data = self.data;
        // Histogram bucket width from the bounding-box diagonal, so bucket
        // indices are deterministic and independent of the thread count.
        let scale = exec.init("measure-extent", || {
            let d = data.dims();
            let n = data.len();
            if n == 0 {
                return 1.0;
            }
            let mut lo = vec![f64::MAX; d];
            let mut hi = vec![f64::MIN; d];
            for i in 0..n {
                for (dd, &v) in data.point(i).iter().enumerate() {
                    lo[dd] = lo[dd].min(v);
                    hi[dd] = hi[dd].max(v);
                }
            }
            let diagonal: f64 =
                lo.iter().zip(hi.iter()).map(|(a, b)| (b - a) * (b - a)).sum::<f64>().sqrt();
            (diagonal / self.workload.config.buckets as f64).max(f64::MIN_POSITIVE)
        });
        KdTreeState { scale, histogram: Vec::new(), mean_kth_distance: 0.0 }
    }

    fn iteration(&self, state: &mut KdTreeState, exec: &PhaseExec<'_>, _iter: usize) -> Control {
        let data = self.data;
        let n = data.len();
        let k = self.workload.config.neighbors.min(n.saturating_sub(1)).max(1);
        let buckets = self.workload.config.buckets;
        let scale = state.scale;

        // -------- Limited-scaling kernel: tree construction. -----------------
        let tree = exec.parallel_task("build-kdtree", |build_threads| {
            KdTree::build(data.values(), data.dims(), build_threads)
        });

        // -------- Parallel phase: all-points kNN with per-thread histograms. -
        // Partial layout: [bucket counts (buckets) | distance sum].
        let partials = exec.parallel("knn-histogram", n, |_ctx, range| {
            let mut partial = vec![0.0f64; buckets + 1];
            for i in range {
                let neighbors = tree.knn(data.point(i), k, Some(i));
                let dist = neighbors.last().map(|nb| nb.dist2.sqrt()).unwrap_or(0.0);
                let bucket = ((dist / scale) as usize).min(buckets - 1);
                partial[bucket] += 1.0;
                partial[buckets] += dist;
            }
            partial
        });

        // -------- Merging phase: reduce the per-thread histograms. -----------
        let (merged, _stats) =
            exec.reduce("merge-histograms", &partials, self.workload.config.reduction);

        // -------- Constant serial phase: summary statistics. -----------------
        let (histogram, mean) = exec.serial("summarize", || {
            let mean = if n > 0 { merged[buckets] / n as f64 } else { 0.0 };
            (merged[..buckets].to_vec(), mean)
        });
        state.histogram = histogram;
        state.mean_kth_distance = mean;
        Control::Break
    }

    fn finalize(&self, state: KdTreeState, _exec: &PhaseExec<'_>) -> KdTreeResult {
        KdTreeResult {
            histogram: state.histogram,
            mean_kth_distance: state.mean_kth_distance,
            queries: self.data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dims).map(|_| rng.gen_range(-5.0..5.0)).collect()
    }

    fn brute_force_knn(
        points: &[f64],
        dims: usize,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        let n = points.len() / dims;
        let mut all: Vec<Neighbor> = (0..n)
            .filter(|&i| Some(i) != exclude)
            .map(|i| {
                let dist2 = points[i * dims..(i + 1) * dims]
                    .iter()
                    .zip(query.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                Neighbor { index: i, dist2 }
            })
            .collect();
        all.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let dims = 3;
        let points = random_points(500, dims, 11);
        let tree = KdTree::build(&points, dims, 1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let q: Vec<f64> = (0..dims).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let got = tree.knn(&q, 8, None);
            let expect = brute_force_knn(&points, dims, &q, 8, None);
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g.dist2 - e.dist2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn knn_excludes_the_query_point() {
        let dims = 2;
        let points = random_points(200, dims, 3);
        let tree = KdTree::build(&points, dims, 1);
        for i in [0usize, 17, 199] {
            let q = &points[i * dims..(i + 1) * dims];
            let got = tree.knn(q, 5, Some(i));
            assert!(got.iter().all(|n| n.index != i));
            let expect = brute_force_knn(&points, dims, q, 5, Some(i));
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g.dist2 - e.dist2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial_build_results() {
        let dims = 3;
        let points = random_points(3000, dims, 21);
        let serial = KdTree::build(&points, dims, 1);
        let parallel = KdTree::build(&points, dims, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..25 {
            let q: Vec<f64> = (0..dims).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let a = serial.knn(&q, 6, None);
            let b = parallel.knn(&q, 6, None);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.dist2 - y.dist2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn neighbours_are_sorted_by_distance() {
        let dims = 2;
        let points = random_points(300, dims, 8);
        let tree = KdTree::build(&points, dims, 2);
        let got = tree.knn(&[0.0, 0.0], 10, None);
        for w in got.windows(2) {
            assert!(w[0].dist2 <= w[1].dist2);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let points: Vec<f64> = Vec::new();
        let tree = KdTree::build(&points, 3, 4);
        assert!(tree.is_empty());
        assert!(tree.knn(&[0.0, 0.0, 0.0], 3, None).is_empty());

        let single = vec![1.0, 2.0];
        let tree = KdTree::build(&single, 2, 4);
        assert_eq!(tree.len(), 1);
        let n = tree.knn(&[0.0, 0.0], 3, None);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].index, 0);
    }

    #[test]
    fn k_larger_than_point_count_returns_all() {
        let dims = 2;
        let points = random_points(10, dims, 4);
        let tree = KdTree::build(&points, dims, 1);
        let got = tree.knn(&[0.0, 0.0], 50, None);
        assert_eq!(got.len(), 10);
    }

    #[test]
    #[should_panic]
    fn query_dimension_mismatch_panics() {
        let points = random_points(10, 3, 4);
        let tree = KdTree::build(&points, 3, 1);
        tree.knn(&[0.0, 0.0], 2, None);
    }

    #[test]
    fn workload_histogram_counts_every_point() {
        let data = crate::data::DatasetSpec::new(500, 3, 3, 23).generate();
        let w = KdTreeWorkload::new(KdTreeConfig::default());
        let r = w.run_uninstrumented(&data, 4);
        assert_eq!(r.queries, 500);
        assert_eq!(r.histogram.len(), KdTreeConfig::default().buckets);
        assert_eq!(r.histogram.iter().sum::<f64>(), 500.0);
        assert!(r.mean_kth_distance > 0.0);
    }

    #[test]
    fn workload_result_is_thread_count_independent() {
        let data = crate::data::DatasetSpec::new(400, 2, 2, 9).generate();
        let w = KdTreeWorkload::new(KdTreeConfig::default());
        let base = w.run_uninstrumented(&data, 1);
        for threads in [2usize, 4, 8] {
            let r = w.run_uninstrumented(&data, threads);
            assert_eq!(r.histogram, base.histogram, "threads={threads}");
            assert!((r.mean_kth_distance - base.mean_kth_distance).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_records_all_phase_kinds() {
        use mp_profile::PhaseKind;
        let data = crate::data::DatasetSpec::new(600, 3, 3, 31).generate();
        let w = KdTreeWorkload::new(KdTreeConfig::default());
        let profiler = Profiler::new("kdtree", 4);
        w.run(&data, 4, &profiler);
        let profile = profiler.finish();
        assert!(profile.time_in(PhaseKind::Init) >= 0.0);
        assert!(profile.parallel_time() > 0.0);
        assert!(profile.reduction_time() >= 0.0);
        assert!(profile.constant_serial_time() >= 0.0);
    }

    #[test]
    fn workload_reduction_strategy_does_not_change_the_histogram() {
        let data = crate::data::DatasetSpec::new(300, 3, 3, 5).generate();
        let base = KdTreeWorkload::new(KdTreeConfig::default()).run_uninstrumented(&data, 4);
        for strategy in ReductionStrategy::all() {
            let r = KdTreeWorkload::new(KdTreeConfig {
                reduction: strategy,
                ..KdTreeConfig::default()
            })
            .run_uninstrumented(&data, 4);
            assert_eq!(r.histogram, base.histogram, "{strategy:?}");
        }
    }

    #[test]
    #[should_panic]
    fn workload_rejects_zero_neighbors() {
        KdTreeWorkload::new(KdTreeConfig { neighbors: 0, ..KdTreeConfig::default() });
    }

    #[test]
    fn duplicate_points_are_handled() {
        let dims = 2;
        let mut points = vec![1.0, 1.0];
        for _ in 0..20 {
            points.extend_from_slice(&[1.0, 1.0]);
        }
        points.extend_from_slice(&[3.0, 3.0]);
        let tree = KdTree::build(&points, dims, 1);
        let got = tree.knn(&[1.0, 1.0], 5, None);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|n| n.dist2 == 0.0));
    }
}
