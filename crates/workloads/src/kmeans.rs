//! Parallel k-means clustering with an explicit, instrumented merging phase.
//!
//! The phase structure mirrors MineBench's kmeans (and paper Algorithm 1):
//!
//! 1. **Init** — choose the initial centres (the first `C` points, as the
//!    MineBench code does), allocate accumulators.
//! 2. **Parallel phase** — every thread assigns its chunk of points to the
//!    nearest centre and accumulates *partial* per-cluster sums and counts.
//! 3. **Merging phase (reduction)** — the per-thread partial sums/counts are
//!    combined with the configured [`ReductionStrategy`]; this is the phase
//!    whose cost grows with the thread count.
//! 4. **Constant serial phase** — new centres are computed from the merged
//!    accumulators and convergence is checked; this work depends only on
//!    `C·D`, not on the thread count.
//!
//! Steps 2–4 repeat until the assignment change rate drops below the threshold
//! or the iteration limit is reached.

use serde::{Deserialize, Serialize};

use mp_par::pool::chunk_range;
use mp_par::reduce::ReductionStrategy;
use mp_profile::Profiler;
use mp_runtime::{Control, PhaseExec, PhaseGraph, PhaseScheduler, PhasedWorkload};

use crate::data::Dataset;

/// Configuration of a k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters to fit (MineBench uses the data set's natural count).
    pub clusters: usize,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence threshold: the fraction of points allowed to change cluster
    /// in the final iteration (MineBench default 0.001).
    pub threshold: f64,
    /// How the per-thread partial results are merged.
    pub reduction: ReductionStrategy,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            clusters: 8,
            max_iters: 50,
            threshold: 1e-3,
            reduction: ReductionStrategy::SerialLinear,
        }
    }
}

impl KMeansConfig {
    /// Configuration matching the data set's generating cluster count.
    pub fn for_dataset(ds: &Dataset) -> Self {
        KMeansConfig { clusters: ds.clusters(), ..Default::default() }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Final cluster centres, row-major `clusters × dims`.
    pub centers: Vec<f64>,
    /// Final cluster assignment of every point.
    pub assignments: Vec<usize>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Sum of squared distances of every point to its assigned centre.
    pub sse: f64,
}

/// The k-means workload.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

/// Find the nearest centre to `point` among `centers` (row-major, `k × d`).
/// Returns `(index, squared distance)`.
#[inline]
fn nearest_center(point: &[f64], centers: &[f64], k: usize, d: usize) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::MAX;
    for c in 0..k {
        let center = &centers[c * d..(c + 1) * d];
        let mut dist = 0.0;
        for (a, b) in point.iter().zip(center.iter()) {
            let diff = a - b;
            dist += diff * diff;
        }
        if dist < best_d {
            best_d = dist;
            best = c;
        }
    }
    (best, best_d)
}

impl KMeans {
    /// Create a workload with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        assert!(config.clusters > 0, "clusters must be positive");
        assert!(config.max_iters > 0, "max_iters must be positive");
        KMeans { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// The phase-graph view of this workload over `data`, ready for a
    /// [`PhaseScheduler`].
    pub fn phased<'a>(&'a self, data: &'a Dataset) -> PhasedKMeans<'a> {
        PhasedKMeans { workload: self, data }
    }

    /// Run k-means on `data` with `threads` worker threads, recording phases
    /// into `profiler` (executed through the phase-graph scheduler).
    pub fn run(&self, data: &Dataset, threads: usize, profiler: &Profiler) -> KMeansResult {
        PhaseScheduler::new(threads).run(&self.phased(data), profiler).output
    }

    /// Convenience: run without instrumentation.
    pub fn run_uninstrumented(&self, data: &Dataset, threads: usize) -> KMeansResult {
        PhaseScheduler::new(threads).run_uninstrumented(&self.phased(data)).output
    }
}

/// [`KMeans`] expressed as a phase-graph workload: one parallel
/// assign-and-accumulate kernel, the merging phase over per-thread partials,
/// and a constant serial centre recomputation, repeated until convergence.
pub struct PhasedKMeans<'a> {
    workload: &'a KMeans,
    data: &'a Dataset,
}

/// Loop state of a scheduled k-means run.
pub struct KMeansState {
    k: usize,
    centers: Vec<f64>,
    chunk_assignments: Vec<Vec<usize>>,
    iterations: usize,
    sse: f64,
}

impl PhasedWorkload for PhasedKMeans<'_> {
    type State = KMeansState;
    type Output = KMeansResult;

    fn name(&self) -> &str {
        "kmeans"
    }

    fn graph(&self) -> PhaseGraph {
        PhaseGraph::builder(self.workload.config.max_iters)
            .init("init-centers")
            .parallel("assign-and-accumulate")
            .reduction("merge-partials")
            .serial("recompute-centers")
            .build()
            .expect("kmeans phase graph is valid")
    }

    fn init(&self, exec: &PhaseExec<'_>) -> KMeansState {
        let data = self.data;
        let n = data.len();
        let d = data.dims();
        let k = self.workload.config.clusters.min(n);

        // First-k-points seeding (MineBench behaviour).
        let centers = exec.init("init-centers", || {
            let mut c = Vec::with_capacity(k * d);
            for i in 0..k {
                c.extend_from_slice(data.point(i));
            }
            c
        });

        // Per-thread (chunked) assignment state: chunk boundaries are the
        // deterministic static chunks of the scheduler's fork-join, so each
        // thread compares against and replaces only its own slice across
        // iterations.
        let chunk_assignments: Vec<Vec<usize>> = (0..exec.threads())
            .map(|tid| vec![usize::MAX; chunk_range(tid, exec.threads(), n).len()])
            .collect();

        KMeansState { k, centers, chunk_assignments, iterations: 0, sse: 0.0 }
    }

    fn iteration(&self, state: &mut KMeansState, exec: &PhaseExec<'_>, _iter: usize) -> Control {
        let data = self.data;
        let n = data.len();
        let d = data.dims();
        let k = state.k;
        // Flat partial layout: [sums (k·d) | counts (k) | changed | sse].
        let partial_len = k * d + k + 2;

        // -------- Parallel phase: assignment + partial accumulation. ---------
        let centers = &state.centers;
        let previous_chunks = &state.chunk_assignments;
        let outputs = exec.parallel("assign-and-accumulate", n, |ctx, range| {
            let previous = &previous_chunks[ctx.tid];
            let mut partial = vec![0.0f64; partial_len];
            let mut local_assign = Vec::with_capacity(range.len());
            {
                let (sums, rest) = partial.split_at_mut(k * d);
                let (counts, tail) = rest.split_at_mut(k);
                for (local_idx, i) in range.enumerate() {
                    let point = data.point(i);
                    let (best, best_d) = nearest_center(point, centers, k, d);
                    if previous[local_idx] != best {
                        tail[0] += 1.0;
                    }
                    tail[1] += best_d;
                    counts[best] += 1.0;
                    for (s, p) in sums[best * d..(best + 1) * d].iter_mut().zip(point.iter()) {
                        *s += *p;
                    }
                    local_assign.push(best);
                }
            }
            (partial, local_assign)
        });

        let mut partials = Vec::with_capacity(outputs.len());
        let mut new_chunks = Vec::with_capacity(outputs.len());
        for (partial, local) in outputs {
            partials.push(partial);
            new_chunks.push(local);
        }
        state.chunk_assignments = new_chunks;

        // -------- Merging phase: reduce the per-thread partials. -------------
        let (merged, _stats) =
            exec.reduce("merge-partials", &partials, self.workload.config.reduction);

        // -------- Constant serial phase: recompute centres, convergence. -----
        let (new_centers, changed_fraction, new_sse) = exec.serial("recompute-centers", || {
            let mut new_centers = state.centers.clone();
            for c in 0..k {
                let count = merged[k * d + c];
                if count > 0.0 {
                    for dd in 0..d {
                        new_centers[c * d + dd] = merged[c * d + dd] / count;
                    }
                }
            }
            let changed = merged[k * d + k];
            let sse_total = merged[k * d + k + 1];
            (new_centers, changed / n as f64, sse_total)
        });

        state.centers = new_centers;
        state.sse = new_sse;
        state.iterations += 1;

        if changed_fraction <= self.workload.config.threshold {
            Control::Break
        } else {
            Control::Continue
        }
    }

    fn finalize(&self, state: KMeansState, _exec: &PhaseExec<'_>) -> KMeansResult {
        let assignments: Vec<usize> = state.chunk_assignments.into_iter().flatten().collect();
        KMeansResult {
            centers: state.centers,
            assignments,
            iterations: state.iterations,
            sse: state.sse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DatasetSpec;
    use mp_profile::PhaseKind;

    fn tiny_data() -> Dataset {
        DatasetSpec::new(600, 4, 3, 7).generate()
    }

    #[test]
    fn kmeans_converges_on_separable_data() {
        let data = tiny_data();
        let km = KMeans::new(KMeansConfig::for_dataset(&data));
        let result = km.run_uninstrumented(&data, 4);
        assert!(result.iterations <= 50);
        assert_eq!(result.centers.len(), 3 * 4);
        assert_eq!(result.assignments.len(), 600);
        // SSE per point should be bounded for well-separated Gaussians (σ≈0.5);
        // first-k-points seeding can land in a poor local optimum, so this is a
        // sanity bound rather than a tight one.
        assert!(result.sse / 600.0 < 10.0, "sse/point = {}", result.sse / 600.0);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let data = tiny_data();
        let km = KMeans::new(KMeansConfig::for_dataset(&data));
        let r1 = km.run_uninstrumented(&data, 1);
        for threads in [2usize, 3, 8] {
            let rt = km.run_uninstrumented(&data, threads);
            assert_eq!(r1.iterations, rt.iterations, "threads={threads}");
            for (a, b) in r1.centers.iter().zip(rt.centers.iter()) {
                assert!((a - b).abs() < 1e-6, "threads={threads}");
            }
            assert_eq!(r1.assignments, rt.assignments, "threads={threads}");
        }
    }

    #[test]
    fn result_is_independent_of_reduction_strategy() {
        let data = tiny_data();
        let mut config = KMeansConfig::for_dataset(&data);
        let baseline = KMeans::new(config).run_uninstrumented(&data, 4);
        for strategy in ReductionStrategy::all() {
            config.reduction = strategy;
            let r = KMeans::new(config).run_uninstrumented(&data, 4);
            for (a, b) in baseline.centers.iter().zip(r.centers.iter()) {
                assert!((a - b).abs() < 1e-6, "{strategy:?}");
            }
        }
    }

    #[test]
    fn recovered_centers_match_generating_centers() {
        let data = DatasetSpec::new(3000, 3, 4, 11).generate();
        let km = KMeans::new(KMeansConfig::for_dataset(&data));
        let result = km.run_uninstrumented(&data, 4);
        // Every generating centre should have a fitted centre within ~3σ.
        for c in 0..4 {
            let truth = &data.true_centers()[c * 3..(c + 1) * 3];
            let min_d2 = (0..4)
                .map(|f| {
                    result.centers[f * 3..(f + 1) * 3]
                        .iter()
                        .zip(truth.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                })
                .fold(f64::MAX, f64::min);
            assert!(min_d2 < 2.25, "generating centre {c} unmatched (d2={min_d2})");
        }
    }

    #[test]
    fn profiler_records_all_phase_kinds() {
        let data = tiny_data();
        let km = KMeans::new(KMeansConfig::for_dataset(&data));
        let profiler = Profiler::new("kmeans", 4);
        km.run(&data, 4, &profiler);
        let profile = profiler.finish();
        assert!(profile.time_in(PhaseKind::Init) >= 0.0);
        assert!(profile.parallel_time() > 0.0);
        assert!(profile.reduction_time() > 0.0);
        assert!(profile.constant_serial_time() > 0.0);
        assert!(profile.parallel_fraction() > 0.5);
    }

    #[test]
    fn single_cluster_degenerates_to_mean() {
        let data = tiny_data();
        let km = KMeans::new(KMeansConfig { clusters: 1, ..KMeansConfig::default() });
        let result = km.run_uninstrumented(&data, 2);
        let d = data.dims();
        let mut mean = vec![0.0; d];
        for i in 0..data.len() {
            for (m, v) in mean.iter_mut().zip(data.point(i).iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= data.len() as f64;
        }
        for (a, b) in result.centers.iter().zip(mean.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(result.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn more_threads_than_points_is_handled() {
        let data = DatasetSpec::new(10, 2, 2, 3).generate();
        let km = KMeans::new(KMeansConfig { clusters: 2, ..Default::default() });
        let result = km.run_uninstrumented(&data, 16);
        assert_eq!(result.assignments.len(), 10);
    }

    #[test]
    fn sse_decreases_or_holds_between_first_and_last_iteration() {
        // Run with max_iters = 1 and max_iters = default; final SSE must not be
        // larger after more iterations (k-means monotonically improves SSE).
        let data = tiny_data();
        let one = KMeans::new(KMeansConfig { max_iters: 1, clusters: 3, ..Default::default() })
            .run_uninstrumented(&data, 4);
        let full = KMeans::new(KMeansConfig { clusters: 3, ..Default::default() })
            .run_uninstrumented(&data, 4);
        assert!(full.sse <= one.sse + 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let data = tiny_data();
        KMeans::new(KMeansConfig::default()).run_uninstrumented(&data, 0);
    }

    #[test]
    #[should_panic]
    fn zero_clusters_rejected() {
        KMeans::new(KMeansConfig { clusters: 0, ..Default::default() });
    }
}
