//! A uniform driver for running the clustering workloads across thread counts.
//!
//! The paper's characterisation experiments (Figure 2, Tables II and IV) need
//! the same procedure for every application: run it at 1, 2, 4, … threads,
//! record the phase profile of each run, and feed the set of profiles to the
//! parameter extraction. [`ClusteringWorkload`] wraps the applications behind
//! one interface — every run goes through the `mp-runtime` phase-graph
//! scheduler — and [`run_sweep`] produces exactly that set of profiles, while
//! [`ClusteringWorkload::run_with_sink`] streams the scheduler's records
//! directly into any [`RecordSink`] (e.g. a
//! [`mp_profile::StreamingExtractor`]) without materialising profiles at all.

use serde::{Deserialize, Serialize};

use mp_par::reduce::ReductionStrategy;
use mp_profile::stream::RecordSink;
use mp_profile::{Profiler, RunProfile};
use mp_runtime::PhaseScheduler;

use crate::data::Dataset;
use crate::fuzzy::{FuzzyCMeans, FuzzyConfig};
use crate::hop::{Hop, HopConfig};
use crate::kdtree::{KdTreeConfig, KdTreeWorkload};
use crate::kmeans::{KMeans, KMeansConfig};

/// Which clustering application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// k-means (paper Algorithm 1 structure).
    KMeans,
    /// fuzzy c-means.
    Fuzzy,
    /// HOP density-based clustering.
    Hop,
    /// The kd-tree build + all-points kNN scenario (hop's tree kernel,
    /// isolated).
    KdTree,
}

impl WorkloadKind {
    /// Short name used in profiles and reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::KMeans => "kmeans",
            WorkloadKind::Fuzzy => "fuzzy",
            WorkloadKind::Hop => "hop",
            WorkloadKind::KdTree => "kdtree",
        }
    }

    /// All kinds: the paper's three applications in paper order, then the
    /// kd-tree scenario.
    pub fn all() -> [WorkloadKind; 4] {
        [WorkloadKind::KMeans, WorkloadKind::Fuzzy, WorkloadKind::Hop, WorkloadKind::KdTree]
    }

    /// The three applications the paper characterises, in paper order.
    pub fn paper() -> [WorkloadKind; 3] {
        [WorkloadKind::KMeans, WorkloadKind::Fuzzy, WorkloadKind::Hop]
    }
}

/// A fully configured clustering job: an application, its configuration and a
/// data set.
#[derive(Debug, Clone)]
pub struct ClusteringWorkload {
    kind: WorkloadKind,
    dataset: Dataset,
    kmeans: KMeansConfig,
    fuzzy: FuzzyConfig,
    hop: HopConfig,
    kdtree: KdTreeConfig,
}

impl ClusteringWorkload {
    fn with_defaults(kind: WorkloadKind, dataset: Dataset) -> Self {
        ClusteringWorkload {
            kind,
            dataset,
            kmeans: KMeansConfig::default(),
            fuzzy: FuzzyConfig::default(),
            hop: HopConfig::default(),
            kdtree: KdTreeConfig::default(),
        }
    }

    /// A k-means job over `dataset` with the default configuration for that
    /// data set.
    pub fn kmeans(dataset: Dataset) -> Self {
        let kmeans = KMeansConfig::for_dataset(&dataset);
        ClusteringWorkload { kmeans, ..Self::with_defaults(WorkloadKind::KMeans, dataset) }
    }

    /// A fuzzy c-means job over `dataset` with the default configuration for
    /// that data set.
    pub fn fuzzy(dataset: Dataset) -> Self {
        let fuzzy = FuzzyConfig::for_dataset(&dataset);
        ClusteringWorkload { fuzzy, ..Self::with_defaults(WorkloadKind::Fuzzy, dataset) }
    }

    /// A HOP job over `dataset` with the default configuration.
    pub fn hop(dataset: Dataset) -> Self {
        Self::with_defaults(WorkloadKind::Hop, dataset)
    }

    /// A kd-tree build/query job over `dataset` with the default
    /// configuration.
    pub fn kdtree(dataset: Dataset) -> Self {
        Self::with_defaults(WorkloadKind::KdTree, dataset)
    }

    /// Build a job of `kind` over `dataset` with default configurations.
    pub fn of_kind(kind: WorkloadKind, dataset: Dataset) -> Self {
        match kind {
            WorkloadKind::KMeans => Self::kmeans(dataset),
            WorkloadKind::Fuzzy => Self::fuzzy(dataset),
            WorkloadKind::Hop => Self::hop(dataset),
            WorkloadKind::KdTree => Self::kdtree(dataset),
        }
    }

    /// The application kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The data set in use.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Override the reduction strategy used by the element-wise merging
    /// phases (kmeans, fuzzy, kdtree; hop's hashed merge has no strategy
    /// axis).
    pub fn with_reduction(mut self, strategy: ReductionStrategy) -> Self {
        self.kmeans.reduction = strategy;
        self.fuzzy.reduction = strategy;
        self.kdtree.reduction = strategy;
        self
    }

    /// Override the kmeans configuration.
    pub fn with_kmeans_config(mut self, config: KMeansConfig) -> Self {
        self.kmeans = config;
        self
    }

    /// Override the fuzzy configuration.
    pub fn with_fuzzy_config(mut self, config: FuzzyConfig) -> Self {
        self.fuzzy = config;
        self
    }

    /// Override the HOP configuration.
    pub fn with_hop_config(mut self, config: HopConfig) -> Self {
        self.hop = config;
        self
    }

    /// Override the kd-tree configuration.
    pub fn with_kdtree_config(mut self, config: KdTreeConfig) -> Self {
        self.kdtree = config;
        self
    }

    /// Run the job once at `threads` threads through the phase-graph
    /// scheduler, streaming every instrumented record into `sink`.
    pub fn run_with_sink(&self, threads: usize, sink: &dyn RecordSink) {
        let scheduler = PhaseScheduler::new(threads);
        match self.kind {
            WorkloadKind::KMeans => {
                scheduler.run(&KMeans::new(self.kmeans).phased(&self.dataset), sink);
            }
            WorkloadKind::Fuzzy => {
                scheduler.run(&FuzzyCMeans::new(self.fuzzy).phased(&self.dataset), sink);
            }
            WorkloadKind::Hop => {
                scheduler.run(&Hop::new(self.hop).phased(&self.dataset), sink);
            }
            WorkloadKind::KdTree => {
                scheduler.run(&KdTreeWorkload::new(self.kdtree).phased(&self.dataset), sink);
            }
        }
    }

    /// Run the job once at `threads` threads and return its phase profile.
    pub fn run_profiled(&self, threads: usize) -> RunProfile {
        let profiler = Profiler::new(self.kind.name(), threads);
        self.run_with_sink(threads, &profiler);
        profiler.finish()
    }

    /// Run the job once at `threads` threads without instrumentation (used by
    /// wall-clock benchmarks).
    pub fn run_uninstrumented(&self, threads: usize) {
        self.run_with_sink(threads, &mp_profile::NullSink);
    }
}

/// Run the job at every thread count in `thread_counts` and collect the
/// profiles (the input expected by `mp_profile::extract_params`).
pub fn run_sweep(workload: &ClusteringWorkload, thread_counts: &[usize]) -> Vec<RunProfile> {
    thread_counts.iter().map(|&t| workload.run_profiled(t)).collect()
}

/// The default thread sweep used by the characterisation experiments:
/// powers of two from 1 up to `max` (inclusive when `max` is a power of two).
pub fn default_thread_sweep(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut t = 1usize;
    while t <= max {
        v.push(t);
        t *= 2;
    }
    if v.last().copied() != Some(max) && max > 1 {
        v.push(max);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DatasetSpec;
    use mp_model::growth::GrowthFunction;
    use mp_profile::extract_params;

    fn tiny() -> Dataset {
        DatasetSpec::new(400, 3, 3, 19).generate()
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(WorkloadKind::KMeans.name(), "kmeans");
        assert_eq!(WorkloadKind::Fuzzy.name(), "fuzzy");
        assert_eq!(WorkloadKind::Hop.name(), "hop");
        assert_eq!(WorkloadKind::KdTree.name(), "kdtree");
        assert_eq!(WorkloadKind::all().len(), 4);
        // The paper's characterisation covers exactly the three MineBench
        // applications, in paper order.
        assert_eq!(
            WorkloadKind::paper(),
            [WorkloadKind::KMeans, WorkloadKind::Fuzzy, WorkloadKind::Hop]
        );
    }

    #[test]
    fn default_thread_sweep_is_powers_of_two() {
        assert_eq!(default_thread_sweep(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(default_thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(default_thread_sweep(1), vec![1]);
    }

    #[test]
    fn run_profiled_produces_named_profiles() {
        for kind in WorkloadKind::all() {
            let job = ClusteringWorkload::of_kind(kind, tiny());
            let profile = job.run_profiled(2);
            assert_eq!(profile.app, kind.name());
            assert_eq!(profile.threads, 2);
            assert!(profile.total_time() > 0.0, "{kind:?}");
            assert!(profile.parallel_time() > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn sweep_profiles_feed_parameter_extraction() {
        let job = ClusteringWorkload::kmeans(tiny());
        let profiles = run_sweep(&job, &[1, 2, 4]);
        assert_eq!(profiles.len(), 3);
        let params = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        assert_eq!(params.app, "kmeans");
        assert!(params.f > 0.5, "parallel fraction should dominate, got {}", params.f);
        assert!(params.fcon >= 0.0 && params.fcon <= 1.0);
        assert!(params.fred >= 0.0 && params.fred <= 1.0);
    }

    #[test]
    fn with_reduction_changes_both_iterative_configs() {
        let job = ClusteringWorkload::kmeans(tiny())
            .with_reduction(ReductionStrategy::ParallelPrivatized);
        assert_eq!(job.kmeans.reduction, ReductionStrategy::ParallelPrivatized);
        assert_eq!(job.fuzzy.reduction, ReductionStrategy::ParallelPrivatized);
    }

    #[test]
    fn config_overrides_are_applied() {
        let job = ClusteringWorkload::kmeans(tiny())
            .with_kmeans_config(KMeansConfig { max_iters: 3, ..Default::default() });
        assert_eq!(job.kmeans.max_iters, 3);
        let job = ClusteringWorkload::hop(tiny())
            .with_hop_config(HopConfig { neighbors: 5, ..Default::default() });
        assert_eq!(job.hop.neighbors, 5);
        let job = ClusteringWorkload::fuzzy(tiny())
            .with_fuzzy_config(FuzzyConfig { max_iters: 2, ..Default::default() });
        assert_eq!(job.fuzzy.max_iters, 2);
        let job = ClusteringWorkload::kdtree(tiny())
            .with_kdtree_config(crate::kdtree::KdTreeConfig { neighbors: 3, ..Default::default() });
        assert_eq!(job.kdtree.neighbors, 3);
    }

    #[test]
    fn sweep_streams_into_an_extractor_and_calibrates() {
        use mp_profile::StreamingExtractor;
        let job = ClusteringWorkload::kmeans(tiny());
        let extractor = StreamingExtractor::new(job.kind().name());
        for threads in [1usize, 2, 4] {
            job.run_with_sink(threads, &extractor.run_sink(threads));
        }
        let calibrated = extractor.calibrate().unwrap();
        assert!(calibrated.app_params().f > 0.5, "f = {}", calibrated.app_params().f);
        let split = calibrated.app_params().split;
        assert!(split.fcon >= 0.0 && split.fcon <= 1.0);
        assert!((split.fcon + split.fred - 1.0).abs() < 1e-9);
    }
}
