//! A uniform driver for running the clustering workloads across thread counts.
//!
//! The paper's characterisation experiments (Figure 2, Tables II and IV) need
//! the same procedure for every application: run it at 1, 2, 4, … threads,
//! record the phase profile of each run, and feed the set of profiles to the
//! parameter extraction. [`ClusteringWorkload`] wraps the three applications
//! behind one interface and [`run_sweep`] produces exactly that set.

use serde::{Deserialize, Serialize};

use mp_par::reduce::ReductionStrategy;
use mp_profile::{Profiler, RunProfile};

use crate::data::Dataset;
use crate::fuzzy::{FuzzyCMeans, FuzzyConfig};
use crate::hop::{Hop, HopConfig};
use crate::kmeans::{KMeans, KMeansConfig};

/// Which clustering application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// k-means (paper Algorithm 1 structure).
    KMeans,
    /// fuzzy c-means.
    Fuzzy,
    /// HOP density-based clustering.
    Hop,
}

impl WorkloadKind {
    /// Short name used in profiles and reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::KMeans => "kmeans",
            WorkloadKind::Fuzzy => "fuzzy",
            WorkloadKind::Hop => "hop",
        }
    }

    /// All kinds, in the paper's order.
    pub fn all() -> [WorkloadKind; 3] {
        [WorkloadKind::KMeans, WorkloadKind::Fuzzy, WorkloadKind::Hop]
    }
}

/// A fully configured clustering job: an application, its configuration and a
/// data set.
#[derive(Debug, Clone)]
pub struct ClusteringWorkload {
    kind: WorkloadKind,
    dataset: Dataset,
    kmeans: KMeansConfig,
    fuzzy: FuzzyConfig,
    hop: HopConfig,
}

impl ClusteringWorkload {
    /// A k-means job over `dataset` with the default configuration for that
    /// data set.
    pub fn kmeans(dataset: Dataset) -> Self {
        let kmeans = KMeansConfig::for_dataset(&dataset);
        ClusteringWorkload {
            kind: WorkloadKind::KMeans,
            dataset,
            kmeans,
            fuzzy: FuzzyConfig::default(),
            hop: HopConfig::default(),
        }
    }

    /// A fuzzy c-means job over `dataset` with the default configuration for
    /// that data set.
    pub fn fuzzy(dataset: Dataset) -> Self {
        let fuzzy = FuzzyConfig::for_dataset(&dataset);
        ClusteringWorkload {
            kind: WorkloadKind::Fuzzy,
            dataset,
            kmeans: KMeansConfig::default(),
            fuzzy,
            hop: HopConfig::default(),
        }
    }

    /// A HOP job over `dataset` with the default configuration.
    pub fn hop(dataset: Dataset) -> Self {
        ClusteringWorkload {
            kind: WorkloadKind::Hop,
            dataset,
            kmeans: KMeansConfig::default(),
            fuzzy: FuzzyConfig::default(),
            hop: HopConfig::default(),
        }
    }

    /// Build a job of `kind` over `dataset` with default configurations.
    pub fn of_kind(kind: WorkloadKind, dataset: Dataset) -> Self {
        match kind {
            WorkloadKind::KMeans => Self::kmeans(dataset),
            WorkloadKind::Fuzzy => Self::fuzzy(dataset),
            WorkloadKind::Hop => Self::hop(dataset),
        }
    }

    /// The application kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The data set in use.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Override the reduction strategy used by kmeans/fuzzy merging phases.
    pub fn with_reduction(mut self, strategy: ReductionStrategy) -> Self {
        self.kmeans.reduction = strategy;
        self.fuzzy.reduction = strategy;
        self
    }

    /// Override the kmeans configuration.
    pub fn with_kmeans_config(mut self, config: KMeansConfig) -> Self {
        self.kmeans = config;
        self
    }

    /// Override the fuzzy configuration.
    pub fn with_fuzzy_config(mut self, config: FuzzyConfig) -> Self {
        self.fuzzy = config;
        self
    }

    /// Override the HOP configuration.
    pub fn with_hop_config(mut self, config: HopConfig) -> Self {
        self.hop = config;
        self
    }

    /// Run the job once at `threads` threads and return its phase profile.
    pub fn run_profiled(&self, threads: usize) -> RunProfile {
        let profiler = Profiler::new(self.kind.name(), threads);
        match self.kind {
            WorkloadKind::KMeans => {
                KMeans::new(self.kmeans).run(&self.dataset, threads, &profiler);
            }
            WorkloadKind::Fuzzy => {
                FuzzyCMeans::new(self.fuzzy).run(&self.dataset, threads, &profiler);
            }
            WorkloadKind::Hop => {
                Hop::new(self.hop).run(&self.dataset, threads, &profiler);
            }
        }
        profiler.finish()
    }

    /// Run the job once at `threads` threads without instrumentation (used by
    /// wall-clock benchmarks).
    pub fn run_uninstrumented(&self, threads: usize) {
        let profiler = Profiler::disabled();
        match self.kind {
            WorkloadKind::KMeans => {
                KMeans::new(self.kmeans).run(&self.dataset, threads, &profiler);
            }
            WorkloadKind::Fuzzy => {
                FuzzyCMeans::new(self.fuzzy).run(&self.dataset, threads, &profiler);
            }
            WorkloadKind::Hop => {
                Hop::new(self.hop).run(&self.dataset, threads, &profiler);
            }
        }
    }
}

/// Run the job at every thread count in `thread_counts` and collect the
/// profiles (the input expected by `mp_profile::extract_params`).
pub fn run_sweep(workload: &ClusteringWorkload, thread_counts: &[usize]) -> Vec<RunProfile> {
    thread_counts.iter().map(|&t| workload.run_profiled(t)).collect()
}

/// The default thread sweep used by the characterisation experiments:
/// powers of two from 1 up to `max` (inclusive when `max` is a power of two).
pub fn default_thread_sweep(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut t = 1usize;
    while t <= max {
        v.push(t);
        t *= 2;
    }
    if v.last().copied() != Some(max) && max > 1 {
        v.push(max);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DatasetSpec;
    use mp_model::growth::GrowthFunction;
    use mp_profile::extract_params;

    fn tiny() -> Dataset {
        DatasetSpec::new(400, 3, 3, 19).generate()
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(WorkloadKind::KMeans.name(), "kmeans");
        assert_eq!(WorkloadKind::Fuzzy.name(), "fuzzy");
        assert_eq!(WorkloadKind::Hop.name(), "hop");
        assert_eq!(WorkloadKind::all().len(), 3);
    }

    #[test]
    fn default_thread_sweep_is_powers_of_two() {
        assert_eq!(default_thread_sweep(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(default_thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(default_thread_sweep(1), vec![1]);
    }

    #[test]
    fn run_profiled_produces_named_profiles() {
        for kind in WorkloadKind::all() {
            let job = ClusteringWorkload::of_kind(kind, tiny());
            let profile = job.run_profiled(2);
            assert_eq!(profile.app, kind.name());
            assert_eq!(profile.threads, 2);
            assert!(profile.total_time() > 0.0, "{kind:?}");
            assert!(profile.parallel_time() > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn sweep_profiles_feed_parameter_extraction() {
        let job = ClusteringWorkload::kmeans(tiny());
        let profiles = run_sweep(&job, &[1, 2, 4]);
        assert_eq!(profiles.len(), 3);
        let params = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        assert_eq!(params.app, "kmeans");
        assert!(params.f > 0.5, "parallel fraction should dominate, got {}", params.f);
        assert!(params.fcon >= 0.0 && params.fcon <= 1.0);
        assert!(params.fred >= 0.0 && params.fred <= 1.0);
    }

    #[test]
    fn with_reduction_changes_both_iterative_configs() {
        let job = ClusteringWorkload::kmeans(tiny())
            .with_reduction(ReductionStrategy::ParallelPrivatized);
        assert_eq!(job.kmeans.reduction, ReductionStrategy::ParallelPrivatized);
        assert_eq!(job.fuzzy.reduction, ReductionStrategy::ParallelPrivatized);
    }

    #[test]
    fn config_overrides_are_applied() {
        let job = ClusteringWorkload::kmeans(tiny())
            .with_kmeans_config(KMeansConfig { max_iters: 3, ..Default::default() });
        assert_eq!(job.kmeans.max_iters, 3);
        let job = ClusteringWorkload::hop(tiny())
            .with_hop_config(HopConfig { neighbors: 5, ..Default::default() });
        assert_eq!(job.hop.neighbors, 5);
        let job = ClusteringWorkload::fuzzy(tiny())
            .with_fuzzy_config(FuzzyConfig { max_iters: 2, ..Default::default() });
        assert_eq!(job.fuzzy.max_iters, 2);
    }
}
