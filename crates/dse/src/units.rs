//! Work-unit extraction: sizing a sweep's schedulable units from the live
//! per-scenario evaluation cost.
//!
//! The serving layer's work-stealing scheduler and the engine's cursor
//! layer ([`crate::engine::RangeCursor`]) split index ranges the same way:
//! contiguous, disjoint windows walked in index order, so recombining unit
//! results with the Merge-Path merge ([`crate::merge::merge_runs`]) is
//! bit-identical to evaluating the range in one piece. What this module
//! adds is the *sizing* policy — how many scenarios one unit should carry.
//!
//! Units are deliberately **coarse**. Yavits/Morad/Ginosar's synchronization
//! extension of Amdahl's law (PAPERS.md) is the design guide: every
//! steal/claim is a synchronization point, and with units much smaller than
//! the coordination cost the scheduler would spend its balance win on
//! queue traffic. Targeting a few milliseconds of evaluation per unit keeps
//! the steal rate orders of magnitude below the evaluation rate while still
//! giving an idle worker something to take within one unit's latency.

use std::ops::Range;

use crate::engine::RangeCursor;

/// Evaluation time one work unit should aim to carry, milliseconds.
/// A stolen unit re-balances load within roughly this latency; see the
/// module docs for why it is not smaller.
pub const TARGET_UNIT_MS: f64 = 4.0;

/// Floor on scenarios per unit, whatever the cost model claims — below
/// this the per-unit bookkeeping (queue hop, stats fan-in, merge run)
/// stops being negligible against the evaluation itself.
pub const MIN_UNIT_SCENARIOS: usize = 64;

/// Ceiling on scenarios per unit: one giant unit cannot be stolen, so a
/// cheap-per-scenario space must still decompose into enough units for the
/// idle shards to claim.
pub const MAX_UNIT_SCENARIOS: usize = 8192;

/// Scenarios per work unit for a backend evaluating one scenario in
/// `per_scenario_ms` milliseconds: `TARGET_UNIT_MS` worth of work, clamped
/// to `[MIN_UNIT_SCENARIOS, MAX_UNIT_SCENARIOS]`. A non-positive or
/// non-finite cost (an uncalibrated or polluted model) falls back to the
/// ceiling — oversized units degrade balance, never correctness.
pub fn unit_span(per_scenario_ms: f64) -> usize {
    if !per_scenario_ms.is_finite() || per_scenario_ms <= 0.0 {
        return MAX_UNIT_SCENARIOS;
    }
    let raw = TARGET_UNIT_MS / per_scenario_ms;
    if raw >= MAX_UNIT_SCENARIOS as f64 {
        return MAX_UNIT_SCENARIOS;
    }
    (raw as usize).clamp(MIN_UNIT_SCENARIOS, MAX_UNIT_SCENARIOS)
}

/// Split `range` into unit-sized work ranges, in index order. Walks the
/// same [`RangeCursor`] the streaming sweep path uses, so unit boundaries
/// and window boundaries are the same kind of object: contiguous, disjoint
/// and exhaustive over `range`. An empty range yields nothing; a range
/// shorter than `span` yields itself (a 1-scenario space is one unit — it
/// is never silently dropped).
pub fn split_units(range: Range<usize>, span: usize) -> Vec<Range<usize>> {
    assert!(span > 0, "unit span must be positive");
    let mut cursor = RangeCursor::new(range, span);
    let mut units = Vec::new();
    while let Some(unit) = cursor.next_window() {
        units.push(unit);
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_span_tracks_cost_within_clamps() {
        // 4 ms target over 1 ms/scenario → clamped up to the floor.
        assert_eq!(unit_span(1.0), MIN_UNIT_SCENARIOS);
        // The default seeded cost (2 µs) lands mid-range: 4 / 0.002 = 2000.
        assert_eq!(unit_span(0.002), 2000);
        // Very cheap scenarios hit the ceiling.
        assert_eq!(unit_span(1e-9), MAX_UNIT_SCENARIOS);
        // Degenerate models fall back to the ceiling, not a panic or 0.
        assert_eq!(unit_span(0.0), MAX_UNIT_SCENARIOS);
        assert_eq!(unit_span(-1.0), MAX_UNIT_SCENARIOS);
        assert_eq!(unit_span(f64::NAN), MAX_UNIT_SCENARIOS);
        assert_eq!(unit_span(f64::INFINITY), MAX_UNIT_SCENARIOS);
    }

    #[test]
    fn split_units_partitions_the_range_exactly() {
        let units = split_units(7..107, 30);
        assert_eq!(units, vec![7..37, 37..67, 67..97, 97..107]);
        // Exhaustive and disjoint: concatenation is the original range.
        let mut walked = 7;
        for unit in &units {
            assert_eq!(unit.start, walked);
            walked = unit.end;
        }
        assert_eq!(walked, 107);
    }

    #[test]
    fn degenerate_splits_yield_whole_or_nothing() {
        assert!(split_units(5..5, 64).is_empty(), "empty range yields no units");
        assert_eq!(split_units(0..1, 8192), vec![0..1], "a 1-scenario space is one unit");
        assert_eq!(split_units(3..10, 100), vec![3..10], "short ranges are one unit");
    }
}
