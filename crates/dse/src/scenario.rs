//! Scenario spaces: cartesian grids and explicit lists of design-space points.
//!
//! A [`ScenarioSpace`] is the cartesian product of seven axes — application
//! parameters, chip budgets, chip designs (core sizes), reduction-overhead
//! growth functions, core performance models, reduction strategies and NoC
//! topologies. Scenarios are never materialised as a collection: the space
//! knows its size and decodes any flat index into a borrowed [`Scenario`]
//! view on demand, so a hundred-million-point space costs as much memory as
//! its axis lists.
//!
//! The decode order places the *design* axis innermost: consecutive indices
//! share the application, growth, performance and strategy axes, which lets
//! batched backends hoist model construction out of their inner loop and
//! keeps a work batch's accesses cache-friendly.

use serde::{Deserialize, Serialize};

use mp_model::chip::ChipBudget;
use mp_model::fingerprint::Fnv64;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::perf::PerfModel;
use mp_model::topology::Topology;
use mp_par::ReductionStrategy;

/// One chip organisation under a budget: the swept core sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChipSpec {
    /// A symmetric CMP of identical cores of `r` BCE.
    Symmetric {
        /// Per-core area in BCE.
        r: f64,
    },
    /// An asymmetric CMP: one `rl`-BCE large core plus `r`-BCE small cores.
    Asymmetric {
        /// Small-core area in BCE.
        r: f64,
        /// Large-core area in BCE.
        rl: f64,
    },
}

impl ChipSpec {
    /// The area reported on sweep axes: `r` for symmetric designs, `rl` for
    /// asymmetric ones (matching the x-axes of the paper's figures).
    pub fn area(&self) -> f64 {
        match self {
            ChipSpec::Symmetric { r } => *r,
            ChipSpec::Asymmetric { rl, .. } => *rl,
        }
    }

    /// Number of cores this spec yields under `budget` (fractional counts are
    /// legal in the analytical models).
    pub fn cores(&self, budget: ChipBudget) -> f64 {
        match self {
            ChipSpec::Symmetric { r } => budget.total_bce() / r,
            ChipSpec::Asymmetric { r, rl } => ((budget.total_bce() - rl) / r).max(0.0) + 1.0,
        }
    }

    /// Whether the spec fits the budget (the engine records unfit combinations
    /// as invalid rather than erroring the whole sweep).
    pub fn fits(&self, budget: ChipBudget) -> bool {
        let total = budget.total_bce();
        match self {
            ChipSpec::Symmetric { r } => *r > 0.0 && *r <= total,
            ChipSpec::Asymmetric { r, rl } => {
                *r > 0.0
                    && *rl >= *r
                    && *rl <= total
                    && (rl + r <= total || (*rl - total).abs() < f64::EPSILON)
            }
        }
    }
}

/// A fully-decoded scenario: one point of the cartesian space, borrowing the
/// heavier axis values from the space.
#[derive(Debug, Clone)]
pub struct Scenario<'a> {
    /// Application parameters.
    pub app: &'a AppParams,
    /// Chip area budget.
    pub budget: ChipBudget,
    /// Chip organisation.
    pub design: ChipSpec,
    /// Reduction-overhead growth function (extended model) / reduction
    /// *computation* growth (communication-aware model).
    pub growth: &'a GrowthFunction,
    /// Core performance model.
    pub perf: PerfModel,
    /// Merge implementation (consumed by the simulation backend).
    pub reduction: ReductionStrategy,
    /// Interconnect topology (consumed by the communication-aware backend).
    pub topology: Topology,
}

impl Scenario<'_> {
    /// Number of cores of the scenario's design.
    pub fn cores(&self) -> f64 {
        self.design.cores(self.budget)
    }

    /// Swept-axis area of the scenario's design.
    pub fn area(&self) -> f64 {
        self.design.area()
    }

    /// Canonical 128-bit fingerprint of the scenario's semantic content, used
    /// as the memoisation-cache key. Two scenarios with identical model inputs
    /// hash identically even across differently-shaped spaces: the key is
    /// computed from parameter *values* (bit patterns with `-0.0`
    /// canonicalised to `0.0`), never from axis indices. `salt` distinguishes
    /// backends.
    ///
    /// The design is folded in *last*, so a batch over the design-innermost
    /// index order can hash the shared axes once via
    /// [`Scenario::canonical_key_prefix`] and derive each design's key from
    /// the saved prefix state — the per-scenario hashing cost of the sweep
    /// hot loop drops from the whole scenario to just the design.
    pub fn canonical_key(&self, salt: &str) -> (u64, u64) {
        self.canonical_key_prefix(salt).key_for(self.design)
    }

    /// Hash every axis but the design, returning a resumable prefix. One
    /// prefix serves a whole run of consecutive designs.
    pub fn canonical_key_prefix(&self, salt: &str) -> CanonicalKeyPrefix {
        let mut hasher = Fnv128::new();
        hasher.write_str(salt);
        hasher.write_f64(self.app.f);
        hasher.write_f64(self.app.split.fcon);
        hasher.write_f64(self.app.split.fred);
        hasher.write_f64(self.app.fored);
        hasher.write_f64(self.app.critical_section);
        hasher.write_f64(self.budget.total_bce());
        match self.growth {
            GrowthFunction::Constant => hasher.write_u8(10),
            GrowthFunction::Linear => hasher.write_u8(11),
            GrowthFunction::Logarithmic => hasher.write_u8(12),
            GrowthFunction::Superlinear(exp) => {
                hasher.write_u8(13);
                hasher.write_f64(*exp);
            }
            GrowthFunction::Measured(points) => {
                hasher.write_u8(14);
                for (x, y) in points {
                    hasher.write_f64(*x);
                    hasher.write_f64(*y);
                }
            }
        }
        match self.perf {
            PerfModel::Pollack => hasher.write_u8(20),
            PerfModel::Linear => hasher.write_u8(21),
            PerfModel::Power(exp) => {
                hasher.write_u8(22);
                hasher.write_f64(exp);
            }
            PerfModel::Logarithmic(k) => {
                hasher.write_u8(23);
                hasher.write_f64(k);
            }
        }
        hasher.write_u8(match self.reduction {
            ReductionStrategy::SerialLinear => 30,
            ReductionStrategy::TreeLog => 31,
            ReductionStrategy::ParallelPrivatized => 32,
        });
        hasher.write_u8(match self.topology {
            Topology::Mesh2D => 40,
            Topology::Torus2D => 41,
            Topology::Ring => 42,
            Topology::Crossbar => 43,
            Topology::Ideal => 44,
        });
        CanonicalKeyPrefix { hasher }
    }
}

/// Saved canonical-key hash state covering every axis but the design. `Copy`,
/// two words: cloning it per design is free.
#[derive(Debug, Clone, Copy)]
pub struct CanonicalKeyPrefix {
    hasher: Fnv128,
}

impl CanonicalKeyPrefix {
    /// The two raw FNV-1a stream states of the prefix. Lane kernels broadcast
    /// these and fold each design's suffix (tag byte + canonicalised area
    /// bits, exactly as [`CanonicalKeyPrefix::key_for`] does) in parallel;
    /// the fold is integer-exact, so lane keys equal scalar keys.
    pub fn state(&self) -> (u64, u64) {
        self.hasher.finish()
    }

    /// Complete the key for one design.
    pub fn key_for(mut self, design: ChipSpec) -> (u64, u64) {
        match design {
            ChipSpec::Symmetric { r } => {
                self.hasher.write_u8(1);
                self.hasher.write_f64(r);
            }
            ChipSpec::Asymmetric { r, rl } => {
                self.hasher.write_u8(2);
                self.hasher.write_f64(r);
                self.hasher.write_f64(rl);
            }
        }
        self.hasher.finish()
    }
}

/// Two independent [`Fnv64`] streams (distinct bases) giving a 128-bit
/// fingerprint; the byte-fold and `-0.0` canonicalisation live in
/// [`mp_model::fingerprint`], shared with the export labels.
#[derive(Debug, Clone, Copy)]
struct Fnv128 {
    a: Fnv64,
    b: Fnv64,
}

impl Fnv128 {
    fn new() -> Self {
        Fnv128 { a: Fnv64::new(), b: Fnv64::with_basis(0x6c62_272e_07bb_0142) }
    }

    fn write_u8(&mut self, byte: u8) {
        self.a.write_u8(byte);
        self.b.write_u8(byte);
    }

    fn write_f64(&mut self, value: f64) {
        self.a.write_f64(value);
        self.b.write_f64(value);
    }

    fn write_str(&mut self, s: &str) {
        self.a.write_str(s);
        self.b.write_str(s);
    }

    fn finish(&self) -> (u64, u64) {
        (self.a.finish(), self.b.finish())
    }
}

/// The cartesian product of the seven scenario axes.
///
/// Build one with the fluent setters, then hand it to
/// [`crate::engine::Engine::sweep`]. Every axis defaults to a single
/// paper-default element, so only the axes being explored need to be set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpace {
    apps: Vec<AppParams>,
    budgets: Vec<f64>,
    designs: Vec<ChipSpec>,
    growths: Vec<GrowthFunction>,
    perfs: Vec<PerfModel>,
    reductions: Vec<ReductionStrategy>,
    topologies: Vec<Topology>,
}

impl Default for ScenarioSpace {
    fn default() -> Self {
        ScenarioSpace::new()
    }
}

impl ScenarioSpace {
    /// A space holding the paper's default single point on every axis
    /// (kmeans parameters, 256 BCE, `r = 1` symmetric, linear growth, Pollack
    /// cores, serial-linear merge, 2-D mesh).
    pub fn new() -> Self {
        ScenarioSpace {
            apps: vec![AppParams::table2_kmeans()],
            budgets: vec![ChipBudget::PAPER_DEFAULT_BCE],
            designs: vec![ChipSpec::Symmetric { r: 1.0 }],
            growths: vec![GrowthFunction::Linear],
            perfs: vec![PerfModel::Pollack],
            reductions: vec![ReductionStrategy::SerialLinear],
            topologies: vec![Topology::Mesh2D],
        }
    }

    /// Set the application axis.
    pub fn with_apps(mut self, apps: Vec<AppParams>) -> Self {
        assert!(!apps.is_empty(), "application axis must not be empty");
        self.apps = apps;
        self
    }

    /// Set the budget axis (total BCE per chip).
    pub fn with_budgets(mut self, budgets: Vec<f64>) -> Self {
        assert!(!budgets.is_empty(), "budget axis must not be empty");
        assert!(budgets.iter().all(|&b| b.is_finite() && b > 0.0), "budgets must be positive");
        self.budgets = budgets;
        self
    }

    /// Set the design axis to an explicit list.
    pub fn with_designs(mut self, designs: Vec<ChipSpec>) -> Self {
        assert!(!designs.is_empty(), "design axis must not be empty");
        self.designs = designs;
        self
    }

    /// Append a symmetric-design grid over the given per-core areas.
    pub fn add_symmetric_grid(mut self, rs: impl IntoIterator<Item = f64>) -> Self {
        self.designs.extend(rs.into_iter().map(|r| ChipSpec::Symmetric { r }));
        self
    }

    /// Append an asymmetric-design grid over the cartesian product of small-
    /// and large-core areas (pairs with `rl < r` are skipped).
    pub fn add_asymmetric_grid(
        mut self,
        rs: impl IntoIterator<Item = f64>,
        rls: impl IntoIterator<Item = f64> + Clone,
    ) -> Self {
        for r in rs {
            for rl in rls.clone() {
                if rl >= r {
                    self.designs.push(ChipSpec::Asymmetric { r, rl });
                }
            }
        }
        self
    }

    /// Replace the design axis with the empty list, ready for `add_*_grid`
    /// calls (the constructor seeds one default design).
    pub fn clear_designs(mut self) -> Self {
        self.designs.clear();
        self
    }

    /// Set the growth-function axis.
    pub fn with_growths(mut self, growths: Vec<GrowthFunction>) -> Self {
        assert!(!growths.is_empty(), "growth axis must not be empty");
        self.growths = growths;
        self
    }

    /// Set the performance-model axis.
    pub fn with_perfs(mut self, perfs: Vec<PerfModel>) -> Self {
        assert!(!perfs.is_empty(), "perf axis must not be empty");
        self.perfs = perfs;
        self
    }

    /// Set the reduction-strategy axis.
    pub fn with_reductions(mut self, reductions: Vec<ReductionStrategy>) -> Self {
        assert!(!reductions.is_empty(), "reduction axis must not be empty");
        self.reductions = reductions;
        self
    }

    /// Set the topology axis.
    pub fn with_topologies(mut self, topologies: Vec<Topology>) -> Self {
        assert!(!topologies.is_empty(), "topology axis must not be empty");
        self.topologies = topologies;
        self
    }

    /// The application axis.
    pub fn apps(&self) -> &[AppParams] {
        &self.apps
    }

    /// The budget axis.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// The design axis.
    pub fn designs(&self) -> &[ChipSpec] {
        &self.designs
    }

    /// The growth axis.
    pub fn growths(&self) -> &[GrowthFunction] {
        &self.growths
    }

    /// The perf axis.
    pub fn perfs(&self) -> &[PerfModel] {
        &self.perfs
    }

    /// The reduction axis.
    pub fn reductions(&self) -> &[ReductionStrategy] {
        &self.reductions
    }

    /// The topology axis.
    pub fn topologies(&self) -> &[Topology] {
        &self.topologies
    }

    /// Total number of scenarios (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.apps.len()
            * self.budgets.len()
            * self.growths.len()
            * self.perfs.len()
            * self.reductions.len()
            * self.topologies.len()
            * self.designs.len()
    }

    /// Whether the space is empty (an axis was explicitly emptied).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode the flat index `index` into its per-axis indices, design axis
    /// fastest-varying. The order is `app` (slowest), `growth`, `perf`,
    /// `reduction`, `topology`, `budget`, `design` (fastest).
    pub fn decode(&self, index: usize) -> ScenarioIndex {
        assert!(index < self.len(), "scenario index {index} out of range");
        let mut rest = index;
        let design = rest % self.designs.len();
        rest /= self.designs.len();
        let budget = rest % self.budgets.len();
        rest /= self.budgets.len();
        let topology = rest % self.topologies.len();
        rest /= self.topologies.len();
        let reduction = rest % self.reductions.len();
        rest /= self.reductions.len();
        let perf = rest % self.perfs.len();
        rest /= self.perfs.len();
        let growth = rest % self.growths.len();
        rest /= self.growths.len();
        ScenarioIndex { app: rest, growth, perf, reduction, topology, budget, design }
    }

    /// Materialise the scenario at flat index `index`.
    pub fn scenario(&self, index: usize) -> Scenario<'_> {
        let ix = self.decode(index);
        Scenario {
            app: &self.apps[ix.app],
            budget: ChipBudget::new(self.budgets[ix.budget]),
            design: self.designs[ix.design],
            growth: &self.growths[ix.growth],
            perf: self.perfs[ix.perf],
            reduction: self.reductions[ix.reduction],
            topology: self.topologies[ix.topology],
        }
    }
}

/// Per-axis indices of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioIndex {
    /// Index into the application axis.
    pub app: usize,
    /// Index into the growth axis.
    pub growth: usize,
    /// Index into the perf axis.
    pub perf: usize,
    /// Index into the reduction axis.
    pub reduction: usize,
    /// Index into the topology axis.
    pub topology: usize,
    /// Index into the budget axis.
    pub budget: usize,
    /// Index into the design axis.
    pub design: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_three() -> ScenarioSpace {
        ScenarioSpace::new()
            .with_apps(vec![AppParams::table2_kmeans(), AppParams::table2_hop()])
            .clear_designs()
            .add_symmetric_grid([1.0, 4.0, 16.0])
    }

    #[test]
    fn len_is_the_axis_product() {
        let space = two_by_three();
        assert_eq!(space.len(), 6);
        let space = space.with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic]);
        assert_eq!(space.len(), 12);
    }

    #[test]
    fn decode_covers_every_combination_exactly_once() {
        let space = two_by_three()
            .with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic])
            .with_budgets(vec![64.0, 256.0]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.len() {
            let ix = space.decode(i);
            assert!(seen.insert((ix.app, ix.growth, ix.budget, ix.design)));
        }
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn design_axis_varies_fastest() {
        let space = two_by_three();
        let a = space.decode(0);
        let b = space.decode(1);
        assert_eq!(a.app, b.app);
        assert_ne!(a.design, b.design);
    }

    #[test]
    fn canonical_key_ignores_app_name_but_not_values() {
        let space_a =
            ScenarioSpace::new().with_apps(vec![AppParams::table2_kmeans().with_name("renamed")]);
        let space_b = ScenarioSpace::new();
        assert_eq!(space_a.scenario(0).canonical_key("x"), space_b.scenario(0).canonical_key("x"));
        let space_c = ScenarioSpace::new().with_apps(vec![AppParams::table2_fuzzy()]);
        assert_ne!(space_b.scenario(0).canonical_key("x"), space_c.scenario(0).canonical_key("x"));
    }

    #[test]
    fn key_prefix_resumes_to_the_full_key() {
        let space = two_by_three()
            .with_growths(vec![
                GrowthFunction::Superlinear(1.55),
                GrowthFunction::Measured(vec![(1.0, 0.0), (8.0, 4.0)]),
            ])
            .with_budgets(vec![64.0, 256.0]);
        for index in 0..space.len() {
            let scenario = space.scenario(index);
            let prefix = scenario.canonical_key_prefix("salt");
            assert_eq!(prefix.key_for(scenario.design), scenario.canonical_key("salt"));
        }
        // And the prefix is design-agnostic: one prefix serves any design.
        let a = space.scenario(0);
        let b = space.scenario(1);
        assert_eq!(a.canonical_key_prefix("s").key_for(b.design), b.canonical_key("s"));
    }

    #[test]
    fn canonical_key_distinguishes_backends() {
        let space = ScenarioSpace::new();
        assert_ne!(space.scenario(0).canonical_key("a"), space.scenario(0).canonical_key("b"));
    }

    #[test]
    fn chip_spec_geometry() {
        let budget = ChipBudget::paper_default();
        assert_eq!(ChipSpec::Symmetric { r: 4.0 }.cores(budget), 64.0);
        assert_eq!(ChipSpec::Asymmetric { r: 1.0, rl: 4.0 }.cores(budget), 253.0);
        assert!(ChipSpec::Symmetric { r: 256.0 }.fits(budget));
        assert!(!ChipSpec::Symmetric { r: 300.0 }.fits(budget));
        assert!(!ChipSpec::Asymmetric { r: 1.0, rl: 255.5 }.fits(budget));
        assert!(ChipSpec::Asymmetric { r: 1.0, rl: 256.0 }.fits(budget));
    }

    #[test]
    fn asymmetric_grid_skips_inverted_pairs() {
        let space =
            ScenarioSpace::new().clear_designs().add_asymmetric_grid([4.0], [1.0, 2.0, 4.0, 8.0]);
        assert_eq!(space.designs().len(), 2); // rl = 4 and rl = 8 only
    }
}
