//! Engine-backed figure sweeps.
//!
//! Thin wrappers with the same signatures and return types as
//! [`mp_model::explore`], but routed through the [`crate::engine::Engine`]
//! and its backends, so the paper figure harness (`mp-bench` Figures 3, 4,
//! 5 and 7) and large-scale exploration share one evaluation path. The
//! `mp_model::explore` loops remain a supported public API and the
//! independent reference that the property tests compare against
//! bit-for-bit (some examples demonstrate the model-level API through it
//! deliberately).

use mp_model::chip::ChipBudget;
use mp_model::comm::CommModel;
use mp_model::error::ModelError;
use mp_model::explore::{Curve, DesignPoint};
use mp_model::extended::ExtendedModel;

use crate::backend::{AnalyticBackend, CommBackend, EvalBackend};
use crate::engine::{Engine, SweepConfig};
use crate::scenario::ScenarioSpace;

fn sweep_designs(
    space: ScenarioSpace,
    backend: &dyn EvalBackend,
    label: String,
) -> Result<Curve, ModelError> {
    // Figure curves are a handful of points: a single-threaded engine without
    // memoisation keeps them allocation-light and deterministic.
    let engine = Engine::new(1);
    let result = engine.sweep(&space, backend, &SweepConfig { batch_size: 256, use_cache: false });
    let points: Vec<DesignPoint> = result
        .records
        .iter()
        .filter(|r| r.is_valid())
        .map(|r| DesignPoint { area: r.area, cores: r.cores, speedup: r.speedup })
        .collect();
    Ok(Curve { label, points })
}

fn extended_space(model: &ExtendedModel, budget: ChipBudget) -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(vec![model.params().clone()])
        .with_budgets(vec![budget.total_bce()])
        .with_growths(vec![model.growth().clone()])
        .with_perfs(vec![*model.perf()])
}

/// Engine-backed equivalent of [`mp_model::explore::symmetric_curve`]:
/// symmetric-CMP speedups over the budget's power-of-two core sizes.
pub fn symmetric_curve(
    model: &ExtendedModel,
    budget: ChipBudget,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let space = extended_space(model, budget)
        .clear_designs()
        .add_symmetric_grid(budget.power_of_two_core_sizes());
    sweep_designs(space, &AnalyticBackend, label.into())
}

/// Engine-backed equivalent of [`mp_model::explore::asymmetric_curve`]:
/// asymmetric-CMP speedups over the power-of-two large-core areas at fixed
/// small-core area `r` (largest `rl` is half the budget, like the paper).
pub fn asymmetric_curve(
    model: &ExtendedModel,
    budget: ChipBudget,
    r: f64,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let rls: Vec<f64> = budget
        .power_of_two_core_sizes()
        .into_iter()
        .filter(|&rl| rl >= r && rl < budget.total_bce())
        .collect();
    let space = extended_space(model, budget).clear_designs().add_asymmetric_grid([r], rls);
    sweep_designs(space, &AnalyticBackend, label.into())
}

fn comm_space(model: &CommModel, budget: ChipBudget) -> ScenarioSpace {
    // The communication-aware backend rebuilds its model from the scenario
    // axes, so every one of the wrapped model's components — comp growth,
    // topology and core performance — must be lifted onto the space.
    ScenarioSpace::new()
        .with_apps(vec![model.params().clone()])
        .with_budgets(vec![budget.total_bce()])
        .with_growths(vec![model.comp_growth().clone()])
        .with_perfs(vec![*model.perf()])
        .with_topologies(vec![model.topology()])
}

/// Engine-backed equivalent of [`mp_model::explore::symmetric_curve_comm`]:
/// the model's split, computation growth and topology are all honoured.
pub fn symmetric_curve_comm(
    model: &CommModel,
    budget: ChipBudget,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let space = comm_space(model, budget)
        .clear_designs()
        .add_symmetric_grid(budget.power_of_two_core_sizes());
    let backend = CommBackend::new().with_split(model.split());
    sweep_designs(space, &backend, label.into())
}

/// Engine-backed equivalent of [`mp_model::explore::asymmetric_curve_comm`].
pub fn asymmetric_curve_comm(
    model: &CommModel,
    budget: ChipBudget,
    r: f64,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let rls: Vec<f64> = budget
        .power_of_two_core_sizes()
        .into_iter()
        .filter(|&rl| rl >= r && rl < budget.total_bce())
        .collect();
    let space = comm_space(model, budget).clear_designs().add_asymmetric_grid([r], rls);
    let backend = CommBackend::new().with_split(model.split());
    sweep_designs(space, &backend, label.into())
}

/// Engine-backed equivalent of [`mp_model::explore::unit_core_curve`]:
/// speedup on `p` identical unit cores at power-of-two counts up to
/// `max_cores` (inclusive). Each count is a 1-BCE symmetric design under a
/// `p`-BCE budget, which is exactly Eq. 4 with `r = 1`, `n = p`.
pub fn unit_core_curve(
    model: &ExtendedModel,
    max_cores: usize,
) -> Result<Vec<(usize, f64)>, ModelError> {
    let mut counts = Vec::new();
    let mut p = 1usize;
    while p < max_cores {
        counts.push(p);
        p *= 2;
    }
    counts.push(max_cores);

    let mut points = Vec::with_capacity(counts.len());
    for &p in &counts {
        let space = extended_space(model, ChipBudget::new(p as f64))
            .clear_designs()
            .add_symmetric_grid([1.0]);
        let curve = sweep_designs(space, &AnalyticBackend, String::new())?;
        let point =
            curve.points.first().ok_or(ModelError::NonFinite { what: "unit-core sweep" })?;
        points.push((p, point.speedup));
    }
    Ok(points)
}

/// Engine-backed equivalent of [`mp_model::explore::best_symmetric`].
pub fn best_symmetric(
    model: &ExtendedModel,
    budget: ChipBudget,
) -> Result<DesignPoint, ModelError> {
    let curve = symmetric_curve(model, budget, "best")?;
    curve.peak().ok_or(ModelError::NonFinite { what: "empty symmetric sweep" })
}

/// Engine-backed equivalent of [`mp_model::explore::best_asymmetric`]: the
/// best `(small-core area, design point)` over all power-of-two `(r, rl)`
/// combinations.
pub fn best_asymmetric(
    model: &ExtendedModel,
    budget: ChipBudget,
) -> Result<(f64, DesignPoint), ModelError> {
    let mut best: Option<(f64, DesignPoint)> = None;
    for r in budget.power_of_two_core_sizes() {
        if r >= budget.total_bce() {
            continue;
        }
        let curve = asymmetric_curve(model, budget, r, format!("r={r}"))?;
        if let Some(peak) = curve.peak() {
            let better = match &best {
                None => true,
                Some((_, b)) => peak.speedup > b.speedup,
            };
            if better {
                best = Some((r, peak));
            }
        }
    }
    best.ok_or(ModelError::NonFinite { what: "empty asymmetric sweep" })
}

/// One of the paper's engine-reproduced figure families.
///
/// Each figure maps to the family of [`Curve`]s its plot draws; the golden
/// regression tests snapshot these and the serve layer answers
/// `curve(figure)` queries with them, so both pin the exact same numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Figure {
    /// Figure 3 — scalability to 256 unit cores: per Table II application,
    /// plain Amdahl (`<app>-amdahl`) vs the extended model
    /// (`<app>-with-reduction`). Points carry the core count on both the
    /// `area` and `cores` axes.
    Fig3,
    /// Figure 4 — symmetric CMPs at 256 BCE: per Table III class, linear and
    /// logarithmic reduction-overhead growth.
    Fig4,
    /// Figure 5 — asymmetric CMPs at 256 BCE: per Table III class, small-core
    /// areas r ∈ {1, 4, 16} under linear growth.
    Fig5,
    /// Figure 7 — the communication-aware model (2-D mesh): symmetric plus
    /// the three asymmetric small-core areas.
    Fig7,
}

impl Figure {
    /// Every figure family, in paper order.
    pub const ALL: [Figure; 4] = [Figure::Fig3, Figure::Fig4, Figure::Fig5, Figure::Fig7];

    /// The figure's lower-case name (`"fig3"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
            Figure::Fig7 => "fig7",
        }
    }

    /// Parse a figure name as printed by [`Figure::name`].
    pub fn from_name(name: &str) -> Option<Figure> {
        Figure::ALL.into_iter().find(|figure| figure.name() == name)
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The complete engine-backed curve family of one paper figure.
///
/// Deterministic: every curve and point is derived from the paper-constant
/// parameter tables through the engine's analytic/communication backends, so
/// two builds of the same source produce bit-identical results (the property
/// the golden-file tests and the serve differential tests rely on).
pub fn figure_curves(figure: Figure) -> Result<Vec<Curve>, ModelError> {
    use mp_model::params::{AppClass, AppParams};
    use mp_model::perf::PerfModel;

    let budget = ChipBudget::paper_default();
    let mut curves = Vec::new();
    match figure {
        Figure::Fig3 => {
            for params in AppParams::table2_all() {
                let mut amdahl = Curve { label: format!("{}-amdahl", params.name), points: vec![] };
                let model = ExtendedModel::new(
                    params.clone(),
                    mp_model::growth::GrowthFunction::Linear,
                    PerfModel::Pollack,
                );
                let extended = unit_core_curve(&model, 256)?;
                for &(p, _) in &extended {
                    let speedup = mp_model::amdahl::amdahl_speedup(params.f, p as f64)?;
                    amdahl.points.push(DesignPoint { area: p as f64, cores: p as f64, speedup });
                }
                curves.push(amdahl);
                curves.push(Curve {
                    label: format!("{}-with-reduction", params.name),
                    points: extended
                        .into_iter()
                        .map(|(p, speedup)| DesignPoint {
                            area: p as f64,
                            cores: p as f64,
                            speedup,
                        })
                        .collect(),
                });
            }
        }
        Figure::Fig4 => {
            use mp_model::growth::GrowthFunction;
            for class in AppClass::table3_all() {
                for growth in [GrowthFunction::Linear, GrowthFunction::Logarithmic] {
                    let model =
                        ExtendedModel::new(class.params(), growth.clone(), PerfModel::Pollack);
                    let label = format!("{}[{}]", class.name(), growth.name());
                    curves.push(symmetric_curve(&model, budget, label)?);
                }
            }
        }
        Figure::Fig5 => {
            for class in AppClass::table3_all() {
                let model = ExtendedModel::new(
                    class.params(),
                    mp_model::growth::GrowthFunction::Linear,
                    PerfModel::Pollack,
                );
                for r in [1.0, 4.0, 16.0] {
                    let label = format!("{}[r={r}]", class.name());
                    curves.push(asymmetric_curve(&model, budget, r, label)?);
                }
            }
        }
        Figure::Fig7 => {
            let class = AppClass {
                embarrassingly_parallel: false,
                high_constant: false,
                high_reduction_overhead: true,
            };
            let model = CommModel::paper_figure7(class.params())?;
            curves.push(symmetric_curve_comm(&model, budget, "symmetric")?);
            for r in [1.0, 4.0, 16.0] {
                curves.push(asymmetric_curve_comm(
                    &model,
                    budget,
                    r,
                    format!("asymmetric[r={r}]"),
                )?);
            }
        }
    }
    Ok(curves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::growth::GrowthFunction;
    use mp_model::params::AppParams;
    use mp_model::perf::PerfModel;
    use mp_model::topology::Topology;
    use mp_model::{explore, CommSplit};

    fn model() -> ExtendedModel {
        ExtendedModel::new(AppParams::table2_kmeans(), GrowthFunction::Linear, PerfModel::Pollack)
    }

    #[test]
    fn symmetric_curve_matches_legacy_explore_bitwise() {
        let budget = ChipBudget::paper_default();
        let ours = symmetric_curve(&model(), budget, "x").unwrap();
        let legacy = explore::symmetric_curve(&model(), budget, "x").unwrap();
        assert_eq!(ours.points.len(), legacy.points.len());
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.area, b.area);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn asymmetric_curve_matches_legacy_explore_bitwise() {
        let budget = ChipBudget::paper_default();
        for r in [1.0, 4.0, 16.0] {
            let ours = asymmetric_curve(&model(), budget, r, "x").unwrap();
            let legacy = explore::asymmetric_curve(&model(), budget, r, "x").unwrap();
            assert_eq!(ours.points.len(), legacy.points.len(), "r={r}");
            for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "r={r} rl={}", a.area);
            }
        }
    }

    #[test]
    fn comm_curves_match_legacy_explore_bitwise() {
        let budget = ChipBudget::paper_default();
        let comm = CommModel::paper_figure7(AppParams::table2_kmeans()).unwrap();
        let ours = symmetric_curve_comm(&comm, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&comm, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        let ours = asymmetric_curve_comm(&comm, budget, 4.0, "x").unwrap();
        let legacy = explore::asymmetric_curve_comm(&comm, budget, 4.0, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn comm_curve_honours_the_models_comp_growth() {
        // A serial (linear-growth) merge configuration must flow through the
        // wrapper, not be silently replaced by the Figure 7 constant growth.
        let budget = ChipBudget::paper_default();
        let constant = CommModel::paper_figure7(AppParams::table2_kmeans()).unwrap();
        let linear = constant.clone().with_comp_growth(GrowthFunction::Linear);
        let ours = symmetric_curve_comm(&linear, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&linear, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        // And the two growths genuinely disagree, so the check above bites.
        let constant_curve = symmetric_curve_comm(&constant, budget, "x").unwrap();
        assert!(ours
            .points
            .iter()
            .zip(constant_curve.points.iter())
            .any(|(a, b)| a.speedup.to_bits() != b.speedup.to_bits()));
    }

    #[test]
    fn comm_curve_honours_the_models_perf_model() {
        let budget = ChipBudget::paper_default();
        let params = AppParams::table2_kmeans();
        let power = CommModel::new(
            params.clone(),
            CommSplit::ideal(params.split.fred).unwrap(),
            GrowthFunction::Constant,
            Topology::Mesh2D,
            PerfModel::Power(0.75),
        );
        let ours = symmetric_curve_comm(&power, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&power, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        // Power(0.75) cores genuinely differ from Pollack, so the check bites.
        let pollack = CommModel::paper_figure7(params).unwrap();
        let pollack_curve = symmetric_curve_comm(&pollack, budget, "x").unwrap();
        assert!(ours
            .points
            .iter()
            .zip(pollack_curve.points.iter())
            .any(|(a, b)| a.speedup.to_bits() != b.speedup.to_bits()));
    }

    #[test]
    fn comm_curve_honours_an_explicit_split() {
        let budget = ChipBudget::paper_default();
        let params = AppParams::table2_kmeans();
        let skewed = CommModel::new(
            params.clone(),
            CommSplit::new(0.1, 0.33).unwrap(),
            GrowthFunction::Constant,
            Topology::Mesh2D,
            PerfModel::Pollack,
        );
        let ours = symmetric_curve_comm(&skewed, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&skewed, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn unit_core_curve_matches_legacy_explore() {
        let ours = unit_core_curve(&model(), 256).unwrap();
        let legacy = explore::unit_core_curve(&model(), 256).unwrap();
        assert_eq!(ours.len(), legacy.len());
        for ((pa, sa), (pb, sb)) in ours.iter().zip(legacy.iter()) {
            assert_eq!(pa, pb);
            assert!((sa - sb).abs() < 1e-12, "p={pa}: {sa} vs {sb}");
        }
    }

    #[test]
    fn figure_names_round_trip_and_families_are_complete() {
        for figure in Figure::ALL {
            assert_eq!(Figure::from_name(figure.name()), Some(figure));
        }
        assert_eq!(Figure::from_name("fig6"), None);
        // Family sizes: fig3 = 3 apps × 2 models, fig4 = 8 classes × 2
        // growths, fig5 = 8 classes × 3 small-core areas, fig7 = 1 + 3.
        for (figure, expect) in
            [(Figure::Fig3, 6), (Figure::Fig4, 16), (Figure::Fig5, 24), (Figure::Fig7, 4)]
        {
            let curves = figure_curves(figure).unwrap();
            assert_eq!(curves.len(), expect, "{figure}");
            for curve in &curves {
                assert!(!curve.points.is_empty(), "{figure}: {}", curve.label);
                assert!(curve.points.iter().all(|p| p.speedup.is_finite()));
            }
        }
    }

    #[test]
    fn figure_curves_are_deterministic_across_calls() {
        for figure in Figure::ALL {
            let a = figure_curves(figure).unwrap();
            let b = figure_curves(figure).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.label, y.label);
                for (p, q) in x.points.iter().zip(y.points.iter()) {
                    assert_eq!(p.speedup.to_bits(), q.speedup.to_bits());
                }
            }
        }
    }

    #[test]
    fn best_design_helpers_match_legacy_explore() {
        let budget = ChipBudget::paper_default();
        let ours = best_symmetric(&model(), budget).unwrap();
        let legacy = explore::best_symmetric(&model(), budget).unwrap();
        assert_eq!(ours.area, legacy.area);
        assert_eq!(ours.speedup.to_bits(), legacy.speedup.to_bits());

        let (r_a, peak_a) = best_asymmetric(&model(), budget).unwrap();
        let (r_b, peak_b) = explore::best_asymmetric(&model(), budget).unwrap();
        assert_eq!(r_a, r_b);
        assert_eq!(peak_a.speedup.to_bits(), peak_b.speedup.to_bits());
    }
}
