//! Engine-backed figure sweeps.
//!
//! Thin wrappers with the same signatures and return types as
//! [`mp_model::explore`], but routed through the [`crate::engine::Engine`]
//! and its backends, so the paper figure harness (`mp-bench` Figures 3, 4,
//! 5 and 7) and large-scale exploration share one evaluation path. The
//! `mp_model::explore` loops remain a supported public API and the
//! independent reference that the property tests compare against
//! bit-for-bit (some examples demonstrate the model-level API through it
//! deliberately).

use mp_model::chip::ChipBudget;
use mp_model::comm::CommModel;
use mp_model::error::ModelError;
use mp_model::explore::{Curve, DesignPoint};
use mp_model::extended::ExtendedModel;

use crate::backend::{AnalyticBackend, CommBackend, EvalBackend};
use crate::engine::{Engine, SweepConfig};
use crate::scenario::ScenarioSpace;

fn sweep_designs(
    space: ScenarioSpace,
    backend: &dyn EvalBackend,
    label: String,
) -> Result<Curve, ModelError> {
    // Figure curves are a handful of points: a single-threaded engine without
    // memoisation keeps them allocation-light and deterministic.
    let engine = Engine::new(1);
    let result = engine.sweep(&space, backend, &SweepConfig { batch_size: 256, use_cache: false });
    let points: Vec<DesignPoint> = result
        .records
        .iter()
        .filter(|r| r.is_valid())
        .map(|r| DesignPoint { area: r.area, cores: r.cores, speedup: r.speedup })
        .collect();
    Ok(Curve { label, points })
}

fn extended_space(model: &ExtendedModel, budget: ChipBudget) -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(vec![model.params().clone()])
        .with_budgets(vec![budget.total_bce()])
        .with_growths(vec![model.growth().clone()])
        .with_perfs(vec![*model.perf()])
}

/// Engine-backed equivalent of [`mp_model::explore::symmetric_curve`]:
/// symmetric-CMP speedups over the budget's power-of-two core sizes.
pub fn symmetric_curve(
    model: &ExtendedModel,
    budget: ChipBudget,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let space = extended_space(model, budget)
        .clear_designs()
        .add_symmetric_grid(budget.power_of_two_core_sizes());
    sweep_designs(space, &AnalyticBackend, label.into())
}

/// Engine-backed equivalent of [`mp_model::explore::asymmetric_curve`]:
/// asymmetric-CMP speedups over the power-of-two large-core areas at fixed
/// small-core area `r` (largest `rl` is half the budget, like the paper).
pub fn asymmetric_curve(
    model: &ExtendedModel,
    budget: ChipBudget,
    r: f64,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let rls: Vec<f64> = budget
        .power_of_two_core_sizes()
        .into_iter()
        .filter(|&rl| rl >= r && rl < budget.total_bce())
        .collect();
    let space = extended_space(model, budget).clear_designs().add_asymmetric_grid([r], rls);
    sweep_designs(space, &AnalyticBackend, label.into())
}

fn comm_space(model: &CommModel, budget: ChipBudget) -> ScenarioSpace {
    // The communication-aware backend rebuilds its model from the scenario
    // axes, so every one of the wrapped model's components — comp growth,
    // topology and core performance — must be lifted onto the space.
    ScenarioSpace::new()
        .with_apps(vec![model.params().clone()])
        .with_budgets(vec![budget.total_bce()])
        .with_growths(vec![model.comp_growth().clone()])
        .with_perfs(vec![*model.perf()])
        .with_topologies(vec![model.topology()])
}

/// Engine-backed equivalent of [`mp_model::explore::symmetric_curve_comm`]:
/// the model's split, computation growth and topology are all honoured.
pub fn symmetric_curve_comm(
    model: &CommModel,
    budget: ChipBudget,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let space = comm_space(model, budget)
        .clear_designs()
        .add_symmetric_grid(budget.power_of_two_core_sizes());
    let backend = CommBackend::new().with_split(model.split());
    sweep_designs(space, &backend, label.into())
}

/// Engine-backed equivalent of [`mp_model::explore::asymmetric_curve_comm`].
pub fn asymmetric_curve_comm(
    model: &CommModel,
    budget: ChipBudget,
    r: f64,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let rls: Vec<f64> = budget
        .power_of_two_core_sizes()
        .into_iter()
        .filter(|&rl| rl >= r && rl < budget.total_bce())
        .collect();
    let space = comm_space(model, budget).clear_designs().add_asymmetric_grid([r], rls);
    let backend = CommBackend::new().with_split(model.split());
    sweep_designs(space, &backend, label.into())
}

/// Engine-backed equivalent of [`mp_model::explore::unit_core_curve`]:
/// speedup on `p` identical unit cores at power-of-two counts up to
/// `max_cores` (inclusive). Each count is a 1-BCE symmetric design under a
/// `p`-BCE budget, which is exactly Eq. 4 with `r = 1`, `n = p`.
pub fn unit_core_curve(
    model: &ExtendedModel,
    max_cores: usize,
) -> Result<Vec<(usize, f64)>, ModelError> {
    let mut counts = Vec::new();
    let mut p = 1usize;
    while p < max_cores {
        counts.push(p);
        p *= 2;
    }
    counts.push(max_cores);

    let mut points = Vec::with_capacity(counts.len());
    for &p in &counts {
        let space = extended_space(model, ChipBudget::new(p as f64))
            .clear_designs()
            .add_symmetric_grid([1.0]);
        let curve = sweep_designs(space, &AnalyticBackend, String::new())?;
        let point =
            curve.points.first().ok_or(ModelError::NonFinite { what: "unit-core sweep" })?;
        points.push((p, point.speedup));
    }
    Ok(points)
}

/// Engine-backed equivalent of [`mp_model::explore::best_symmetric`].
pub fn best_symmetric(
    model: &ExtendedModel,
    budget: ChipBudget,
) -> Result<DesignPoint, ModelError> {
    let curve = symmetric_curve(model, budget, "best")?;
    curve.peak().ok_or(ModelError::NonFinite { what: "empty symmetric sweep" })
}

/// Engine-backed equivalent of [`mp_model::explore::best_asymmetric`]: the
/// best `(small-core area, design point)` over all power-of-two `(r, rl)`
/// combinations.
pub fn best_asymmetric(
    model: &ExtendedModel,
    budget: ChipBudget,
) -> Result<(f64, DesignPoint), ModelError> {
    let mut best: Option<(f64, DesignPoint)> = None;
    for r in budget.power_of_two_core_sizes() {
        if r >= budget.total_bce() {
            continue;
        }
        let curve = asymmetric_curve(model, budget, r, format!("r={r}"))?;
        if let Some(peak) = curve.peak() {
            let better = match &best {
                None => true,
                Some((_, b)) => peak.speedup > b.speedup,
            };
            if better {
                best = Some((r, peak));
            }
        }
    }
    best.ok_or(ModelError::NonFinite { what: "empty asymmetric sweep" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::growth::GrowthFunction;
    use mp_model::params::AppParams;
    use mp_model::perf::PerfModel;
    use mp_model::topology::Topology;
    use mp_model::{explore, CommSplit};

    fn model() -> ExtendedModel {
        ExtendedModel::new(AppParams::table2_kmeans(), GrowthFunction::Linear, PerfModel::Pollack)
    }

    #[test]
    fn symmetric_curve_matches_legacy_explore_bitwise() {
        let budget = ChipBudget::paper_default();
        let ours = symmetric_curve(&model(), budget, "x").unwrap();
        let legacy = explore::symmetric_curve(&model(), budget, "x").unwrap();
        assert_eq!(ours.points.len(), legacy.points.len());
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.area, b.area);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn asymmetric_curve_matches_legacy_explore_bitwise() {
        let budget = ChipBudget::paper_default();
        for r in [1.0, 4.0, 16.0] {
            let ours = asymmetric_curve(&model(), budget, r, "x").unwrap();
            let legacy = explore::asymmetric_curve(&model(), budget, r, "x").unwrap();
            assert_eq!(ours.points.len(), legacy.points.len(), "r={r}");
            for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "r={r} rl={}", a.area);
            }
        }
    }

    #[test]
    fn comm_curves_match_legacy_explore_bitwise() {
        let budget = ChipBudget::paper_default();
        let comm = CommModel::paper_figure7(AppParams::table2_kmeans()).unwrap();
        let ours = symmetric_curve_comm(&comm, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&comm, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        let ours = asymmetric_curve_comm(&comm, budget, 4.0, "x").unwrap();
        let legacy = explore::asymmetric_curve_comm(&comm, budget, 4.0, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn comm_curve_honours_the_models_comp_growth() {
        // A serial (linear-growth) merge configuration must flow through the
        // wrapper, not be silently replaced by the Figure 7 constant growth.
        let budget = ChipBudget::paper_default();
        let constant = CommModel::paper_figure7(AppParams::table2_kmeans()).unwrap();
        let linear = constant.clone().with_comp_growth(GrowthFunction::Linear);
        let ours = symmetric_curve_comm(&linear, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&linear, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        // And the two growths genuinely disagree, so the check above bites.
        let constant_curve = symmetric_curve_comm(&constant, budget, "x").unwrap();
        assert!(ours
            .points
            .iter()
            .zip(constant_curve.points.iter())
            .any(|(a, b)| a.speedup.to_bits() != b.speedup.to_bits()));
    }

    #[test]
    fn comm_curve_honours_the_models_perf_model() {
        let budget = ChipBudget::paper_default();
        let params = AppParams::table2_kmeans();
        let power = CommModel::new(
            params.clone(),
            CommSplit::ideal(params.split.fred).unwrap(),
            GrowthFunction::Constant,
            Topology::Mesh2D,
            PerfModel::Power(0.75),
        );
        let ours = symmetric_curve_comm(&power, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&power, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
        // Power(0.75) cores genuinely differ from Pollack, so the check bites.
        let pollack = CommModel::paper_figure7(params).unwrap();
        let pollack_curve = symmetric_curve_comm(&pollack, budget, "x").unwrap();
        assert!(ours
            .points
            .iter()
            .zip(pollack_curve.points.iter())
            .any(|(a, b)| a.speedup.to_bits() != b.speedup.to_bits()));
    }

    #[test]
    fn comm_curve_honours_an_explicit_split() {
        let budget = ChipBudget::paper_default();
        let params = AppParams::table2_kmeans();
        let skewed = CommModel::new(
            params.clone(),
            CommSplit::new(0.1, 0.33).unwrap(),
            GrowthFunction::Constant,
            Topology::Mesh2D,
            PerfModel::Pollack,
        );
        let ours = symmetric_curve_comm(&skewed, budget, "x").unwrap();
        let legacy = explore::symmetric_curve_comm(&skewed, budget, "x").unwrap();
        for (a, b) in ours.points.iter().zip(legacy.points.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn unit_core_curve_matches_legacy_explore() {
        let ours = unit_core_curve(&model(), 256).unwrap();
        let legacy = explore::unit_core_curve(&model(), 256).unwrap();
        assert_eq!(ours.len(), legacy.len());
        for ((pa, sa), (pb, sb)) in ours.iter().zip(legacy.iter()) {
            assert_eq!(pa, pb);
            assert!((sa - sb).abs() < 1e-12, "p={pa}: {sa} vs {sb}");
        }
    }

    #[test]
    fn best_design_helpers_match_legacy_explore() {
        let budget = ChipBudget::paper_default();
        let ours = best_symmetric(&model(), budget).unwrap();
        let legacy = explore::best_symmetric(&model(), budget).unwrap();
        assert_eq!(ours.area, legacy.area);
        assert_eq!(ours.speedup.to_bits(), legacy.speedup.to_bits());

        let (r_a, peak_a) = best_asymmetric(&model(), budget).unwrap();
        let (r_b, peak_b) = explore::best_asymmetric(&model(), budget).unwrap();
        assert_eq!(r_a, r_b);
        assert_eq!(peak_a.speedup.to_bits(), peak_b.speedup.to_bits());
    }
}
