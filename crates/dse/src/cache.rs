//! Sharded, memoising evaluation cache.
//!
//! Keys are the 128-bit canonical scenario fingerprints of
//! [`crate::scenario::Scenario::canonical_key`]; values are the raw bit
//! patterns of the evaluated speedup, so cached and uncached sweeps are
//! **bit-identical** by construction (`NaN` markers for invalid scenarios
//! round-trip too). The map is split into shards, each behind its own lock,
//! so the worker threads of a parallel sweep rarely contend.
//!
//! The cache serialises to JSON (hex-encoded keys and value bits) so a sweep
//! can warm-start from a previous process — see [`EvalCache::save_json`] /
//! [`EvalCache::load_json`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 64;

/// A sharded memoisation cache for scenario evaluations.
pub struct EvalCache {
    shards: Vec<Mutex<HashMap<(u64, u64), u64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<HashMap<(u64, u64), u64>> {
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    /// Look up a cached speedup, counting the probe as a hit or miss.
    pub fn get(&self, key: (u64, u64)) -> Option<f64> {
        let found = self.shard(key).lock().get(&key).copied();
        match found {
            Some(bits) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(f64::from_bits(bits))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up a cached speedup without touching the hit/miss counters.
    /// Used for internal re-probes (a batch re-checking its own first-probe
    /// holes), which would otherwise double-count and skew the statistics.
    pub fn peek(&self, key: (u64, u64)) -> Option<f64> {
        self.shard(key).lock().get(&key).copied().map(f64::from_bits)
    }

    /// Store an evaluated speedup (bit pattern preserved, NaNs included).
    pub fn insert(&self, key: (u64, u64), speedup: f64) {
        self.shard(key).lock().insert(key, speedup.to_bits());
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes answered from the cache since construction / the last reset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that missed since construction / the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Reset the hit/miss counters (entries are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// The version tag stamped into persisted caches: the mp-dse crate
    /// version. Bumping the workspace version invalidates every persisted
    /// cache, so stale files cannot replay results an older build produced.
    pub fn format_version() -> String {
        format!("mp-dse-cache/{}", env!("CARGO_PKG_VERSION"))
    }

    /// Serialise every entry as JSON: a `[version, entries]` pair where the
    /// entries are `[key_hi, key_lo, value_bits]` hex-string triplets (hex so
    /// no `f64` precision is lost in transit).
    pub fn save_json(&self) -> String {
        let mut entries: Vec<(String, String, String)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (&(hi, lo), &bits) in shard.lock().iter() {
                entries.push((format!("{hi:016x}"), format!("{lo:016x}"), format!("{bits:016x}")));
            }
        }
        // Deterministic order regardless of hash-map iteration.
        entries.sort();
        serde_json::to_string(&(Self::format_version(), entries))
            .expect("cache entries always serialise")
    }

    /// Load entries previously produced by [`EvalCache::save_json`] into this
    /// cache (existing entries are kept; duplicates are overwritten).
    ///
    /// # Errors
    /// Returns a message on a version mismatch (a cache persisted by a
    /// different build lineage must not replay its results) or describing
    /// the first malformed entry. The whole document is validated before
    /// anything is inserted, so a partially corrupt file leaves the cache
    /// untouched instead of half-loaded.
    pub fn load_json(&self, json: &str) -> Result<usize, String> {
        let (version, entries): (String, Vec<(String, String, String)>) =
            serde_json::from_str(json).map_err(|e| e.to_string())?;
        if version != Self::format_version() {
            return Err(format!(
                "cache version `{version}` does not match this build (`{}`)",
                Self::format_version()
            ));
        }
        let mut parsed = Vec::with_capacity(entries.len());
        for (hi, lo, bits) in entries {
            let hi = u64::from_str_radix(&hi, 16).map_err(|e| e.to_string())?;
            let lo = u64::from_str_radix(&lo, 16).map_err(|e| e.to_string())?;
            let bits = u64::from_str_radix(&bits, 16).map_err(|e| e.to_string())?;
            parsed.push(((hi, lo), bits));
        }
        let loaded = parsed.len();
        for (key, bits) in parsed {
            self.shard(key).lock().insert(key, bits);
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let cache = EvalCache::new();
        assert_eq!(cache.get((1, 2)), None);
        cache.insert((1, 2), 3.5);
        assert_eq!(cache.get((1, 2)), Some(3.5));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let cache = EvalCache::new();
        cache.insert((9, 9), f64::NAN);
        let got = cache.get((9, 9)).unwrap();
        assert_eq!(got.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn json_round_trip_preserves_bits() {
        let cache = EvalCache::new();
        cache.insert((1, 2), 0.1 + 0.2);
        cache.insert((u64::MAX, 7), f64::NAN);
        cache.insert((3, 4), -0.0);
        let json = cache.save_json();

        let restored = EvalCache::new();
        assert_eq!(restored.load_json(&json).unwrap(), 3);
        assert_eq!(restored.get((1, 2)).unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(restored.get((u64::MAX, 7)).unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(restored.get((3, 4)).unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn partially_malformed_json_loads_nothing() {
        let cache = EvalCache::new();
        // First entry valid, second has non-hex value bits.
        let json = format!(
            r#"["{}",[["0000000000000001","0000000000000002","3ff0000000000000"],["0000000000000003","0000000000000004","zzzz"]]]"#,
            EvalCache::format_version()
        );
        assert!(cache.load_json(&json).is_err());
        assert!(cache.is_empty(), "a failed load must not half-populate the cache");
    }

    #[test]
    fn mismatched_version_loads_nothing() {
        let source = EvalCache::new();
        source.insert((1, 2), 3.5);
        let stale = source.save_json().replace(&EvalCache::format_version(), "mp-dse-cache/0.0.0");
        let cache = EvalCache::new();
        let err = cache.load_json(&stale).unwrap_err();
        assert!(err.contains("version"), "{err}");
        assert!(cache.is_empty());
    }

    #[test]
    fn save_is_deterministic() {
        let a = EvalCache::new();
        let b = EvalCache::new();
        for i in 0..100u64 {
            a.insert((i * 31, i), i as f64);
            b.insert(((99 - i) * 31, 99 - i), (99 - i) as f64);
        }
        assert_eq!(a.save_json(), b.save_json());
    }
}
