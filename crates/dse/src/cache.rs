//! Lock-free, sharded, memoising evaluation cache.
//!
//! Keys are the 128-bit canonical scenario fingerprints of
//! [`crate::scenario::Scenario::canonical_key`]; values are the raw bit
//! patterns of the evaluated speedup, so cached and uncached sweeps are
//! **bit-identical** by construction (`NaN` markers for invalid scenarios
//! round-trip too).
//!
//! ## Structure
//!
//! The cache is split into a fixed number of shards selected by the key's
//! low bits.
//! Each shard is an **open-addressed table of atomic slots** (state word,
//! two key words, one value word): probes and inserts are plain atomic loads
//! and one CAS — no locks, no per-probe allocation — so the worker threads of
//! a parallel sweep never serialise on the cache. This replaces the previous
//! `Vec<Mutex<HashMap>>`, whose per-probe lock was the last piece of
//! cross-thread synchronisation on the sweep hot path.
//!
//! ## Growth
//!
//! Each shard grows independently: when its table passes a ¾ load factor,
//! the inserting thread takes the shard's (cold-path) grow lock, publishes a
//! double-size table, waits for in-flight writers to drain, and migrates the
//! old entries. Readers are never blocked — at worst a probe against the old
//! table reports a miss and the scenario is recomputed, which is harmless
//! because every cached value is a deterministic function of its key.
//! [`EvalCache::reserve`] pre-sizes all shards so a sweep of known size (the
//! engine reserves `space.len()` up front) never grows mid-run. Retired
//! tables are kept until the cache is dropped, so concurrent readers can
//! finish probing them safely; total retired memory is bounded by the final
//! table size (geometric series).
//!
//! The cache serialises to JSON (hex-encoded keys and value bits) so a sweep
//! can warm-start from a previous process — see [`EvalCache::save_json`] /
//! [`EvalCache::load_json`] — and to a length-prefixed, CRC-guarded binary
//! **segment** format ([`EvalCache::save_segment`] /
//! [`EvalCache::load_segment`]) sized for the checkpoint spills of durable
//! sweep jobs: a 214k-entry segment is ~5 MB and reloads in milliseconds
//! where the JSON path re-parses hex strings. Both loaders validate the
//! whole document before inserting anything and report a typed
//! [`CacheLoadError`]; a corrupt or torn file degrades to a cold cache,
//! never a panic or a half-populated table.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use mp_obs::metrics::Counter;

/// Process-wide cache metrics in the global mp-obs registry, mirroring the
/// per-instance counters across every live cache. Only cold/bulk paths
/// touch them (migrations, inserts); per-probe traffic is mirrored at batch
/// granularity by the engine.
fn obs_inserts() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("cache_inserts"))
}

fn obs_migrations() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("cache_migrations"))
}

/// Number of independent shards (power of two). Shards only gate the cold
/// grow/migrate paths — probes and inserts are per-slot atomics — so the
/// count is chosen for *reserve* behaviour: fewer, larger shards keep the
/// relative hash imbalance between shards small (√n̄/n̄), which lets `reserve`
/// run the tables denser without any shard outgrowing its slack mid-sweep.
const SHARDS: usize = 32;

/// Initial slot count per shard (power of two). [`SHARDS`] × 64 slots ≈ 2k
/// slots before any growth; `reserve` raises this for real sweeps.
const INITIAL_SLOTS: usize = 64;

/// Slot states.
const EMPTY: u8 = 0;
const BUSY: u8 = 1;
const FULL: u8 = 2;

/// One open-addressed slot: a state word guarding two key words and a value.
struct Slot {
    state: AtomicU8,
    k0: AtomicU64,
    k1: AtomicU64,
    value: AtomicU64,
}

/// Outcome of one table-level insert attempt.
enum InsertOutcome {
    /// A fresh slot was claimed; the table now holds `len` entries.
    Inserted { len: usize },
    /// The key already existed; its value was overwritten (values are
    /// deterministic per key, so this is a no-op bit-wise in normal use).
    Updated,
    /// No free slot within the probe budget: the table must grow.
    TableFull,
}

/// A fixed-capacity open-addressed table. Never grows in place; a full table
/// is replaced wholesale by the owning shard.
struct Table {
    mask: usize,
    len: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Table {
    fn with_capacity(capacity: usize) -> Box<Table> {
        debug_assert!(capacity.is_power_of_two());
        // The all-zero byte pattern is exactly a table of EMPTY slots, so the
        // slot array comes from `alloc_zeroed`: for the multi-megabyte tables
        // a reserved sweep uses, the kernel's lazily-mapped zero pages make
        // this near-free instead of a full init write pass.
        let slots: Box<[Slot]> = unsafe {
            let layout = std::alloc::Layout::array::<Slot>(capacity).expect("table layout");
            let ptr = std::alloc::alloc_zeroed(layout) as *mut Slot;
            assert!(!ptr.is_null(), "cache table allocation failed");
            crate::mem::advise_huge_pages(ptr, layout.size());
            Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, capacity))
        };
        Box::new(Table { mask: capacity - 1, len: AtomicUsize::new(0), slots })
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The load-factor ceiling: grow once the table holds more than ⅞ of its
    /// capacity. Linear probing at ⅞ load averages a handful of adjacent
    /// slots per probe — cheap, since consecutive slots share cachelines —
    /// while the denser table halves the memory footprint (and first-touch
    /// fault count) of a reserved sweep compared to a ¾ ceiling.
    fn threshold(&self) -> usize {
        self.capacity() - self.capacity() / 8
    }

    /// Slot index of the first probe. The shard was selected by `key.0`'s low
    /// bits, so the in-shard position uses the independent second stream.
    fn home(&self, key: (u64, u64)) -> usize {
        (key.1 as usize) & self.mask
    }

    /// Probe for `key`; `Some(bits)` when present and fully published.
    fn probe(&self, key: (u64, u64)) -> Option<u64> {
        let mut index = self.home(key);
        for _ in 0..self.capacity() {
            let slot = &self.slots[index];
            match slot.state.load(Ordering::Acquire) {
                EMPTY => return None,
                FULL if slot.k0.load(Ordering::Relaxed) == key.0
                    && slot.k1.load(Ordering::Relaxed) == key.1 =>
                {
                    return Some(slot.value.load(Ordering::Relaxed));
                }
                // Other key, or BUSY — a writer mid-publish: treat as
                // occupied-by-unknown and keep probing. If a busy slot held
                // our key, the caller simply recomputes a deterministic
                // value.
                _ => {}
            }
            index = (index + 1) & self.mask;
        }
        None
    }

    /// Insert or overwrite `key`, publishing the `FULL` state with `publish`
    /// ordering. The optimistic insert protocol (see [`Shard::insert`])
    /// requires the publication to be ordered before the post-insert check
    /// of the shard's migration flag: single inserts publish `SeqCst`,
    /// batched inserts publish `Release` and order the whole batch with one
    /// trailing `SeqCst` fence.
    fn insert(&self, key: (u64, u64), bits: u64, publish: Ordering) -> InsertOutcome {
        let mut index = self.home(key);
        for _ in 0..self.capacity() {
            let slot = &self.slots[index];
            match slot.state.compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Acquire) {
                Ok(_) => {
                    // Claimed a fresh slot: publish key and value, then flip
                    // to FULL so readers (Acquire on state) see them.
                    slot.k0.store(key.0, Ordering::Relaxed);
                    slot.k1.store(key.1, Ordering::Relaxed);
                    slot.value.store(bits, Ordering::Relaxed);
                    slot.state.store(FULL, publish);
                    let len = self.len.fetch_add(1, Ordering::Relaxed) + 1;
                    return InsertOutcome::Inserted { len };
                }
                Err(mut state) => {
                    // Someone owns this slot. Wait out a concurrent publish
                    // (a handful of stores), then match on the key.
                    while state == BUSY {
                        std::hint::spin_loop();
                        state = slot.state.load(Ordering::Acquire);
                    }
                    if slot.k0.load(Ordering::Relaxed) == key.0
                        && slot.k1.load(Ordering::Relaxed) == key.1
                    {
                        slot.value.store(bits, Ordering::Relaxed);
                        return InsertOutcome::Updated;
                    }
                }
            }
            index = (index + 1) & self.mask;
        }
        InsertOutcome::TableFull
    }

    /// Snapshot every published entry. `SeqCst` state loads so a migration
    /// scan sequenced after the `migrating` flag store observes every
    /// publication that was `SeqCst`-ordered before the flag (writers whose
    /// publication came later re-insert themselves instead).
    fn entries(&self) -> impl Iterator<Item = ((u64, u64), u64)> + '_ {
        self.slots.iter().filter(|s| s.state.load(Ordering::SeqCst) == FULL).map(|s| {
            (
                (s.k0.load(Ordering::Relaxed), s.k1.load(Ordering::Relaxed)),
                s.value.load(Ordering::Relaxed),
            )
        })
    }
}

/// One shard: the live table, a `migrating` flag gating writers during
/// migration, and the cold-path grow lock holding retired tables.
struct Shard {
    current: AtomicPtr<Table>,
    /// Set while a migration is in flight. Writers insert *optimistically*
    /// (no registration) and re-check this flag plus the table pointer after
    /// publishing: a publication the migration scan could have missed is
    /// always followed by a re-check that observes the flag or the swapped
    /// pointer, and that writer re-inserts into the live table. Readers
    /// never check the flag: probes stay lock-free and a racy miss merely
    /// recomputes a deterministic value.
    migrating: AtomicBool,
    grow: Mutex<Vec<*mut Table>>,
    /// Completed table migrations (growth events) of this shard.
    migrations: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            current: AtomicPtr::new(Box::into_raw(Table::with_capacity(INITIAL_SLOTS))),
            migrating: AtomicBool::new(false),
            grow: Mutex::new(Vec::new()),
            migrations: AtomicU64::new(0),
        }
    }

    /// The live table. Safe because tables are only retired, never freed,
    /// while the cache is alive.
    fn table(&self) -> &Table {
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    fn insert(&self, key: (u64, u64), bits: u64) {
        loop {
            while self.migrating.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let table_ptr = self.current.load(Ordering::SeqCst);
            let table = unsafe { &*table_ptr };
            let outcome = table.insert(key, bits, Ordering::SeqCst);
            // Post-publication check, `SeqCst` like the publication: either
            // the publication is ordered before a concurrent migration's
            // flag store — then the migration scan (`SeqCst` loads,
            // sequenced after that store) sees the entry and copies it — or
            // this load observes the flag / the swapped pointer and the
            // insert retries against the live table. No entry is lost either
            // way.
            if self.migrating.load(Ordering::SeqCst)
                || self.current.load(Ordering::SeqCst) != table_ptr
            {
                continue;
            }
            match outcome {
                InsertOutcome::Inserted { len } if len > table.threshold() => {
                    self.grow_to(table.capacity() * 2);
                    return;
                }
                InsertOutcome::Inserted { .. } | InsertOutcome::Updated => return,
                InsertOutcome::TableFull => {
                    self.grow_to(table.capacity() * 2);
                    // Retry against the (possibly freshly grown) table.
                }
            }
        }
    }

    /// Replace the live table with one of at least `capacity` slots,
    /// migrating every entry. No-op if the live table is already big enough
    /// (e.g. a racing grower got there first).
    fn grow_to(&self, capacity: usize) {
        let capacity = capacity.next_power_of_two();
        let mut retired = self.grow.lock();
        let old_ptr = self.current.load(Ordering::SeqCst);
        let old = unsafe { &*old_ptr };
        if old.capacity() >= capacity {
            return;
        }
        // Gate new writers out, then copy. Writers whose publication raced
        // the flag re-insert themselves (see `insert`), so the scan below
        // may miss them; everything it does see lands in the new table,
        // which — at least double the old capacity and filled by no one
        // else — cannot overflow. Racing re-inserts spin on the flag and
        // land in the new table after the swap.
        self.migrating.store(true, Ordering::SeqCst);
        let new_ptr = Box::into_raw(Table::with_capacity(capacity));
        let new = unsafe { &*new_ptr };
        for (key, bits) in old.entries() {
            if matches!(new.insert(key, bits, Ordering::Release), InsertOutcome::TableFull) {
                unreachable!("migration target cannot fill up");
            }
        }
        self.current.store(new_ptr, Ordering::SeqCst);
        self.migrating.store(false, Ordering::SeqCst);
        retired.push(old_ptr);
        self.migrations.fetch_add(1, Ordering::Relaxed);
        obs_migrations().inc();
    }
}

// SAFETY: the raw table pointers are only created from `Box::into_raw`, only
// freed in `Drop`, and all shared access goes through atomics.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

/// A sharded, lock-free memoisation cache for scenario evaluations.
pub struct EvalCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Misses recorded without a probe (the engine's cold-start bypass).
    bypassed: AtomicU64,
    inserts: AtomicU64,
}

/// Snapshot of a cache's warm-start state — see [`EvalCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Total slot capacity across all shards.
    pub capacity: usize,
    /// Probes answered from the cache since construction / the last reset.
    pub hits: u64,
    /// Probes that missed since construction / the last reset.
    pub misses: u64,
    /// Slot probes actually performed (`hits + misses` minus the cold-start
    /// bypassed lookups, which are counted as misses but never walk a table).
    pub probes: u64,
    /// Entries stored (single and batched) since construction / the last
    /// reset.
    pub inserts: u64,
    /// Shard-table migrations (growth events) since construction.
    pub migrations: u64,
}

impl CacheStats {
    /// Fraction of probes answered from the cache (`0.0` when unprobed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl Drop for EvalCache {
    fn drop(&mut self) {
        for shard in &self.shards {
            let current = shard.current.load(Ordering::Relaxed);
            drop(unsafe { Box::from_raw(current) });
            for &retired in shard.grow.lock().iter() {
                drop(unsafe { Box::from_raw(retired) });
            }
        }
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        // Touch the registry-backed counters now: their first use allocates
        // (registry entry + Arc), and the probe/insert paths are covered by
        // a zero-allocation acceptance test.
        obs_inserts();
        obs_migrations();
        EvalCache {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypassed: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// An empty cache pre-sized for `entries` entries.
    pub fn with_capacity(entries: usize) -> Self {
        let cache = EvalCache::new();
        cache.reserve(entries);
        cache
    }

    fn shard(&self, key: (u64, u64)) -> &Shard {
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    /// Pre-size every shard so `entries` total entries fit without growing:
    /// large sweeps reserve their scenario count up front and the hot loop
    /// then never migrates a table mid-run.
    pub fn reserve(&self, entries: usize) {
        let per_shard = entries.div_ceil(SHARDS);
        // FNV-sharded keys spread binomially, so a shard can exceed the mean
        // by a few standard deviations; four of them (plus a small constant
        // for tiny reservations) makes mid-sweep growth vanishingly unlikely
        // without doubling the tables for it.
        let target = per_shard + 4 * (per_shard as f64).sqrt() as usize + 8;
        let mut capacity = INITIAL_SLOTS.max(target.next_power_of_two());
        while capacity - capacity / 8 < target {
            capacity *= 2;
        }
        for shard in &self.shards {
            if shard.table().capacity() < capacity {
                shard.grow_to(capacity);
            }
        }
    }

    /// Total slot capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.table().capacity()).sum()
    }

    /// Touch the home slot of every key with a plain load. Independent loads
    /// pipeline through the memory system (unlike the locked operations of
    /// `insert`, which drain the store buffer and serialise their cache
    /// misses), so warming a whole batch's cachelines first and then
    /// probing/inserting against L2 is several times faster than paying one
    /// serialised DRAM round-trip per key. A batch of ~1k keys touches ~64
    /// KiB — comfortably cache-resident.
    pub fn prefetch(&self, keys: &[(u64, u64)]) {
        for &key in keys {
            let table = self.shard(key).table();
            let slot = &table.slots[table.home(key)];
            prefetch_slot(slot);
        }
    }

    /// Probe a whole batch: hits fill `speedups`, misses mark `holes`
    /// (slots whose key is absent are left untouched otherwise). Returns the
    /// number of misses. Equivalent to [`EvalCache::prefetch`] followed by a
    /// per-key [`EvalCache::get`] loop — same probes, same hit/miss counting
    /// — but the home slot of the key `PROBE_AHEAD` positions ahead is
    /// prefetched each step, so the dependent probe walk overlaps its memory
    /// traffic instead of serialising one cache-line fetch per key. Panics
    /// if the slices differ in length.
    pub fn get_batch(
        &self,
        keys: &[(u64, u64)],
        speedups: &mut [f64],
        holes: &mut [bool],
    ) -> usize {
        assert_eq!(keys.len(), speedups.len(), "one speedup slot per key");
        assert_eq!(keys.len(), holes.len(), "one hole flag per key");
        /// How far ahead of the probe walk the pipeline warms cachelines:
        /// far enough to cover a DRAM round-trip at a few cycles per probe,
        /// near enough that the warmed lines survive until their turn.
        const PROBE_AHEAD: usize = 16;
        let mut missing = 0usize;
        for i in 0..keys.len() {
            if let Some(&ahead) = keys.get(i + PROBE_AHEAD) {
                let table = self.shard(ahead).table();
                prefetch_slot(&table.slots[table.home(ahead)]);
            }
            match self.get(keys[i]) {
                Some(speedup) => speedups[i] = speedup,
                None => {
                    holes[i] = true;
                    missing += 1;
                }
            }
        }
        missing
    }

    /// Look up a cached speedup, counting the probe as a hit or miss.
    pub fn get(&self, key: (u64, u64)) -> Option<f64> {
        match self.shard(key).table().probe(key) {
            Some(bits) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(f64::from_bits(bits))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up a cached speedup without touching the hit/miss counters.
    /// Used for internal re-probes (a batch re-checking its own first-probe
    /// holes), which would otherwise double-count and skew the statistics.
    pub fn peek(&self, key: (u64, u64)) -> Option<f64> {
        self.shard(key).table().probe(key).map(f64::from_bits)
    }

    /// Store an evaluated speedup (bit pattern preserved, NaNs included).
    pub fn insert(&self, key: (u64, u64), speedup: f64) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        obs_inserts().inc();
        self.shard(key).insert(key, speedup.to_bits());
    }

    /// Store a batch of evaluated speedups. Equivalent to calling
    /// [`EvalCache::insert`] per entry, but the publications are `Release`
    /// with **one** trailing `SeqCst` fence ordering the whole batch against
    /// concurrent shard migrations — on the sweep's cold back-fill path this
    /// replaces a full fence per scenario with one per batch. Panics if the
    /// slices differ in length.
    pub fn insert_batch(&self, keys: &[(u64, u64)], speedups: &[f64]) {
        assert_eq!(keys.len(), speedups.len(), "one speedup per key");
        self.inserts.fetch_add(keys.len() as u64, Ordering::Relaxed);
        obs_inserts().add(keys.len() as u64);
        self.prefetch(keys);
        // The table pointer each shard's inserts went through (null =
        // untouched). If the post-fence check finds a shard migrated (or
        // migrating) since, its keys are re-inserted through the fully
        // fenced single path — idempotent, values are deterministic per key.
        let mut seen: [*mut Table; SHARDS] = [std::ptr::null_mut(); SHARDS];
        for (&key, &speedup) in keys.iter().zip(speedups) {
            let index = (key.0 as usize) & (SHARDS - 1);
            let shard = &self.shards[index];
            if shard.migrating.load(Ordering::Acquire) {
                // Rare: fall back to the single path, which parks and
                // retries; the shard still gets a post-fence check below
                // for any earlier unfenced inserts.
                shard.insert(key, speedup.to_bits());
                continue;
            }
            let table_ptr = shard.current.load(Ordering::Acquire);
            if seen[index].is_null() {
                seen[index] = table_ptr;
            }
            // Keep the *earliest* observed pointer in `seen`: if the shard
            // migrates between two inserts of this batch, the final check
            // sees the mismatch and replays the shard's keys.
            let table = unsafe { &*table_ptr };
            match table.insert(key, speedup.to_bits(), Ordering::Release) {
                InsertOutcome::Inserted { len } if len > table.threshold() => {
                    shard.grow_to(table.capacity() * 2);
                }
                InsertOutcome::Inserted { .. } | InsertOutcome::Updated => {}
                InsertOutcome::TableFull => shard.insert(key, speedup.to_bits()),
            }
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        for (index, &table_ptr) in seen.iter().enumerate() {
            if table_ptr.is_null() {
                continue;
            }
            let shard = &self.shards[index];
            if shard.migrating.load(Ordering::SeqCst)
                || shard.current.load(Ordering::SeqCst) != table_ptr
            {
                for (&key, &speedup) in keys.iter().zip(speedups) {
                    if (key.0 as usize) & (SHARDS - 1) == index {
                        shard.insert(key, speedup.to_bits());
                    }
                }
            }
        }
    }

    /// Number of cached entries (exact while no inserts are in flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.table().entries().count()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes answered from the cache since construction / the last reset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that missed since construction / the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Record `n` misses whose probes were skipped: the engine's cold-start
    /// path evaluates straight away when the cache starts empty (every probe
    /// would miss), so it reports the bypassed probes here — otherwise the
    /// hit-rate a service derives from these counters would ignore exactly
    /// the sweeps that filled the cache.
    pub fn record_bypassed_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
        self.bypassed.fetch_add(n, Ordering::Relaxed);
    }

    /// Slot probes actually performed: every [`EvalCache::get`] call, i.e.
    /// `hits + misses` minus the bypassed cold-start misses (which are
    /// counted as misses without walking a table).
    pub fn probes(&self) -> u64 {
        (self.hits() + self.misses()).saturating_sub(self.bypassed.load(Ordering::Relaxed))
    }

    /// Entries stored (single and batched) since construction / the last
    /// reset. Counts insert *calls*; overwrites of duplicate keys are not
    /// distinguished.
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Completed shard-table migrations (growth events) since construction.
    pub fn migrations(&self) -> u64 {
        self.shards.iter().map(|s| s.migrations.load(Ordering::Relaxed)).sum()
    }

    /// Reset the hit/miss/probe/insert counters (entries — and the
    /// structural migration count — are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bypassed.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
    }

    /// One consistent-enough snapshot of the cache's warm-start state:
    /// entry/capacity footprint plus the lifetime hit/miss counters. Cheap to
    /// take (one table walk) and safe concurrently with inserts — counts may
    /// lag in-flight writers by a few entries, which is fine for the service
    /// stats and hit-rate reporting this feeds.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            capacity: self.capacity(),
            hits: self.hits(),
            misses: self.misses(),
            probes: self.probes(),
            inserts: self.inserts(),
            migrations: self.migrations(),
        }
    }

    /// The version tag stamped into persisted caches: the mp-dse crate
    /// version. Bumping the workspace version invalidates every persisted
    /// cache, so stale files cannot replay results an older build produced.
    pub fn format_version() -> String {
        format!("mp-dse-cache/{}", env!("CARGO_PKG_VERSION"))
    }

    /// Serialise every entry as JSON: a `[version, entries]` pair where the
    /// entries are `[key_hi, key_lo, value_bits]` hex-string triplets (hex so
    /// no `f64` precision is lost in transit).
    pub fn save_json(&self) -> String {
        let mut entries: Vec<(String, String, String)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for ((hi, lo), bits) in shard.table().entries() {
                entries.push((format!("{hi:016x}"), format!("{lo:016x}"), format!("{bits:016x}")));
            }
        }
        // Deterministic order regardless of slot placement.
        entries.sort();
        serde_json::to_string(&(Self::format_version(), entries))
            .expect("cache entries always serialise")
    }

    /// Load entries previously produced by [`EvalCache::save_json`] into this
    /// cache (existing entries are kept; duplicates are overwritten).
    ///
    /// # Errors
    /// Returns [`CacheLoadError::VersionMismatch`] when the file was
    /// persisted by a different build lineage (it must not replay its
    /// results), or [`CacheLoadError::Malformed`] describing the first bad
    /// entry. The whole document is validated before anything is inserted,
    /// so a partially corrupt file leaves the cache untouched instead of
    /// half-loaded.
    pub fn load_json(&self, json: &str) -> Result<usize, CacheLoadError> {
        let (version, entries): (String, Vec<(String, String, String)>) =
            serde_json::from_str(json).map_err(|e| CacheLoadError::Malformed(e.to_string()))?;
        Self::check_version(&version)?;
        let mut parsed = Vec::with_capacity(entries.len());
        for (hi, lo, bits) in entries {
            let field = |s: &str| {
                u64::from_str_radix(s, 16)
                    .map_err(|e| CacheLoadError::Malformed(format!("bad hex `{s}`: {e}")))
            };
            parsed.push(((field(&hi)?, field(&lo)?), field(&bits)?));
        }
        self.insert_validated(&parsed);
        Ok(parsed.len())
    }

    /// Serialise every entry in the binary **segment** format: the compact,
    /// checksummed form the durable-job checkpoints spill every K windows
    /// (24 bytes per entry instead of ~60 of JSON hex, no parse on reload).
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// magic   8 bytes   b"MPSEGV1\0"
    /// vlen    u32       length of the version string
    /// version vlen      `EvalCache::format_version()` bytes
    /// count   u64       entry count N
    /// entries 24 × N    key_hi u64 | key_lo u64 | value_bits u64
    /// crc     u32       CRC-32 (IEEE) of every preceding byte
    /// ```
    ///
    /// Entries are sorted, so equal cache contents serialise to equal bytes.
    pub fn save_segment(&self) -> Vec<u8> {
        let mut entries: Vec<((u64, u64), u64)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            entries.extend(shard.table().entries());
        }
        entries.sort_unstable();
        let version = Self::format_version();
        let mut bytes =
            Vec::with_capacity(SEGMENT_MAGIC.len() + 12 + version.len() + entries.len() * 24 + 4);
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&(version.len() as u32).to_le_bytes());
        bytes.extend_from_slice(version.as_bytes());
        bytes.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for ((hi, lo), value) in entries {
            bytes.extend_from_slice(&hi.to_le_bytes());
            bytes.extend_from_slice(&lo.to_le_bytes());
            bytes.extend_from_slice(&value.to_le_bytes());
        }
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Load a segment previously produced by [`EvalCache::save_segment`]
    /// (existing entries are kept; duplicates are overwritten).
    ///
    /// # Errors
    /// A file truncated at **any** byte boundary — the torn write a crash
    /// mid-spill leaves behind — is reported as [`CacheLoadError::Truncated`]
    /// (the length prefix claims more than is present) or
    /// [`CacheLoadError::Checksum`] (the CRC no longer covers what it
    /// guards); flipped bytes fail the CRC; foreign files fail the magic;
    /// stale files fail the version check. Nothing is inserted on any error.
    pub fn load_segment(&self, bytes: &[u8]) -> Result<usize, CacheLoadError> {
        let truncated =
            |expected: usize| CacheLoadError::Truncated { expected, actual: bytes.len() };
        let header = SEGMENT_MAGIC.len() + 4;
        if bytes.len() < header {
            return Err(truncated(header));
        }
        if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Err(CacheLoadError::Malformed("not a cache segment (bad magic)".to_string()));
        }
        let vlen = u32::from_le_bytes(
            bytes[SEGMENT_MAGIC.len()..header].try_into().expect("4 bytes sliced"),
        ) as usize;
        // Guard the arithmetic below against absurd prefixes before using
        // them as lengths.
        if vlen > 1024 {
            return Err(CacheLoadError::Malformed(format!("implausible version length {vlen}")));
        }
        if bytes.len() < header + vlen + 8 {
            return Err(truncated(header + vlen + 8));
        }
        let version = std::str::from_utf8(&bytes[header..header + vlen])
            .map_err(|_| CacheLoadError::Malformed("version string is not UTF-8".to_string()))?;
        Self::check_version(version)?;
        let count = u64::from_le_bytes(
            bytes[header + vlen..header + vlen + 8].try_into().expect("8 bytes sliced"),
        );
        let body = header + vlen + 8;
        let expected = body
            .checked_add((count as usize).checked_mul(24).ok_or_else(|| {
                CacheLoadError::Malformed(format!("implausible entry count {count}"))
            })?)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| CacheLoadError::Malformed(format!("implausible entry count {count}")))?;
        if bytes.len() < expected {
            return Err(truncated(expected));
        }
        if bytes.len() > expected {
            return Err(CacheLoadError::Malformed(format!(
                "{} trailing bytes after the checksum",
                bytes.len() - expected
            )));
        }
        let stored = u32::from_le_bytes(bytes[expected - 4..].try_into().expect("4 bytes sliced"));
        let computed = crc32(&bytes[..expected - 4]);
        if stored != computed {
            return Err(CacheLoadError::Checksum { stored, computed });
        }
        let mut parsed = Vec::with_capacity(count as usize);
        for chunk in bytes[body..expected - 4].chunks_exact(24) {
            let word = |i: usize| {
                u64::from_le_bytes(chunk[i * 8..(i + 1) * 8].try_into().expect("8 bytes sliced"))
            };
            parsed.push(((word(0), word(1)), word(2)));
        }
        self.insert_validated(&parsed);
        Ok(parsed.len())
    }

    fn check_version(version: &str) -> Result<(), CacheLoadError> {
        if version == Self::format_version() {
            Ok(())
        } else {
            Err(CacheLoadError::VersionMismatch {
                found: version.to_string(),
                expected: Self::format_version(),
            })
        }
    }

    /// Bulk-insert fully validated entries (shared tail of both loaders).
    fn insert_validated(&self, entries: &[((u64, u64), u64)]) {
        self.reserve(entries.len());
        for &(key, bits) in entries {
            self.shard(key).insert(key, bits);
        }
    }
}

/// Magic prefix of the binary segment format ([`EvalCache::save_segment`]).
const SEGMENT_MAGIC: &[u8; 8] = b"MPSEGV1\0";

/// Why a persisted cache (JSON or binary segment) was refused. Every
/// variant means "start cold", never "panic": loaders validate the whole
/// file before touching the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLoadError {
    /// The document or segment could not be parsed (bad JSON, bad magic,
    /// non-hex fields, trailing bytes).
    Malformed(String),
    /// The file was persisted by a different build lineage and must not
    /// replay its results.
    VersionMismatch {
        /// The version tag found in the file.
        found: String,
        /// This build's [`EvalCache::format_version`].
        expected: String,
    },
    /// The segment is shorter than its own header and length prefix claim —
    /// the torn write a crash mid-spill leaves behind.
    Truncated {
        /// Bytes the header claims the segment holds.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The CRC-32 guard does not cover the bytes present.
    Checksum {
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum of the bytes actually read.
        computed: u32,
    },
}

impl std::fmt::Display for CacheLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLoadError::Malformed(reason) => write!(f, "malformed cache file: {reason}"),
            CacheLoadError::VersionMismatch { found, expected } => {
                write!(f, "cache version `{found}` does not match this build (`{expected}`)")
            }
            CacheLoadError::Truncated { expected, actual } => {
                write!(f, "cache segment truncated: {actual} of {expected} bytes present")
            }
            CacheLoadError::Checksum { stored, computed } => write!(
                f,
                "cache segment checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
        }
    }
}

impl std::error::Error for CacheLoadError {}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the guard under
/// the binary cache segments and the durable-job checkpoint manifests.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Warm the cacheline of one slot ahead of a dependent probe. On x86-64 this
/// is a dedicated `prefetcht0` (no load port, no dependency); elsewhere a
/// plain relaxed load of the state byte.
#[inline]
fn prefetch_slot(slot: &Slot) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(slot as *const Slot as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = slot.state.load(Ordering::Relaxed);
    }
}

/// Fill the canonical cache keys of one design run, dispatching between the
/// scalar fold ([`CanonicalKeyPrefix::key_for`] per design) and the
/// lane-parallel AVX2 suffix fold. The fold is pure integer arithmetic
/// (per-byte FNV-1a: xor then a 64-bit multiply, emulated on AVX2 as three
/// 32×32 partial products), so lane keys are *exactly* the scalar keys —
/// there is no rounding to reason about.
///
/// [`CanonicalKeyPrefix::key_for`]: crate::scenario::CanonicalKeyPrefix::key_for
pub(crate) fn fill_design_keys(
    prefix: &crate::scenario::CanonicalKeyPrefix,
    designs: &[crate::scenario::ChipSpec],
    tables: &crate::tables::SpaceTables,
    design_start: usize,
    out: &mut [(u64, u64)],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if mp_model::simd::level() == mp_model::simd::SimdLevel::Avx2 {
            let state = prefix.state();
            let r_bits = tables.key_r_bits();
            let rl_bits = tables.key_rl_bits();
            let end = design_start + out.len();
            for seg in tables.segments() {
                let a = seg.start.max(design_start);
                let b = (seg.start + seg.len).min(end);
                if a >= b {
                    continue;
                }
                let ka = a - design_start;
                let len = b - a;
                let lanes_len = len & !3;
                if lanes_len > 0 {
                    // SAFETY: AVX2 was detected above; the bit columns hold
                    // one entry per design, covering `[a, a + lanes_len)`.
                    unsafe {
                        fold_design_keys_avx2(
                            state,
                            seg.asym,
                            lanes_len,
                            r_bits[a..].as_ptr(),
                            rl_bits[a..].as_ptr(),
                            out[ka..].as_mut_ptr(),
                        );
                    }
                }
                for k in lanes_len..len {
                    out[ka + k] = prefix.key_for(designs[a + k]);
                }
            }
            return;
        }
    }
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = prefix.key_for(designs[design_start + k]);
    }
}

/// Four FNV-1a suffix folds at a time: broadcast the prefix state, fold the
/// organisation tag byte once, then fold the 8 little-endian bytes of each
/// design's canonicalised `r` bits (and `rl` bits for asymmetric designs)
/// lane-parallel. The 64-bit multiply by the FNV prime is emulated with
/// three `vpmuludq` partial products (the prime's high half is `0x100`, the
/// low half `0x1b3`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_design_keys_avx2(
    state: (u64, u64),
    asym: bool,
    n: usize,
    r_bits: *const u64,
    rl_bits: *const u64,
    out: *mut (u64, u64),
) {
    use core::arch::x86_64::*;

    const PRIME: u64 = 0x100_0000_01b3;
    let prime_lo = _mm256_set1_epi64x((PRIME & 0xffff_ffff) as i64);
    let prime_hi = _mm256_set1_epi64x((PRIME >> 32) as i64);
    let byte_mask = _mm256_set1_epi64x(0xff);

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold(state: __m256i, byte: __m256i, prime_lo: __m256i, prime_hi: __m256i) -> __m256i {
        let x = _mm256_xor_si256(state, byte);
        // x * PRIME mod 2^64 = lo(x)·lo(p) + ((hi(x)·lo(p) + lo(x)·hi(p)) << 32)
        let lo_lo = _mm256_mul_epu32(x, prime_lo);
        let hi_lo = _mm256_mul_epu32(_mm256_srli_epi64::<32>(x), prime_lo);
        let lo_hi = _mm256_mul_epu32(x, prime_hi);
        let cross = _mm256_slli_epi64::<32>(_mm256_add_epi64(hi_lo, lo_hi));
        _mm256_add_epi64(lo_lo, cross)
    }

    // The tag byte is segment-wide: fold it into the broadcast prefix once.
    let tag = _mm256_set1_epi64x(if asym { 2 } else { 1 });
    let base0 = fold(_mm256_set1_epi64x(state.0 as i64), tag, prime_lo, prime_hi);
    let base1 = fold(_mm256_set1_epi64x(state.1 as i64), tag, prime_lo, prime_hi);

    let mut i = 0;
    while i < n {
        let mut s0 = base0;
        let mut s1 = base1;
        let rb = _mm256_loadu_si256(r_bits.add(i) as *const __m256i);
        for shift in 0..8 {
            let byte =
                _mm256_and_si256(_mm256_srl_epi64(rb, _mm_cvtsi32_si128(8 * shift)), byte_mask);
            s0 = fold(s0, byte, prime_lo, prime_hi);
            s1 = fold(s1, byte, prime_lo, prime_hi);
        }
        if asym {
            let rlb = _mm256_loadu_si256(rl_bits.add(i) as *const __m256i);
            for shift in 0..8 {
                let byte = _mm256_and_si256(
                    _mm256_srl_epi64(rlb, _mm_cvtsi32_si128(8 * shift)),
                    byte_mask,
                );
                s0 = fold(s0, byte, prime_lo, prime_hi);
                s1 = fold(s1, byte, prime_lo, prime_hi);
            }
        }
        let mut lanes0 = [0u64; 4];
        let mut lanes1 = [0u64; 4];
        _mm256_storeu_si256(lanes0.as_mut_ptr() as *mut __m256i, s0);
        _mm256_storeu_si256(lanes1.as_mut_ptr() as *mut __m256i, s1);
        for j in 0..4 {
            *out.add(i + j) = (lanes0[j], lanes1[j]);
        }
        i += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let cache = EvalCache::new();
        assert_eq!(cache.get((1, 2)), None);
        cache.insert((1, 2), 3.5);
        assert_eq!(cache.get((1, 2)), Some(3.5));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let cache = EvalCache::new();
        cache.insert((9, 9), f64::NAN);
        let got = cache.get((9, 9)).unwrap();
        assert_eq!(got.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn overwriting_a_key_keeps_one_entry() {
        let cache = EvalCache::new();
        cache.insert((5, 6), 1.0);
        cache.insert((5, 6), 2.0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.peek((5, 6)), Some(2.0));
    }

    #[test]
    fn growth_keeps_every_entry() {
        let cache = EvalCache::new();
        // Far beyond the initial SHARDS × 64-slot capacity, with keys
        // crafted to hammer a handful of shards (same low bits of key.0).
        let n = 40_000u64;
        for i in 0..n {
            cache.insert((i * SHARDS as u64, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), i as f64);
        }
        assert_eq!(cache.len(), n as usize);
        for i in 0..n {
            let got = cache
                .peek((i * SHARDS as u64, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .unwrap_or(f64::NAN);
            assert_eq!(got.to_bits(), (i as f64).to_bits(), "entry {i} lost in growth");
        }
    }

    #[test]
    fn reserve_presizes_and_prevents_growth() {
        let cache = EvalCache::new();
        cache.reserve(100_000);
        let capacity = cache.capacity();
        assert!(capacity >= 100_000 * 8 / 7, "got {capacity}");
        for i in 0..100_000u64 {
            cache.insert((i, i * 31), i as f64);
        }
        assert_eq!(cache.capacity(), capacity, "a reserved cache must not grow mid-run");
        assert_eq!(cache.len(), 100_000);
    }

    #[test]
    fn json_round_trip_preserves_bits() {
        let cache = EvalCache::new();
        cache.insert((1, 2), 0.1 + 0.2);
        cache.insert((u64::MAX, 7), f64::NAN);
        cache.insert((3, 4), -0.0);
        let json = cache.save_json();

        let restored = EvalCache::new();
        assert_eq!(restored.load_json(&json).unwrap(), 3);
        assert_eq!(restored.get((1, 2)).unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(restored.get((u64::MAX, 7)).unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(restored.get((3, 4)).unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn partially_malformed_json_loads_nothing() {
        let cache = EvalCache::new();
        // First entry valid, second has non-hex value bits.
        let json = format!(
            r#"["{}",[["0000000000000001","0000000000000002","3ff0000000000000"],["0000000000000003","0000000000000004","zzzz"]]]"#,
            EvalCache::format_version()
        );
        assert!(cache.load_json(&json).is_err());
        assert!(cache.is_empty(), "a failed load must not half-populate the cache");
    }

    #[test]
    fn mismatched_version_loads_nothing() {
        let source = EvalCache::new();
        source.insert((1, 2), 3.5);
        let stale = source.save_json().replace(&EvalCache::format_version(), "mp-dse-cache/0.0.0");
        let cache = EvalCache::new();
        let err = cache.load_json(&stale).unwrap_err();
        assert!(matches!(err, CacheLoadError::VersionMismatch { .. }), "{err}");
        assert!(err.to_string().contains("version"), "{err}");
        assert!(cache.is_empty());
    }

    #[test]
    fn segment_round_trip_preserves_bits_and_matches_json() {
        let cache = EvalCache::new();
        cache.insert((1, 2), 0.1 + 0.2);
        cache.insert((u64::MAX, 7), f64::NAN);
        cache.insert((3, 4), -0.0);
        let segment = cache.save_segment();

        let restored = EvalCache::new();
        assert_eq!(restored.load_segment(&segment).unwrap(), 3);
        assert_eq!(restored.get((1, 2)).unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(restored.get((u64::MAX, 7)).unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(restored.get((3, 4)).unwrap().to_bits(), (-0.0f64).to_bits());
        // The two persistence formats describe the same contents.
        assert_eq!(restored.save_json(), cache.save_json());
        assert_eq!(restored.save_segment(), segment, "segment bytes are deterministic");
    }

    #[test]
    fn segment_truncated_at_any_byte_loads_nothing() {
        let cache = EvalCache::new();
        for i in 0..50u64 {
            cache.insert((i, i * 31), i as f64);
        }
        let segment = cache.save_segment();
        for cut in 0..segment.len() {
            let torn = EvalCache::new();
            let err = torn.load_segment(&segment[..cut]);
            assert!(err.is_err(), "truncation at byte {cut} of {} must fail", segment.len());
            assert!(torn.is_empty(), "truncation at byte {cut} must not half-load");
        }
    }

    #[test]
    fn segment_corruption_and_foreign_files_are_typed_errors() {
        let cache = EvalCache::new();
        cache.insert((1, 2), 3.5);
        let segment = cache.save_segment();

        // A flipped payload byte (inside the last entry, before the CRC
        // trailer) fails the CRC.
        let mut flipped = segment.clone();
        let cut = flipped.len() - 10;
        flipped[cut] ^= 0x40;
        let target = EvalCache::new();
        assert!(matches!(
            target.load_segment(&flipped).unwrap_err(),
            CacheLoadError::Checksum { .. }
        ));
        assert!(target.is_empty());

        // Trailing garbage is rejected, not silently ignored.
        let mut padded = segment.clone();
        padded.extend_from_slice(b"junk");
        assert!(matches!(target.load_segment(&padded).unwrap_err(), CacheLoadError::Malformed(_)));

        // A foreign file fails the magic check.
        assert!(matches!(
            target.load_segment(b"this is not a segment at all").unwrap_err(),
            CacheLoadError::Malformed(_)
        ));
        // An empty file is a truncation, not a panic.
        assert!(matches!(target.load_segment(b"").unwrap_err(), CacheLoadError::Truncated { .. }));
        assert!(target.is_empty());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn save_is_deterministic() {
        let a = EvalCache::new();
        let b = EvalCache::new();
        for i in 0..100u64 {
            a.insert((i * 31, i), i as f64);
            b.insert(((99 - i) * 31, 99 - i), (99 - i) as f64);
        }
        assert_eq!(a.save_json(), b.save_json());
    }

    #[test]
    fn concurrent_inserts_and_probes_stay_consistent() {
        let cache = EvalCache::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (i * 7 + t * 101, i.rotate_left(17) ^ t);
                        cache.insert(key, (i + t) as f64);
                        if let Some(v) = cache.peek(key) {
                            // A probe may race a concurrent overwrite of the
                            // same key by another thread, but a present value
                            // is always one that was inserted for this key.
                            assert!((0.0..3_000.0).contains(&v));
                        }
                    }
                });
            }
        });
        // Every thread's final inserts are all present afterwards.
        for t in 0..8u64 {
            for i in 0..2_000u64 {
                let key = (i * 7 + t * 101, i.rotate_left(17) ^ t);
                assert!(cache.peek(key).is_some(), "t={t} i={i}");
            }
        }
    }
}
