//! Streaming JSON / CSV export of sweep results.
//!
//! Both writers stream record by record into any [`std::io::Write`] — no
//! intermediate per-sweep string is built, so exporting a million-scenario
//! sweep costs O(1) memory beyond the records themselves. The emitted field
//! order and float formatting are deterministic, so byte-identical sweeps
//! export byte-identical files.

use std::io::{self, Write};

use crate::engine::{EvalRecord, SweepStats};
use crate::scenario::{ChipSpec, ScenarioSpace};

/// Formatting of one record's scenario axes, shared by both formats.
struct RecordFields {
    app: String,
    budget: f64,
    kind: &'static str,
    r: f64,
    rl: f64,
    growth: String,
    perf: String,
    reduction: String,
    topology: String,
}

fn fields(space: &ScenarioSpace, record: &EvalRecord) -> RecordFields {
    let scenario = space.scenario(record.index);
    let (kind, r, rl) = match scenario.design {
        ChipSpec::Symmetric { r } => ("symmetric", r, f64::NAN),
        ChipSpec::Asymmetric { r, rl } => ("asymmetric", r, rl),
    };
    RecordFields {
        app: scenario.app.name.clone(),
        budget: scenario.budget.total_bce(),
        kind,
        r,
        rl,
        growth: scenario.growth.label(),
        perf: scenario.perf.label(),
        reduction: scenario.reduction.name().to_string(),
        topology: format!("{:?}", scenario.topology),
    }
}

fn float(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        String::new()
    }
}

/// RFC-4180 quoting for free-form fields (application names are arbitrary
/// user strings; the remaining string columns are fixed identifiers).
fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Stream the records as CSV (header + one row per record; invalid scenarios
/// get an empty speedup column).
pub fn write_csv<W: Write>(
    out: &mut W,
    space: &ScenarioSpace,
    records: &[EvalRecord],
) -> io::Result<()> {
    writeln!(
        out,
        "index,app,budget_bce,design,r,rl,cores,area,growth,perf,reduction,topology,speedup"
    )?;
    for record in records {
        let f = fields(space, record);
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            record.index,
            csv_escape(&f.app),
            float(f.budget),
            f.kind,
            float(f.r),
            float(f.rl),
            float(record.cores),
            float(record.area),
            f.growth,
            f.perf,
            f.reduction,
            f.topology,
            float(record.speedup),
        )?;
    }
    Ok(())
}

/// Stream the sweep as a JSON document: stats header plus a records array,
/// one object per line. Invalid speedups are emitted as `null` (JSON has no
/// NaN).
pub fn write_json<W: Write>(
    out: &mut W,
    space: &ScenarioSpace,
    records: &[EvalRecord],
    stats: &SweepStats,
) -> io::Result<()> {
    write!(
        out,
        "{{\"stats\":{},\"records\":[",
        serde_json::to_string(stats).expect("stats always serialise")
    )?;
    for (i, record) in records.iter().enumerate() {
        let f = fields(space, record);
        let speedup = if record.speedup.is_finite() {
            format!("{}", record.speedup)
        } else {
            "null".to_string()
        };
        write!(
            out,
            "{}\n{{\"index\":{},\"app\":{},\"budget_bce\":{},\"design\":\"{}\",\"r\":{},\"rl\":{},\"cores\":{},\"area\":{},\"growth\":\"{}\",\"perf\":\"{}\",\"reduction\":\"{}\",\"topology\":\"{}\",\"speedup\":{}}}",
            if i == 0 { "" } else { "," },
            record.index,
            serde_json::to_string(&f.app).expect("strings serialise"),
            f.budget,
            f.kind,
            json_float(f.r),
            json_float(f.rl),
            json_float(record.cores),
            json_float(record.area),
            f.growth,
            f.perf,
            f.reduction,
            f.topology,
            speedup,
        )?;
    }
    writeln!(out, "\n]}}")?;
    Ok(())
}

fn json_float(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::engine::{Engine, SweepConfig};

    fn sweep() -> (ScenarioSpace, Vec<EvalRecord>, SweepStats) {
        let space = ScenarioSpace::new()
            .clear_designs()
            .add_symmetric_grid([1.0, 4.0, 512.0])
            .add_asymmetric_grid([1.0], [16.0]);
        let engine = Engine::new(1);
        let result = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
        (space, result.records, result.stats)
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let (space, records, _) = sweep();
        let mut buf = Vec::new();
        write_csv(&mut buf, &space, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + records.len());
        assert!(lines[0].starts_with("index,app,"));
        // The unfit r = 512 design exports an empty speedup cell.
        assert!(lines[3].ends_with(','));
        // The asymmetric design carries an rl value.
        assert!(lines[4].contains("asymmetric"));
    }

    #[test]
    fn json_parses_back_and_nan_becomes_null() {
        let (space, records, stats) = sweep();
        let mut buf = Vec::new();
        write_json(&mut buf, &space, &records, &stats).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let value = serde_json::parse(&text).unwrap();
        let map = value.as_map().unwrap();
        let parsed_records =
            map.iter().find(|(k, _)| k == "records").and_then(|(_, v)| v.as_arr()).unwrap();
        assert_eq!(parsed_records.len(), records.len());
        let unfit = parsed_records[2].as_map().unwrap();
        assert!(unfit.iter().find(|(k, _)| k == "speedup").unwrap().1.is_null());
    }

    #[test]
    fn exports_are_deterministic() {
        let (space, records, stats) = sweep();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_csv(&mut a, &space, &records).unwrap();
        write_csv(&mut b, &space, &records).unwrap();
        assert_eq!(a, b);
        let mut c = Vec::new();
        let mut d = Vec::new();
        write_json(&mut c, &space, &records, &stats).unwrap();
        write_json(&mut d, &space, &records, &stats).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn csv_quotes_app_names_containing_delimiters() {
        use mp_model::params::AppParams;
        let space = ScenarioSpace::new()
            .with_apps(vec![AppParams::table2_kmeans().with_name("kmeans, \"tuned\"")]);
        let engine = Engine::new(1);
        let result = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
        let mut buf = Vec::new();
        write_csv(&mut buf, &space, &result.records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row = text.lines().nth(1).unwrap();
        assert!(row.contains("\"kmeans, \"\"tuned\"\"\""), "row: {row}");
        // The one embedded comma sits inside the quoted field, so a naive
        // split sees exactly one extra column and an RFC-4180 reader sees the
        // correct count.
        let header_cols = text.lines().next().unwrap().split(',').count();
        let naive_cols = row.split(',').count();
        assert_eq!(naive_cols, header_cols + 1, "row: {row}");
    }
}
