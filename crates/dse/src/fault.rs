//! Deterministic fault injection for robustness tests and crash drills.
//!
//! [`FaultyBackend`] wraps any [`EvalBackend`] and misbehaves **on a
//! schedule** instead of at random, so every failure a test provokes is
//! reproducible: it can fail (panic on) exactly the Nth batch once, fail
//! every batch until the fault is cleared, inject a fixed latency per batch
//! (to widen the window a crash drill must hit), or halt after N batches
//! until released (to park a sweep at a known point). The wrapper is
//! **transparent** when no fault fires — it delegates `name`, `cache_salt`
//! and every evaluation verbatim, so its records (and its cache entries) are
//! bit-identical to the inner backend's.
//!
//! Faults are controlled through the shared [`FaultPlan`] handle, which the
//! injecting test keeps while the backend is owned by an engine or service.
//! Only batch evaluations are counted and faulted; batch **ordinals** are
//! process-wide per plan, so "the Nth batch" means the Nth batch any thread
//! evaluates through this plan.
//!
//! This module is compiled only with the `fault` cargo feature — it exists
//! for tests, benches and the `repro serve --fail-nth` CI drill, not for
//! production configurations.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::backend::{DseError, EvalBackend};
use crate::scenario::{Scenario, ScenarioSpace};
use crate::tables::SpaceTables;

/// The shared schedule of a [`FaultyBackend`]: which batch ordinals fail,
/// whether every batch fails, how much latency each batch absorbs, and an
/// optional halt gate. All mutators are callable while sweeps are running.
pub struct FaultPlan {
    /// Batches evaluated through this plan so far (the ordinal mint).
    calls: AtomicU64,
    /// Ordinals that panic **once** — consumed when they fire, so a retry
    /// of the same window succeeds.
    fail_once: Mutex<HashSet<u64>>,
    /// When set, every batch panics until [`FaultPlan::clear_fault`].
    fail_all: AtomicBool,
    /// Injected latency per batch, microseconds.
    latency_us: AtomicU64,
    /// Batches allowed through before blocking on the gate
    /// (`u64::MAX` = no gate).
    halt_after: AtomicU64,
    /// Whether the halt gate has been released.
    gate: Mutex<bool>,
    released: Condvar,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            calls: AtomicU64::new(0),
            fail_once: Mutex::new(HashSet::new()),
            fail_all: AtomicBool::new(false),
            latency_us: AtomicU64::new(0),
            halt_after: AtomicU64::new(u64::MAX),
            gate: Mutex::new(false),
            released: Condvar::new(),
        }
    }
}

impl FaultPlan {
    /// A plan with no faults armed.
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Arm a one-shot failure: batch ordinal `n` (0-based) panics, then the
    /// fault is consumed so a retry succeeds.
    pub fn fail_batch(&self, n: u64) {
        self.fail_once.lock().expect("fault plan poisoned").insert(n);
    }

    /// Arm a persistent failure: every batch panics until
    /// [`FaultPlan::clear_fault`] — what drives a job into `Failed`.
    pub fn fail_all(&self) {
        self.fail_all.store(true, Ordering::SeqCst);
    }

    /// Clear the persistent failure (one-shot faults already consumed stay
    /// consumed; armed ones stay armed).
    pub fn clear_fault(&self) {
        self.fail_all.store(false, Ordering::SeqCst);
    }

    /// Inject `latency` of sleep into every batch — widens the window a
    /// crash drill must land a kill in.
    pub fn set_latency(&self, latency: Duration) {
        self.latency_us.store(latency.as_micros() as u64, Ordering::SeqCst);
    }

    /// Let `n` more batches through (counted from now), then block further
    /// batches on the gate until [`FaultPlan::release`].
    pub fn halt_after(&self, n: u64) {
        let now = self.calls.load(Ordering::SeqCst);
        *self.gate.lock().expect("fault plan poisoned") = false;
        self.halt_after.store(now.saturating_add(n), Ordering::SeqCst);
    }

    /// Open the halt gate: every blocked batch proceeds and the gate stays
    /// open until the next [`FaultPlan::halt_after`].
    pub fn release(&self) {
        self.halt_after.store(u64::MAX, Ordering::SeqCst);
        *self.gate.lock().expect("fault plan poisoned") = true;
        self.released.notify_all();
    }

    /// Batches evaluated through this plan so far.
    pub fn batches(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Mint this batch's ordinal and apply the armed faults in order:
    /// latency, halt gate, then scheduled panics.
    fn before_batch(&self) {
        let ordinal = self.calls.fetch_add(1, Ordering::SeqCst);
        let latency_us = self.latency_us.load(Ordering::SeqCst);
        if latency_us > 0 {
            std::thread::sleep(Duration::from_micros(latency_us));
        }
        if ordinal >= self.halt_after.load(Ordering::SeqCst) {
            let mut released = self.gate.lock().expect("fault plan poisoned");
            while !*released && ordinal >= self.halt_after.load(Ordering::SeqCst) {
                released = self.released.wait(released).expect("fault plan poisoned");
            }
        }
        let fail_once = self.fail_once.lock().expect("fault plan poisoned").remove(&ordinal);
        if fail_once || self.fail_all.load(Ordering::SeqCst) {
            panic!("injected fault: batch {ordinal}");
        }
    }
}

/// An [`EvalBackend`] wrapper that misbehaves on the schedule of its
/// [`FaultPlan`] and is otherwise bit-transparent. See the module docs.
pub struct FaultyBackend<B> {
    inner: B,
    plan: Arc<FaultPlan>,
}

impl<B: EvalBackend> FaultyBackend<B> {
    /// Wrap `inner`, controlled by `plan`.
    pub fn new(inner: B, plan: Arc<FaultPlan>) -> Self {
        FaultyBackend { inner, plan }
    }

    /// The shared fault schedule.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl<B: EvalBackend> EvalBackend for FaultyBackend<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    // The salt deliberately delegates too: the wrapper never changes
    // *values*, so its cache entries must interoperate with the plain
    // backend's (a resumed job warm-starts from spills a faulted run wrote).
    fn cache_salt(&self) -> String {
        self.inner.cache_salt()
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        self.inner.evaluate(scenario)
    }

    fn evaluate_batch(
        &self,
        space: &ScenarioSpace,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.plan.before_batch();
        self.inner.evaluate_batch(space, range, out);
    }

    fn evaluate_batch_prepared(
        &self,
        space: &ScenarioSpace,
        tables: &SpaceTables,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.plan.before_batch();
        self.inner.evaluate_batch_prepared(space, tables, range, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::engine::{Engine, SweepConfig};

    fn space() -> ScenarioSpace {
        ScenarioSpace::new().clear_designs().add_symmetric_grid((0..64).map(|i| 1.0 + i as f64))
    }

    #[test]
    fn transparent_when_no_fault_is_armed() {
        let space = space();
        let engine = Engine::new(1);
        let plain = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
        let faulty = FaultyBackend::new(AnalyticBackend, FaultPlan::new());
        let wrapped = Engine::new(1).sweep(&space, &faulty, &SweepConfig::default());
        assert!(faulty.plan().batches() > 0);
        for (a, b) in plain.records.iter().zip(wrapped.records.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }

    #[test]
    fn nth_batch_fails_once_then_the_retry_succeeds() {
        let space = space();
        let faulty = FaultyBackend::new(AnalyticBackend, FaultPlan::new());
        faulty.plan().fail_batch(0);
        let engine = Engine::new(1);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.sweep(&space, &faulty, &SweepConfig::default())
        }));
        assert!(attempt.is_err(), "the armed batch must panic");
        // The fault was consumed: the retry completes.
        let retry = engine.sweep(&space, &faulty, &SweepConfig::default());
        assert_eq!(retry.stats.scenarios, space.len());
    }

    #[test]
    fn fail_all_parks_until_cleared() {
        let space = space();
        let faulty = FaultyBackend::new(AnalyticBackend, FaultPlan::new());
        faulty.plan().fail_all();
        let engine = Engine::new(1);
        for _ in 0..3 {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.sweep(&space, &faulty, &SweepConfig::default())
            }));
            assert!(attempt.is_err());
        }
        faulty.plan().clear_fault();
        let healed = engine.sweep(&space, &faulty, &SweepConfig::default());
        assert_eq!(healed.stats.scenarios, space.len());
    }
}
