//! Pluggable evaluation backends.
//!
//! A backend turns one [`Scenario`] into a predicted speedup. Four are
//! provided:
//!
//! * [`AnalyticBackend`] — the paper's extended model (Eq. 4/5); consumes the
//!   application, budget, design, growth and perf axes.
//! * [`MeasuredBackend`] — the extended model driven by *measured*
//!   calibrations ([`CalibratedParams`]): each scenario application resolves
//!   to its calibrated parameters and fitted growth function, closing the
//!   paper's measure → extract → model → explore loop.
//! * [`CommBackend`] — the communication-aware model (Eq. 6–8); the
//!   scenario's growth axis drives the reduction *computation* and the
//!   topology axis the communication.
//! * [`SimBackend`] — trace-driven: synthesises an `mp-cmpsim` phase program
//!   from the application parameters and times it on the scenario's machine;
//!   the reduction-strategy axis selects the merge implementation, and the
//!   overhead growth *emerges* from the simulator's core/cache models instead
//!   of being assumed.
//!
//! Backends also expose [`EvalBackend::evaluate_batch`] over a contiguous
//! index range of a space (default: a per-scenario loop; the analytic
//! backends hoist model construction per shared-axis run) and — the sweep
//! hot path — [`EvalBackend::evaluate_batch_prepared`], which streams the
//! design-innermost inner loop through the sweep's precomputed
//! [`SpaceTables`] columns with zero heap allocation per scenario, borrowing
//! parameters via [`PreparedModel`] instead of cloning them. Both paths are
//! bit-identical to per-scenario evaluation by contract (and by
//! `tests/sweep_parity.rs`).

use parking_lot::Mutex;
use std::collections::HashMap;

use mp_cmpsim::config::MachineConfig;
use mp_cmpsim::engine::{simulate_cycles, simulate_cycles_batch};
use mp_cmpsim::machine::Machine;
use mp_cmpsim::program::{PhaseOp, PhaseProgram, ReductionKind};
use mp_model::calibrate::CalibratedParams;
use mp_model::chip::{AsymmetricDesign, SymmetricDesign};
use mp_model::comm::{CommModel, CommSplit};
use mp_model::error::ModelError;
use mp_model::extended::ExtendedModel;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::prepared::PreparedModel;
use mp_par::ReductionStrategy;

use crate::scenario::{ChipSpec, Scenario, ScenarioSpace};
use crate::tables::SpaceTables;

/// Error produced by a backend evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// The underlying analytical model rejected the scenario.
    Model(ModelError),
    /// The design does not fit the scenario's budget.
    InvalidDesign {
        /// Swept area of the offending design.
        area: f64,
        /// Budget it failed to fit.
        budget: f64,
    },
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::Model(e) => write!(f, "model error: {e}"),
            DseError::InvalidDesign { area, budget } => {
                write!(f, "design of area {area} BCE does not fit a {budget}-BCE budget")
            }
        }
    }
}

impl std::error::Error for DseError {}

impl From<ModelError> for DseError {
    fn from(e: ModelError) -> Self {
        DseError::Model(e)
    }
}

/// A design-space evaluation backend.
pub trait EvalBackend: Sync {
    /// Stable name, used in reports.
    fn name(&self) -> &'static str;

    /// Salt mixed into every memoisation-cache key. Must change whenever the
    /// backend is configured to produce different numbers for the same
    /// scenario (machine config, operation budgets, split overrides, …), or
    /// a reconfigured backend would silently read another configuration's
    /// cached speedups. Defaults to the backend name for stateless backends.
    fn cache_salt(&self) -> String {
        self.name().to_string()
    }

    /// Predicted speedup of one scenario relative to a single 1-BCE core.
    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError>;

    /// Evaluate the contiguous index range `range` of `space` into `out`
    /// (which has `range.len()` slots). Invalid or erroring scenarios yield
    /// `f64::NAN`. Override to exploit the shared-axis structure of
    /// consecutive indices.
    fn evaluate_batch(
        &self,
        space: &ScenarioSpace,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        for (slot, index) in out.iter_mut().zip(range) {
            let scenario = space.scenario(index);
            *slot = if scenario.design.fits(scenario.budget) {
                self.evaluate(&scenario).unwrap_or(f64::NAN)
            } else {
                f64::NAN
            };
        }
    }

    /// Like [`EvalBackend::evaluate_batch`], with the sweep's columnar
    /// [`SpaceTables`] available. Backends that override this stream the
    /// per-design inner loop through the precomputed geometry / perf / growth
    /// columns with **zero heap allocation per scenario**; the default
    /// delegates to [`EvalBackend::evaluate_batch`]. Overrides must stay
    /// bit-identical to the per-scenario path.
    fn evaluate_batch_prepared(
        &self,
        space: &ScenarioSpace,
        tables: &SpaceTables,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        let _ = tables;
        self.evaluate_batch(space, range, out);
    }
}

/// Shared backends delegate: an `Arc<B>` (including `Arc<dyn EvalBackend>`)
/// is itself a backend, forwarding every method — including the batch
/// overrides — to its pointee, so wrappers like
/// `fault::FaultyBackend` can compose over the type-erased handles the
/// serve stack passes around without losing the inner backend's fast paths.
impl<B: EvalBackend + Send + ?Sized> EvalBackend for std::sync::Arc<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn cache_salt(&self) -> String {
        (**self).cache_salt()
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        (**self).evaluate(scenario)
    }

    fn evaluate_batch(
        &self,
        space: &ScenarioSpace,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        (**self).evaluate_batch(space, range, out);
    }

    fn evaluate_batch_prepared(
        &self,
        space: &ScenarioSpace,
        tables: &SpaceTables,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        (**self).evaluate_batch_prepared(space, tables, range, out);
    }
}

/// Walk `range` as maximal runs of consecutive designs sharing every other
/// axis (the decode order is design-innermost), calling
/// `f(first_index_of_run, offset_into_range, run_length)`.
pub(crate) fn for_each_design_run(
    space: &ScenarioSpace,
    range: std::ops::Range<usize>,
    mut f: impl FnMut(usize, usize, usize),
) {
    let designs = space.designs().len();
    let mut index = range.start;
    let mut offset = 0usize;
    while index < range.end {
        let design = index % designs;
        let run = (designs - design).min(range.end - index);
        f(index, offset, run);
        index += run;
        offset += run;
    }
}

/// The branch-light columnar inner loop: evaluate the designs
/// `[design_start, design_start + out.len())` of one shared-axis run through
/// a prepared model and the sweep's precomputed columns. `growth_at` supplies
/// the growth sample per design index (a table column for space-axis growth,
/// a direct evaluation for calibration-supplied growth). No heap allocation,
/// no `Result`s — invalid designs are `NaN`, bit-identical to the
/// per-scenario path.
#[allow(clippy::too_many_arguments)] // one column per argument, by design
fn eval_design_run(
    model: &PreparedModel<'_>,
    designs: &[ChipSpec],
    geometry: &[crate::tables::DesignGeometry],
    perf_small: &[f64],
    perf_large: &[f64],
    growth_at: impl Fn(usize) -> f64,
    total_bce: f64,
    design_start: usize,
    out: &mut [f64],
) {
    for (k, slot) in out.iter_mut().enumerate() {
        let di = design_start + k;
        let geo = geometry[di];
        *slot = if !geo.fits {
            f64::NAN
        } else {
            match designs[di] {
                ChipSpec::Symmetric { r } => {
                    model.speedup_symmetric_from_parts(total_bce, r, perf_small[di], growth_at(di))
                }
                ChipSpec::Asymmetric { .. } => model.speedup_asymmetric_from_parts(
                    geo.small_cores,
                    perf_small[di],
                    perf_large[di],
                    growth_at(di),
                ),
            }
        };
    }
}

/// Explicit-width (4×f64 AVX2) lane kernels for the prepared evaluation hot
/// path, dispatched at runtime by [`eval_design_run_dispatch`].
///
/// **Bit parity is the contract**: every lane performs exactly the operations
/// of the scalar reference ([`eval_design_run`] over
/// [`PreparedModel::speedup_symmetric_from_parts`] /
/// [`PreparedModel::speedup_asymmetric_from_parts`]) in the same association
/// order. IEEE add/sub/mul/div are correctly rounded, so identical operand
/// sequences produce identical bits; the `is_finite` collapse is an
/// `abs < ∞` compare (false for NaN) blended with a broadcast `f64::NAN`,
/// and unfit designs blend to `NaN` through the precomputed
/// [`SpaceTables::fits_bits`] masks — both reproducing the scalar path's
/// literal `f64::NAN`. No FMA: a fused multiply-add rounds once where the
/// scalar path rounds twice, which would break parity.
///
/// Symmetric and asymmetric designs use different formulas, so mixed design
/// lists are processed as homogeneous [`SpaceTables::segments`]; each
/// segment's sub-4-lane tail falls back to the scalar reference.
#[cfg(target_arch = "x86_64")]
mod lanes {
    use mp_model::prepared::{PreparedModel, SpeedupCoefficients};

    use super::eval_design_run;
    use crate::scenario::ChipSpec;
    use crate::tables::SpaceTables;

    /// Evaluate one shared-axis run with the AVX2 kernels. `growth_col` is
    /// the space-axis growth column when there is one; `None` means the
    /// growth samples were prefilled into `out` and are consumed in place.
    /// Caller guarantees AVX2 is available.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn eval_run(
        model: &PreparedModel<'_>,
        designs: &[ChipSpec],
        tables: &SpaceTables,
        budget_index: usize,
        perf_index: usize,
        growth_col: Option<&[f64]>,
        total_bce: f64,
        design_start: usize,
        out: &mut [f64],
    ) {
        let coeffs = model.coefficients();
        let geometry = tables.geometry(budget_index);
        let perf_small = tables.perf_small(perf_index);
        let perf_large = tables.perf_large(perf_index);
        let fits = tables.fits_bits(budget_index);
        let small_cores = tables.small_cores(budget_index);
        let design_r = tables.design_r();
        let end = design_start + out.len();
        let out_ptr = out.as_mut_ptr();
        for seg in tables.segments() {
            let a = seg.start.max(design_start);
            let b = (seg.start + seg.len).min(end);
            if a >= b {
                continue;
            }
            let ka = a - design_start;
            let len = b - a;
            let lanes_len = len & !3;
            // Both growth sources resolve to one pointer; the in-place source
            // aliases `out`, which is sound because each lane step loads its
            // growth quad before storing its result quad.
            let growth_ptr = match growth_col {
                Some(g) => g[a..].as_ptr(),
                None => out_ptr.wrapping_add(ka) as *const f64,
            };
            if lanes_len > 0 {
                // SAFETY: AVX2 availability is the caller's contract; all
                // pointers cover at least `lanes_len` elements of their
                // columns (each column holds one entry per design).
                unsafe {
                    if seg.asym {
                        asymmetric_lanes(
                            &coeffs,
                            lanes_len,
                            small_cores[a..].as_ptr(),
                            perf_small[a..].as_ptr(),
                            perf_large[a..].as_ptr(),
                            growth_ptr,
                            fits[a..].as_ptr(),
                            out_ptr.add(ka),
                        );
                    } else {
                        symmetric_lanes(
                            &coeffs,
                            total_bce,
                            lanes_len,
                            design_r[a..].as_ptr(),
                            perf_small[a..].as_ptr(),
                            growth_ptr,
                            fits[a..].as_ptr(),
                            out_ptr.add(ka),
                        );
                    }
                }
            }
            if lanes_len < len {
                let tail = &mut out[ka + lanes_len..ka + len];
                match growth_col {
                    Some(g) => eval_design_run(
                        model,
                        designs,
                        geometry,
                        perf_small,
                        perf_large,
                        |di| g[di],
                        total_bce,
                        a + lanes_len,
                        tail,
                    ),
                    None => eval_design_run(
                        model,
                        designs,
                        geometry,
                        perf_small,
                        perf_large,
                        |di| model.growth_sample(geometry[di].cores),
                        total_bce,
                        a + lanes_len,
                        tail,
                    ),
                }
            }
        }
    }

    /// `speedup_symmetric_from_parts` over four designs per step, operation
    /// for operation:
    /// `(perf_r·n) / (s·(fcon + fred·(1 + fored·g))·n + f·r)`,
    /// finite-or-NaN, then NaN where the design does not fit.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn symmetric_lanes(
        c: &SpeedupCoefficients,
        total_bce: f64,
        n: usize,
        r: *const f64,
        perf_r: *const f64,
        growth: *const f64,
        fits: *const u64,
        out: *mut f64,
    ) {
        use core::arch::x86_64::*;
        let fored_v = _mm256_set1_pd(c.fored);
        let fred_v = _mm256_set1_pd(c.fred);
        let fcon_v = _mm256_set1_pd(c.fcon);
        let s_v = _mm256_set1_pd(c.s);
        let f_v = _mm256_set1_pd(c.f);
        let n_v = _mm256_set1_pd(total_bce);
        let one = _mm256_set1_pd(1.0);
        let nan = _mm256_set1_pd(f64::NAN);
        let inf = _mm256_set1_pd(f64::INFINITY);
        let sign = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i < n {
            let g = _mm256_loadu_pd(growth.add(i));
            let pr = _mm256_loadu_pd(perf_r.add(i));
            let rv = _mm256_loadu_pd(r.add(i));
            let mult = _mm256_add_pd(
                fcon_v,
                _mm256_mul_pd(fred_v, _mm256_add_pd(one, _mm256_mul_pd(fored_v, g))),
            );
            let eff = _mm256_mul_pd(s_v, mult);
            // Single-divide Eq. 4, same order as the scalar reference:
            // `(perf_r·n) / (eff·n + f·r)`.
            let speedup = _mm256_div_pd(
                _mm256_mul_pd(pr, n_v),
                _mm256_add_pd(_mm256_mul_pd(eff, n_v), _mm256_mul_pd(f_v, rv)),
            );
            let finite = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, speedup), inf);
            let fit = _mm256_castsi256_pd(_mm256_loadu_si256(fits.add(i) as *const __m256i));
            let res = _mm256_blendv_pd(nan, _mm256_blendv_pd(nan, speedup, finite), fit);
            _mm256_storeu_pd(out.add(i), res);
            i += 4;
        }
    }

    /// `speedup_asymmetric_from_parts` over four designs per step, with
    /// `pt = perf_r·small + perf_l`:
    /// `(perf_l·pt) / (s·(fcon + fred·(1 + fored·g))·pt + f·perf_l)`,
    /// finite-or-NaN, then NaN where the design does not fit.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn asymmetric_lanes(
        c: &SpeedupCoefficients,
        n: usize,
        small_cores: *const f64,
        perf_r: *const f64,
        perf_l: *const f64,
        growth: *const f64,
        fits: *const u64,
        out: *mut f64,
    ) {
        use core::arch::x86_64::*;
        let fored_v = _mm256_set1_pd(c.fored);
        let fred_v = _mm256_set1_pd(c.fred);
        let fcon_v = _mm256_set1_pd(c.fcon);
        let s_v = _mm256_set1_pd(c.s);
        let f_v = _mm256_set1_pd(c.f);
        let one = _mm256_set1_pd(1.0);
        let nan = _mm256_set1_pd(f64::NAN);
        let inf = _mm256_set1_pd(f64::INFINITY);
        let sign = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i < n {
            let g = _mm256_loadu_pd(growth.add(i));
            let pr = _mm256_loadu_pd(perf_r.add(i));
            let pl = _mm256_loadu_pd(perf_l.add(i));
            let sc = _mm256_loadu_pd(small_cores.add(i));
            let mult = _mm256_add_pd(
                fcon_v,
                _mm256_mul_pd(fred_v, _mm256_add_pd(one, _mm256_mul_pd(fored_v, g))),
            );
            let eff = _mm256_mul_pd(s_v, mult);
            // Single-divide Eq. 5, same order as the scalar reference:
            // `(perf_l·pt) / (eff·pt + f·perf_l)`.
            let throughput = _mm256_add_pd(_mm256_mul_pd(pr, sc), pl);
            let speedup = _mm256_div_pd(
                _mm256_mul_pd(pl, throughput),
                _mm256_add_pd(_mm256_mul_pd(eff, throughput), _mm256_mul_pd(f_v, pl)),
            );
            let finite = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, speedup), inf);
            let fit = _mm256_castsi256_pd(_mm256_loadu_si256(fits.add(i) as *const __m256i));
            let res = _mm256_blendv_pd(nan, _mm256_blendv_pd(nan, speedup, finite), fit);
            _mm256_storeu_pd(out.add(i), res);
            i += 4;
        }
    }
}

/// Where a run's growth samples come from.
#[derive(Clone, Copy)]
enum GrowthSource<'a> {
    /// Precomputed space-axis column, indexed by design index.
    Column(&'a [f64]),
    /// Evaluated per design from the prepared model's growth function
    /// (calibration-supplied growth is not a space axis, so it has no column).
    Model,
}

/// Evaluate one shared-axis design run, dispatching between the scalar
/// reference ([`eval_design_run`]) and the AVX2 lane kernels. Both paths are
/// bit-identical (see [`lanes`]), so the choice is invisible in results.
#[allow(clippy::too_many_arguments)] // one column per argument, by design
fn eval_design_run_dispatch(
    model: &PreparedModel<'_>,
    space: &ScenarioSpace,
    tables: &SpaceTables,
    budget_index: usize,
    perf_index: usize,
    growth: GrowthSource<'_>,
    design_start: usize,
    out: &mut [f64],
) {
    let total_bce = space.budgets()[budget_index];
    let geometry = tables.geometry(budget_index);
    #[cfg(target_arch = "x86_64")]
    {
        if mp_model::simd::level() == mp_model::simd::SimdLevel::Avx2 {
            let growth_col = match growth {
                GrowthSource::Column(g) => Some(g),
                GrowthSource::Model => {
                    // Growth functions branch and interpolate, so sampling
                    // stays scalar; the samples land in `out` and the kernel
                    // consumes them in place (no scratch allocation).
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = model.growth_sample(geometry[design_start + k].cores);
                    }
                    None
                }
            };
            lanes::eval_run(
                model,
                space.designs(),
                tables,
                budget_index,
                perf_index,
                growth_col,
                total_bce,
                design_start,
                out,
            );
            return;
        }
    }
    match growth {
        GrowthSource::Column(g) => eval_design_run(
            model,
            space.designs(),
            geometry,
            tables.perf_small(perf_index),
            tables.perf_large(perf_index),
            |di| g[di],
            total_bce,
            design_start,
            out,
        ),
        GrowthSource::Model => eval_design_run(
            model,
            space.designs(),
            geometry,
            tables.perf_small(perf_index),
            tables.perf_large(perf_index),
            |di| model.growth_sample(geometry[di].cores),
            total_bce,
            design_start,
            out,
        ),
    }
}

fn speedup_extended(model: &ExtendedModel, scenario: &Scenario<'_>) -> Result<f64, DseError> {
    if !scenario.design.fits(scenario.budget) {
        return Err(DseError::InvalidDesign {
            area: scenario.design.area(),
            budget: scenario.budget.total_bce(),
        });
    }
    let speedup = match scenario.design {
        ChipSpec::Symmetric { r } => {
            model.speedup_symmetric(&SymmetricDesign::new(scenario.budget, r)?)?
        }
        ChipSpec::Asymmetric { r, rl } => {
            model.speedup_asymmetric(&AsymmetricDesign::new(scenario.budget, r, rl)?)?
        }
    };
    Ok(speedup)
}

/// The extended-model backend (paper Eq. 4/5).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticBackend;

impl EvalBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        let model =
            ExtendedModel::new(scenario.app.clone(), scenario.growth.clone(), scenario.perf);
        speedup_extended(&model, scenario)
    }

    fn evaluate_batch(
        &self,
        space: &ScenarioSpace,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        // Consecutive indices share all axes but the design, so one model
        // serves a whole run of designs; rebuild only when the shared axes
        // change (at most once per `designs.len()` scenarios).
        let mut current: Option<(usize, ExtendedModel)> = None;
        for (slot, index) in out.iter_mut().zip(range) {
            let shared = index / space.designs().len();
            let scenario = space.scenario(index);
            if !matches!(&current, Some((tag, _)) if *tag == shared) {
                current = Some((
                    shared,
                    ExtendedModel::new(
                        scenario.app.clone(),
                        scenario.growth.clone(),
                        scenario.perf,
                    ),
                ));
            }
            let model = &current.as_ref().expect("model built above").1;
            *slot = speedup_extended(model, &scenario).unwrap_or(f64::NAN);
        }
    }

    fn evaluate_batch_prepared(
        &self,
        space: &ScenarioSpace,
        tables: &SpaceTables,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        for_each_design_run(space, range, |index, offset, run| {
            let ix = space.decode(index);
            let model = PreparedModel::new(
                &space.apps()[ix.app],
                &space.growths()[ix.growth],
                space.perfs()[ix.perf],
            );
            let growth = tables.growth(ix.growth, ix.budget);
            eval_design_run_dispatch(
                &model,
                space,
                tables,
                ix.budget,
                ix.perf,
                GrowthSource::Column(growth),
                ix.design,
                &mut out[offset..offset + run],
            );
        });
    }
}

/// The communication-aware backend (paper Eq. 6–8).
///
/// The scenario's growth axis is used as the reduction-*computation* growth
/// (constant for a privatised parallel merge, linear for a serial one, …) and
/// the topology axis as the communication growth. The computation /
/// communication split defaults to the paper's ideal half/half split of the
/// application's reduction fraction; [`CommBackend::with_split`] overrides it.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommBackend {
    split: Option<CommSplit>,
}

impl CommBackend {
    /// Backend with the paper's ideal split.
    pub fn new() -> Self {
        CommBackend { split: None }
    }

    /// Use an explicit computation/communication split instead of the ideal
    /// one derived from each application's reduction fraction.
    pub fn with_split(mut self, split: CommSplit) -> Self {
        self.split = Some(split);
        self
    }

    fn model(&self, scenario: &Scenario<'_>) -> Result<CommModel, DseError> {
        let split = match self.split {
            Some(split) => split,
            None => CommSplit::ideal(scenario.app.split.fred)?,
        };
        Ok(CommModel::new(
            scenario.app.clone(),
            split,
            scenario.growth.clone(),
            scenario.topology,
            scenario.perf,
        ))
    }
}

fn speedup_comm(model: &CommModel, scenario: &Scenario<'_>) -> Result<f64, DseError> {
    if !scenario.design.fits(scenario.budget) {
        return Err(DseError::InvalidDesign {
            area: scenario.design.area(),
            budget: scenario.budget.total_bce(),
        });
    }
    let speedup = match scenario.design {
        ChipSpec::Symmetric { r } => {
            model.speedup_symmetric(&SymmetricDesign::new(scenario.budget, r)?)?
        }
        ChipSpec::Asymmetric { r, rl } => {
            model.speedup_asymmetric(&AsymmetricDesign::new(scenario.budget, r, rl)?)?
        }
    };
    Ok(speedup)
}

impl EvalBackend for CommBackend {
    fn name(&self) -> &'static str {
        "comm"
    }

    fn cache_salt(&self) -> String {
        match self.split {
            None => "comm".to_string(),
            Some(split) => {
                format!("comm:{:016x}:{:016x}", split.fcomp.to_bits(), split.fcomm.to_bits())
            }
        }
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        let model = self.model(scenario)?;
        speedup_comm(&model, scenario)
    }

    fn evaluate_batch(
        &self,
        space: &ScenarioSpace,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        let mut current: Option<(usize, CommModel)> = None;
        for (slot, index) in out.iter_mut().zip(range) {
            let shared = index / space.designs().len();
            let scenario = space.scenario(index);
            if !matches!(&current, Some((tag, _)) if *tag == shared) {
                match self.model(&scenario) {
                    Ok(model) => current = Some((shared, model)),
                    Err(_) => {
                        current = None;
                        *slot = f64::NAN;
                        continue;
                    }
                }
            }
            let model = &current.as_ref().expect("model built above").1;
            *slot = speedup_comm(model, &scenario).unwrap_or(f64::NAN);
        }
    }
}

/// The measured-calibration backend: the extended model parameterised by
/// workload calibrations instead of hand-entered constants.
///
/// Each scenario's application is matched **by name** against the backend's
/// calibration set; the calibration supplies both the application parameters
/// and the growth function, so the scenario's app values and growth axis are
/// not consulted (build the space's application axis from
/// [`MeasuredBackend::apps`] to keep reports consistent). The budget, design
/// and perf axes are honoured as usual.
///
/// With [`MeasuredBackend::with_exact_growth`] the fitted closed-form growth
/// is replaced by the empirical [`GrowthFunction::Measured`] curve
/// (reproduces the observed serial multipliers exactly at the measured
/// thread counts, linear extrapolation beyond).
///
/// [`GrowthFunction::Measured`]: mp_model::growth::GrowthFunction::Measured
pub struct MeasuredBackend {
    calibrations: Vec<CalibratedParams>,
    /// Exact-growth parameters, one per calibration, materialised once at
    /// construction so the batched hot path can borrow them instead of
    /// rebuilding an `AppParams` + measured curve per shared-axis run.
    exact: Vec<(AppParams, GrowthFunction)>,
    exact_growth: bool,
}

impl MeasuredBackend {
    /// A backend answering for the given calibrations (at least one).
    pub fn new(calibrations: Vec<CalibratedParams>) -> Self {
        assert!(!calibrations.is_empty(), "measured backend needs at least one calibration");
        let exact = calibrations.iter().map(|c| (c.exact_app_params(), c.exact_growth())).collect();
        MeasuredBackend { calibrations, exact, exact_growth: false }
    }

    /// Use the empirical measured-growth curves instead of the fitted closed
    /// forms.
    pub fn with_exact_growth(mut self) -> Self {
        self.exact_growth = true;
        self
    }

    /// The calibrations this backend answers for.
    pub fn calibrations(&self) -> &[CalibratedParams] {
        &self.calibrations
    }

    /// The calibrated application parameter sets, ready to become a
    /// [`ScenarioSpace`] application axis.
    pub fn apps(&self) -> Vec<AppParams> {
        self.calibrations.iter().map(|c| c.app_params().clone()).collect()
    }

    fn find(&self, name: &str) -> Option<usize> {
        self.calibrations.iter().position(|c| c.app_params().name == name)
    }

    /// The (parameters, growth) pair a scenario application resolves to,
    /// borrowed — the fitted calibration or its precomputed exact-growth
    /// counterpart.
    fn resolve(&self, name: &str) -> Option<(&AppParams, &GrowthFunction)> {
        let at = self.find(name)?;
        Some(if self.exact_growth {
            let (app, growth) = &self.exact[at];
            (app, growth)
        } else {
            let calibration = &self.calibrations[at];
            (calibration.app_params(), calibration.growth())
        })
    }

    fn model(&self, scenario: &Scenario<'_>) -> Result<ExtendedModel, DseError> {
        let (app, growth) =
            self.resolve(&scenario.app.name).ok_or(DseError::Model(ModelError::Calibration {
                what: "scenario application has no calibration",
            }))?;
        Ok(ExtendedModel::new(app.clone(), growth.clone(), scenario.perf))
    }
}

impl EvalBackend for MeasuredBackend {
    fn name(&self) -> &'static str {
        "measured"
    }

    fn cache_salt(&self) -> String {
        let mut salt =
            String::from(if self.exact_growth { "measured:exact" } else { "measured:fit" });
        for calibration in &self.calibrations {
            salt.push_str(&format!(":{:016x}", calibration.fingerprint()));
        }
        salt
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        let model = self.model(scenario)?;
        speedup_extended(&model, scenario)
    }

    fn evaluate_batch(
        &self,
        space: &ScenarioSpace,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        // Consecutive indices share the application, so one calibrated model
        // serves a whole run of designs.
        let mut current: Option<(usize, ExtendedModel)> = None;
        for (slot, index) in out.iter_mut().zip(range) {
            let shared = index / space.designs().len();
            let scenario = space.scenario(index);
            if !matches!(&current, Some((tag, _)) if *tag == shared) {
                match self.model(&scenario) {
                    Ok(model) => current = Some((shared, model)),
                    Err(_) => {
                        current = None;
                        *slot = f64::NAN;
                        continue;
                    }
                }
            }
            let model = &current.as_ref().expect("model built above").1;
            *slot = speedup_extended(model, &scenario).unwrap_or(f64::NAN);
        }
    }

    fn evaluate_batch_prepared(
        &self,
        space: &ScenarioSpace,
        tables: &SpaceTables,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        for_each_design_run(space, range, |index, offset, run| {
            let ix = space.decode(index);
            let out = &mut out[offset..offset + run];
            let Some((app, growth)) = self.resolve(&space.apps()[ix.app].name) else {
                out.fill(f64::NAN);
                return;
            };
            // The calibration supplies the growth function, so its samples
            // are evaluated at the designs' thread counts directly instead of
            // read from the space-axis growth column.
            let model = PreparedModel::new(app, growth, space.perfs()[ix.perf]);
            eval_design_run_dispatch(
                &model,
                space,
                tables,
                ix.budget,
                ix.perf,
                GrowthSource::Model,
                ix.design,
                out,
            );
        });
    }
}

/// The trace-driven simulation backend.
///
/// Synthesises a phase program whose single-core section times reproduce the
/// application's `f` / `fcon` / `fred` split over a budget of
/// [`SimBackend::with_total_ops`] operations, then times it with the
/// `mp-cmpsim` engine on the scenario's machine. The merge implementation
/// comes from the scenario's reduction-strategy axis; the reduction-overhead
/// *growth* is whatever the simulator's core, cache and NoC models produce
/// (linear from a serial merge while the partials stay cache-resident,
/// super-linear once they spill — the hop effect). Speedups are normalised to
/// a simulated single 1-BCE core, like the paper's Figure 2 runs.
///
/// The core performance model is the simulator's own (Pollack); the
/// scenario's perf and growth axes are ignored.
///
/// Machines are discrete: the simulated core count is `floor(budget / r)`
/// (the analytic models allow fractional counts, and `EvalRecord::cores`
/// always reports the design's analytic value). Prefer core sizes that
/// divide the budget — e.g. integer or power-of-two grids — when sweeping
/// this backend, so neighbouring grid points do not silently simulate the
/// same machine under different labels.
pub struct SimBackend {
    config: MachineConfig,
    total_ops: f64,
    baselines: Mutex<HashMap<(u64, u64, u64, u8), f64>>,
}

impl Default for SimBackend {
    fn default() -> Self {
        SimBackend::new()
    }
}

impl SimBackend {
    /// Backend with the paper's Table I machine configuration and a 10⁷-op
    /// synthetic program.
    pub fn new() -> Self {
        SimBackend {
            config: MachineConfig::table1_baseline(),
            total_ops: 1e7,
            baselines: Mutex::new(HashMap::new()),
        }
    }

    /// Override the machine configuration.
    pub fn with_config(mut self, config: MachineConfig) -> Self {
        self.config = config;
        // Baseline cycles were simulated under the previous configuration;
        // keeping them would mix two machines in one speedup ratio.
        self.baselines.lock().clear();
        self
    }

    /// Override the synthetic single-core operation budget. Smaller budgets
    /// shrink the merge working set (keeping it cache-resident — closer to
    /// the analytic model); larger budgets surface cache-spill effects.
    pub fn with_total_ops(mut self, total_ops: f64) -> Self {
        assert!(total_ops.is_finite() && total_ops >= 1e3, "total_ops must be at least 1e3");
        self.total_ops = total_ops;
        self
    }

    fn reduction_kind(strategy: ReductionStrategy) -> ReductionKind {
        match strategy {
            ReductionStrategy::SerialLinear => ReductionKind::SerialLinear,
            ReductionStrategy::TreeLog => ReductionKind::TreeLog,
            ReductionStrategy::ParallelPrivatized => ReductionKind::ParallelPrivatized,
        }
    }

    fn program(&self, scenario: &Scenario<'_>) -> PhaseProgram {
        let app = scenario.app;
        let parallel_ops = app.f * self.total_ops;
        let serial_ops = app.fcon_abs() * self.total_ops;
        // One element-merge costs ~3 cycles while the partial tables stay
        // L1-resident (1 compute + 2 cycles L1 latency), so dividing by three
        // makes the single-core reduction *cycle* fraction equal the
        // application's `fred`: the simulated and analytic models then start
        // from the same serial split, and deviations beyond that are real
        // microarchitectural effects (cache spills, coherence, NoC).
        let elements = (app.fred_abs() * self.total_ops / 3.0).round().max(1.0) as usize;
        PhaseProgram::new(app.name.clone())
            .with_body(PhaseOp::ParallelWork {
                label: "parallel".into(),
                ops: parallel_ops,
                memory_refs: 0.0,
                working_set_bytes: 64,
                max_parallelism: None,
            })
            .with_body(PhaseOp::Reduction {
                label: "merge".into(),
                elements,
                ops_per_element: 1.0,
                bytes_per_element: 8,
                kind: Self::reduction_kind(scenario.reduction),
            })
            .with_body(PhaseOp::SerialWork {
                label: "serial-constant".into(),
                ops: serial_ops,
                memory_refs: 0.0,
                working_set_bytes: 64,
            })
    }

    fn machine(&self, scenario: &Scenario<'_>) -> Option<Machine> {
        scenario
            .design
            .fits(scenario.budget)
            .then(|| self.machine_for(scenario.design, scenario.budget.total_bce()))
    }

    fn baseline_cycles(&self, scenario: &Scenario<'_>, program: &PhaseProgram) -> f64 {
        let app = scenario.app;
        let key = (
            app.f.to_bits(),
            app.split.fcon.to_bits(),
            self.total_ops.to_bits(),
            match scenario.reduction {
                ReductionStrategy::SerialLinear => 0u8,
                ReductionStrategy::TreeLog => 1,
                ReductionStrategy::ParallelPrivatized => 2,
            },
        );
        if let Some(&cycles) = self.baselines.lock().get(&key) {
            return cycles;
        }
        let cycles = simulate_cycles(program, &Machine::symmetric(1, 1.0, self.config));
        self.baselines.lock().insert(key, cycles);
        cycles
    }

    /// The simulated machine of one design under `total_bce`, assuming the
    /// design already passed its fit check. Same discretisation as
    /// [`SimBackend::machine`].
    fn machine_for(&self, design: ChipSpec, total_bce: f64) -> Machine {
        match design {
            ChipSpec::Symmetric { r } => {
                let cores = (total_bce / r).floor().max(1.0) as usize;
                Machine::symmetric(cores, r, self.config)
            }
            ChipSpec::Asymmetric { r, rl } => {
                let small = ((total_bce - rl) / r).floor().max(0.0) as usize;
                Machine::asymmetric(small, r, rl, self.config)
            }
        }
    }
}

impl EvalBackend for SimBackend {
    fn name(&self) -> &'static str {
        "cmpsim"
    }

    fn cache_salt(&self) -> String {
        // The machine configuration and operation budget change every result;
        // Debug formatting of the config is deterministic and covers all of
        // its fields.
        format!("cmpsim:{:016x}:{:?}", self.total_ops.to_bits(), self.config)
    }

    fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
        let machine = self.machine(scenario).ok_or(DseError::InvalidDesign {
            area: scenario.design.area(),
            budget: scenario.budget.total_bce(),
        })?;
        let program = self.program(scenario);
        let baseline = self.baseline_cycles(scenario, &program);
        let cycles = simulate_cycles(&program, &machine);
        Ok(baseline / cycles)
    }

    fn evaluate_batch_prepared(
        &self,
        space: &ScenarioSpace,
        tables: &SpaceTables,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), range.len());
        for_each_design_run(space, range, |index, offset, run| {
            // The program and its single-core baseline depend only on the
            // shared axes (application, reduction strategy), so both are
            // resolved once per run; the per-design loop is machine assembly
            // plus the allocation-free cycle kernel.
            let scenario = space.scenario(index);
            let program = self.program(&scenario);
            let baseline = self.baseline_cycles(&scenario, &program);
            let ix = space.decode(index);
            let geometry = tables.geometry(ix.budget);
            let total_bce = space.budgets()[ix.budget];
            let designs = space.designs();
            let out_run = &mut out[offset..offset + run];
            if mp_model::simd::level() == mp_model::simd::SimdLevel::Avx2 {
                // Gather fit designs into machine quads for the 4-wide cycle
                // kernel; unfit designs poison their slot immediately and
                // sub-quad leftovers finish on the scalar kernel (bit-equal
                // by contract, so the mix is invisible).
                let mut slots = [0usize; 4];
                let mut machines = [Machine::symmetric(1, 1.0, self.config); 4];
                let mut cycles = [0.0f64; 4];
                let mut filled = 0;
                for k in 0..run {
                    let di = ix.design + k;
                    if !geometry[di].fits {
                        out_run[k] = f64::NAN;
                        continue;
                    }
                    slots[filled] = k;
                    machines[filled] = self.machine_for(designs[di], total_bce);
                    filled += 1;
                    if filled == 4 {
                        simulate_cycles_batch(&program, &machines, &mut cycles);
                        for j in 0..4 {
                            out_run[slots[j]] = baseline / cycles[j];
                        }
                        filled = 0;
                    }
                }
                for j in 0..filled {
                    out_run[slots[j]] = baseline / simulate_cycles(&program, &machines[j]);
                }
            } else {
                for (k, slot) in out_run.iter_mut().enumerate() {
                    let di = ix.design + k;
                    *slot = if !geometry[di].fits {
                        f64::NAN
                    } else {
                        let machine = self.machine_for(designs[di], total_bce);
                        baseline / simulate_cycles(&program, &machine)
                    };
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::growth::GrowthFunction;
    use mp_model::params::AppParams;
    use mp_model::perf::PerfModel;
    use mp_model::topology::Topology;

    fn scenario(design: ChipSpec) -> Scenario<'static> {
        use std::sync::OnceLock;
        static APP: OnceLock<AppParams> = OnceLock::new();
        static GROWTH: OnceLock<GrowthFunction> = OnceLock::new();
        Scenario {
            app: APP.get_or_init(AppParams::table2_kmeans),
            budget: mp_model::chip::ChipBudget::paper_default(),
            design,
            growth: GROWTH.get_or_init(|| GrowthFunction::Linear),
            perf: PerfModel::Pollack,
            reduction: ReductionStrategy::SerialLinear,
            topology: Topology::Mesh2D,
        }
    }

    #[test]
    fn analytic_matches_direct_model_evaluation() {
        let s = scenario(ChipSpec::Symmetric { r: 4.0 });
        let got = AnalyticBackend.evaluate(&s).unwrap();
        let model = ExtendedModel::new(s.app.clone(), GrowthFunction::Linear, PerfModel::Pollack);
        let expect =
            model.speedup_symmetric(&SymmetricDesign::new(s.budget, 4.0).unwrap()).unwrap();
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn analytic_rejects_unfit_designs() {
        let s = scenario(ChipSpec::Symmetric { r: 512.0 });
        assert!(matches!(AnalyticBackend.evaluate(&s), Err(DseError::InvalidDesign { .. })));
    }

    #[test]
    fn comm_is_more_pessimistic_than_analytic_on_mesh() {
        // Communication overhead only removes speedup relative to the same
        // model with constant (free) communication growth.
        let s = Scenario {
            growth: &GrowthFunction::Constant,
            ..scenario(ChipSpec::Symmetric { r: 4.0 })
        };
        let mesh = CommBackend::new().evaluate(&s).unwrap();
        let ideal = CommBackend::new()
            .evaluate(&Scenario { topology: Topology::Ideal, ..s.clone() })
            .unwrap();
        assert!(mesh < ideal);
    }

    #[test]
    fn sim_speedup_is_one_on_the_baseline_machine() {
        let s = Scenario {
            budget: mp_model::chip::ChipBudget::new(1.0),
            ..scenario(ChipSpec::Symmetric { r: 1.0 })
        };
        let backend = SimBackend::new();
        let speedup = backend.evaluate(&s).unwrap();
        assert!((speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sim_acmp_beats_cmp_on_serial_heavy_app() {
        let app = AppParams::new("serial-heavy", 0.9, 0.9, 0.1, 0.0).unwrap();
        let growth = GrowthFunction::Linear;
        let base = scenario(ChipSpec::Symmetric { r: 1.0 });
        let sym = Scenario { app: &app, growth: &growth, ..base.clone() };
        let asym = Scenario {
            app: &app,
            growth: &growth,
            design: ChipSpec::Asymmetric { r: 1.0, rl: 64.0 },
            ..base
        };
        let backend = SimBackend::new();
        assert!(backend.evaluate(&asym).unwrap() > backend.evaluate(&sym).unwrap());
    }

    fn synthetic_calibration(name: &str, f: f64, fcon: f64, fored: f64) -> CalibratedParams {
        use mp_model::calibrate::MeasuredRun;
        let s = 1.0 - f;
        let runs: Vec<MeasuredRun> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| {
                MeasuredRun::new(
                    p,
                    f / p as f64,
                    s * fcon,
                    s * (1.0 - fcon) * (1.0 + fored * (p as f64 - 1.0)),
                )
            })
            .collect();
        CalibratedParams::fit(name, &runs).unwrap()
    }

    #[test]
    fn measured_backend_tracks_the_analytic_model_it_fitted() {
        let calibration = synthetic_calibration("cal-app", 0.99, 0.6, 0.8);
        let backend = MeasuredBackend::new(vec![calibration.clone()]);
        let space = ScenarioSpace::new()
            .with_apps(backend.apps())
            .clear_designs()
            .add_symmetric_grid([1.0, 2.0, 4.0, 16.0, 64.0]);
        for index in 0..space.len() {
            let scenario = space.scenario(index);
            let measured = backend.evaluate(&scenario).unwrap();
            // The calibration recovered a linear growth with the seeded fored,
            // so the analytic model on the same axes must agree closely.
            let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
            assert!(
                (measured - analytic).abs() / analytic < 1e-6,
                "index {index}: {measured} vs {analytic}"
            );
        }
    }

    #[test]
    fn measured_backend_rejects_uncalibrated_applications() {
        let backend = MeasuredBackend::new(vec![synthetic_calibration("known", 0.99, 0.5, 0.5)]);
        let s = scenario(ChipSpec::Symmetric { r: 4.0 }); // app name "kmeans"
        assert!(matches!(backend.evaluate(&s), Err(DseError::Model(_))));
        // And in batch mode the slot becomes NaN rather than poisoning the
        // sweep.
        let space = ScenarioSpace::new();
        let mut out = vec![0.0; space.len()];
        backend.evaluate_batch(&space, 0..space.len(), &mut out);
        assert!(out.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn measured_batch_and_single_agree_bitwise() {
        let backend = MeasuredBackend::new(vec![
            synthetic_calibration("a", 0.999, 0.9, 0.1),
            synthetic_calibration("b", 0.99, 0.6, 0.8),
        ]);
        let space = ScenarioSpace::new()
            .with_apps(backend.apps())
            .clear_designs()
            .add_symmetric_grid([1.0, 2.0, 8.0, 300.0]);
        let mut batch = vec![0.0; space.len()];
        backend.evaluate_batch(&space, 0..space.len(), &mut batch);
        for (i, &got) in batch.iter().enumerate() {
            let s = space.scenario(i);
            let expect = if s.design.fits(s.budget) {
                backend.evaluate(&s).unwrap_or(f64::NAN)
            } else {
                f64::NAN
            };
            assert_eq!(got.to_bits(), expect.to_bits(), "index {i}");
        }
    }

    #[test]
    fn exact_growth_mode_changes_the_salt_and_the_numbers() {
        // A hop-like super-linear calibration where the closed-form fit and
        // the empirical curve genuinely differ between measured points.
        use mp_model::calibrate::MeasuredRun;
        let f = 0.999;
        let s = 1.0 - f;
        let runs: Vec<MeasuredRun> = [1usize, 2, 3, 4, 8, 16]
            .iter()
            .map(|&p| {
                let wobble = if p == 3 { 1.5 } else { 1.0 };
                MeasuredRun::new(
                    p,
                    f / p as f64,
                    s * 0.5,
                    s * 0.5 * (1.0 + 0.9 * wobble * (p as f64 - 1.0)),
                )
            })
            .collect();
        let calibration = CalibratedParams::fit("wobbly", &runs).unwrap();
        let fit = MeasuredBackend::new(vec![calibration.clone()]);
        let exact = MeasuredBackend::new(vec![calibration]).with_exact_growth();
        assert_ne!(fit.cache_salt(), exact.cache_salt());
        let space =
            ScenarioSpace::new().with_apps(fit.apps()).clear_designs().add_symmetric_grid([85.0]); // ~3 cores: the wobbled point
        let a = fit.evaluate(&space.scenario(0)).unwrap();
        let b = exact.evaluate(&space.scenario(0)).unwrap();
        assert!((a - b).abs() > 1e-9, "fit {a} vs exact {b} should differ");
    }

    #[test]
    fn batch_and_single_evaluation_agree_bitwise() {
        let space = ScenarioSpace::new()
            .with_apps(AppParams::table2_all())
            .clear_designs()
            .add_symmetric_grid([1.0, 2.0, 4.0, 8.0, 300.0])
            .with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic]);
        for backend in [&AnalyticBackend as &dyn EvalBackend, &CommBackend::new()] {
            let mut batch = vec![0.0; space.len()];
            backend.evaluate_batch(&space, 0..space.len(), &mut batch);
            for (i, &got) in batch.iter().enumerate() {
                let scenario = space.scenario(i);
                let expect = if scenario.design.fits(scenario.budget) {
                    backend.evaluate(&scenario).unwrap_or(f64::NAN)
                } else {
                    f64::NAN
                };
                assert_eq!(got.to_bits(), expect.to_bits(), "index {i}");
            }
        }
    }
}
