//! Result analysis: top-k designs, per-axis optima and Pareto frontiers.

use serde::{Deserialize, Serialize};

use crate::engine::EvalRecord;
use crate::scenario::ScenarioSpace;

/// The cost axis of a 2-D Pareto study (speedup is always the benefit axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostAxis {
    /// Minimise the number of cores (design complexity / power proxy).
    Cores,
    /// Minimise the swept core area (`r` / `rl`).
    Area,
}

impl CostAxis {
    /// The cost of one record on this axis.
    pub fn cost(&self, record: &EvalRecord) -> f64 {
        match self {
            CostAxis::Cores => record.cores,
            CostAxis::Area => record.area,
        }
    }

    /// Axis name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CostAxis::Cores => "cores",
            CostAxis::Area => "area",
        }
    }
}

/// The `k` highest-speedup records, best first (invalid records ignored;
/// ties broken toward fewer cores, then lower scenario index for
/// determinism).
pub fn top_k(records: &[EvalRecord], k: usize) -> Vec<EvalRecord> {
    let mut valid: Vec<EvalRecord> = records.iter().filter(|r| r.is_valid()).copied().collect();
    valid.sort_by(|a, b| {
        b.speedup
            .partial_cmp(&a.speedup)
            .expect("valid records are finite")
            .then(a.cores.partial_cmp(&b.cores).expect("cores are finite"))
            .then(a.index.cmp(&b.index))
    });
    valid.truncate(k);
    valid
}

/// Whether record `a` Pareto-dominates record `b` on `(cost, speedup)`:
/// no worse on both axes and strictly better on at least one.
pub fn dominates(a: &EvalRecord, b: &EvalRecord, cost: CostAxis) -> bool {
    let (ca, cb) = (cost.cost(a), cost.cost(b));
    ca <= cb && a.speedup >= b.speedup && (ca < cb || a.speedup > b.speedup)
}

/// The Pareto frontier of the valid records on `(cost, speedup)`: the minimal
/// set that dominates-or-equals every evaluated point, ordered by increasing
/// cost (and therefore strictly increasing speedup).
pub fn pareto_frontier(records: &[EvalRecord], cost: CostAxis) -> Vec<EvalRecord> {
    let mut valid: Vec<EvalRecord> = records.iter().filter(|r| r.is_valid()).copied().collect();
    // Cheapest first; among equal costs the fastest first, then by index so
    // duplicate (cost, speedup) pairs resolve deterministically.
    valid.sort_by(|a, b| {
        cost.cost(a)
            .partial_cmp(&cost.cost(b))
            .expect("costs are finite")
            .then(b.speedup.partial_cmp(&a.speedup).expect("valid records are finite"))
            .then(a.index.cmp(&b.index))
    });
    let mut frontier: Vec<EvalRecord> = Vec::new();
    for record in valid {
        match frontier.last() {
            Some(last) if record.speedup <= last.speedup => {}
            _ => frontier.push(record),
        }
    }
    frontier
}

/// The best record for every value of the six strategy axes of `space`
/// (application, budget, growth, perf, reduction, topology): one entry per
/// (axis name, axis value label). Lets a report answer "best design per
/// application", "best per growth function", … in one pass. The design axis
/// is deliberately not enumerated — it is usually a fine grid of hundreds of
/// points, and "the best record per design" is the sweep itself; use
/// [`top_k`] or [`pareto_frontier`] to rank designs.
pub fn per_axis_optima(space: &ScenarioSpace, records: &[EvalRecord]) -> Vec<AxisOptimum> {
    #[derive(Clone)]
    struct Slot {
        axis: &'static str,
        label: String,
        best: Option<EvalRecord>,
    }

    let mut slots: Vec<Slot> = Vec::new();
    let mut offsets = [0usize; 6];
    offsets[0] = 0;
    for (i, app) in space.apps().iter().enumerate() {
        debug_assert_eq!(slots.len(), offsets[0] + i);
        slots.push(Slot { axis: "app", label: app.name.clone(), best: None });
    }
    offsets[1] = slots.len();
    for budget in space.budgets() {
        slots.push(Slot { axis: "budget", label: format!("{budget}"), best: None });
    }
    offsets[2] = slots.len();
    for growth in space.growths() {
        slots.push(Slot { axis: "growth", label: growth.label(), best: None });
    }
    offsets[3] = slots.len();
    for perf in space.perfs() {
        slots.push(Slot { axis: "perf", label: perf.label(), best: None });
    }
    offsets[4] = slots.len();
    for reduction in space.reductions() {
        slots.push(Slot { axis: "reduction", label: reduction.name().to_string(), best: None });
    }
    offsets[5] = slots.len();
    for topology in space.topologies() {
        slots.push(Slot { axis: "topology", label: format!("{topology:?}"), best: None });
    }

    for record in records.iter().filter(|r| r.is_valid()) {
        let ix = space.decode(record.index);
        for slot_index in [
            offsets[0] + ix.app,
            offsets[1] + ix.budget,
            offsets[2] + ix.growth,
            offsets[3] + ix.perf,
            offsets[4] + ix.reduction,
            offsets[5] + ix.topology,
        ] {
            let best = &mut slots[slot_index].best;
            let better = match best {
                None => true,
                Some(current) => record.speedup > current.speedup,
            };
            if better {
                *best = Some(*record);
            }
        }
    }

    slots
        .into_iter()
        .filter_map(|slot| {
            slot.best.map(|record| AxisOptimum {
                axis: slot.axis.to_string(),
                value: slot.label,
                record,
            })
        })
        .collect()
}

/// The best record found for one value of one axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisOptimum {
    /// Axis name (`"app"`, `"budget"`, `"growth"`, `"perf"`, `"reduction"`,
    /// `"topology"`).
    pub axis: String,
    /// The axis value's label.
    pub value: String,
    /// The best record for that value.
    pub record: EvalRecord,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, speedup: f64, cores: f64, area: f64) -> EvalRecord {
        EvalRecord { index, speedup, cores, area }
    }

    #[test]
    fn top_k_orders_and_filters() {
        let records = vec![
            record(0, 5.0, 64.0, 4.0),
            record(1, f64::NAN, 1.0, 256.0),
            record(2, 9.0, 32.0, 8.0),
            record(3, 7.0, 16.0, 16.0),
        ];
        let top = top_k(&records, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].index, 2);
        assert_eq!(top[1].index, 3);
    }

    #[test]
    fn top_k_breaks_speedup_ties_toward_fewer_cores() {
        let records = vec![record(0, 5.0, 64.0, 4.0), record(1, 5.0, 16.0, 16.0)];
        let top = top_k(&records, 1);
        assert_eq!(top[0].index, 1);
    }

    #[test]
    fn frontier_is_minimal_and_dominating() {
        let records = vec![
            record(0, 1.0, 1.0, 256.0),
            record(1, 4.0, 4.0, 64.0),
            record(2, 3.0, 4.0, 64.0), // dominated by 1 (same cores, slower)
            record(3, 6.0, 64.0, 4.0),
            record(4, 6.0, 256.0, 1.0), // dominated by 3 (same speedup, more cores)
            record(5, f64::NAN, 8.0, 32.0),
        ];
        let frontier = pareto_frontier(&records, CostAxis::Cores);
        let indices: Vec<usize> = frontier.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1, 3]);
        // Minimal: no frontier point dominates another.
        for a in &frontier {
            for b in &frontier {
                if a.index != b.index {
                    assert!(!dominates(a, b, CostAxis::Cores));
                }
            }
        }
        // Complete: every valid point is dominated-or-equal by some frontier point.
        for r in records.iter().filter(|r| r.is_valid()) {
            assert!(frontier.iter().any(|f| dominates(f, r, CostAxis::Cores)
                || (f.cores == r.cores && f.speedup == r.speedup)));
        }
    }

    #[test]
    fn frontier_cost_axis_changes_the_result() {
        let records = vec![record(0, 5.0, 64.0, 4.0), record(1, 4.0, 16.0, 16.0)];
        // On cores, both survive (cheaper-but-slower point is non-dominated).
        assert_eq!(pareto_frontier(&records, CostAxis::Cores).len(), 2);
        // On area, the r = 4 design is both cheaper and faster.
        assert_eq!(pareto_frontier(&records, CostAxis::Area).len(), 1);
    }
}
