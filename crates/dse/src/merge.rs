//! Merge Path: even-partition parallel merging of index-sorted record runs.
//!
//! Per-shard band sweeps return their records as independent runs, each
//! sorted by flat scenario index; recombining them into one index-ordered
//! answer was previously a sequential concatenate-in-band-order pass. This
//! module implements the **Merge Path** scheme ("Merge Path — A Visually
//! Intuitive Approach to Parallel Merging", Green, McColl & Bader): the
//! merged output is cut into `parts` equal-length segments, and for each
//! segment boundary a binary search finds the unique per-run split offsets
//! such that every run contributes exactly its in-order share. Segments are
//! then merged independently — in parallel when the input is large enough —
//! and their concatenation is, by construction, exactly the sequence a
//! stable sequential k-way merge would produce.
//!
//! **Stability / determinism.** Runs may share key values (the service's
//! band runs never do — bands are disjoint index ranges — but
//! [`Engine::sweep_ranges`](crate::engine::Engine::sweep_ranges) accepts
//! arbitrary disjoint ranges and the partitioner is general). Ties are
//! broken by run order: among equal keys, every element of an earlier run
//! precedes every element of a later run, matching the stable sequential
//! merge bit for bit. The partition search enforces this by splitting on a
//! key *value*: all elements with a smaller key land left of the boundary,
//! and the boundary's remainder within the equal-key group is distributed
//! to runs in order.

use crate::engine::EvalRecord;

/// Outputs below this many records are merged on the calling thread — the
/// per-segment thread spawn would cost more than it saves.
const PARALLEL_THRESHOLD: usize = 1 << 15;

/// The merge key of a record: its flat scenario index.
#[inline]
fn key(record: &EvalRecord) -> usize {
    record.index
}

/// Number of elements of `run` with key `< v` (runs are index-sorted, so
/// this is a binary search).
#[inline]
fn count_less(run: &[EvalRecord], v: usize) -> usize {
    run.partition_point(|r| key(r) < v)
}

/// Number of elements of `run` with key `<= v`.
#[inline]
fn count_less_eq(run: &[EvalRecord], v: usize) -> usize {
    run.partition_point(|r| key(r) <= v)
}

/// The Merge-Path partition point for output position `d` (the `d`-th
/// cross-diagonal): per-run offsets `off` with `sum(off) == d` such that
/// the first `off[i]` elements of run `i` are exactly run `i`'s
/// contribution to the first `d` merged records of a stable k-way merge.
///
/// Runs must each be sorted ascending by record index. `d` must be at most
/// the total length. Equal keys across runs split stably: the boundary
/// takes whole earlier-run groups before any element of a later run.
pub fn partition(runs: &[&[EvalRecord]], d: usize) -> Vec<usize> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(d <= total, "partition point {d} exceeds the {total}-record merge");
    if d == 0 {
        return vec![0; runs.len()];
    }
    if d == total {
        return runs.iter().map(|r| r.len()).collect();
    }
    // Binary search on the key *value*: the smallest key `v` such that at
    // least `d` records have key <= v. All records with key < v are left of
    // the boundary; the remainder of the d-prefix is filled from the
    // equal-key (== v) groups in run order, which is what makes the cut
    // agree with a stable sequential merge.
    let mut lo = 0usize; // smallest candidate key
    let mut hi = runs.iter().filter_map(|r| r.last()).map(key).max().unwrap_or(0);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let le: usize = runs.iter().map(|r| count_less_eq(r, mid)).sum();
        if le >= d {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let v = lo;
    let mut offsets: Vec<usize> = runs.iter().map(|r| count_less(r, v)).collect();
    let less: usize = offsets.iter().sum();
    let mut remainder = d - less;
    for (offset, run) in offsets.iter_mut().zip(runs) {
        let equal = count_less_eq(run, v) - *offset;
        let take = equal.min(remainder);
        *offset += take;
        remainder -= take;
    }
    debug_assert_eq!(remainder, 0, "equal-key groups must cover the boundary remainder");
    offsets
}

/// Stable sequential k-way merge by record index — the reference the
/// partitioned merge must reproduce bit for bit (and the segment kernel the
/// parallel path runs per partition).
pub fn sequential_merge(runs: &[&[EvalRecord]]) -> Vec<EvalRecord> {
    let total = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    merge_into(runs, &mut out);
    out
}

/// The linear k-way merge kernel: append the stable merge of `runs` to
/// `out`. Run count is the shard count (single digits), so a linear
/// min-scan per output record beats a heap.
fn merge_into(runs: &[&[EvalRecord]], out: &mut Vec<EvalRecord>) {
    let mut cursors = vec![0usize; runs.len()];
    let total: usize = runs.iter().map(|r| r.len()).sum();
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            if cursors[i] < run.len() {
                let k = key(&run[cursors[i]]);
                // Strict `<` keeps ties on the earliest run: stability.
                if best.map_or(true, |b| k < key(&runs[b][cursors[b]])) {
                    best = Some(i);
                }
            }
        }
        let i = best.expect("total counts exactly the remaining records");
        out.push(runs[i][cursors[i]]);
        cursors[i] += 1;
    }
}

/// Merge `runs` (each sorted ascending by record index) into one
/// index-ordered vector via Merge-Path even partitioning: the output is cut
/// into at most `parts` equal segments whose boundaries are found with
/// [`partition`], and the segments are merged independently — on scoped
/// threads when the output is at least `PARALLEL_THRESHOLD` records,
/// inline otherwise. Bit-identical to [`sequential_merge`] in every case.
pub fn merge_runs(runs: &[&[EvalRecord]], parts: usize) -> Vec<EvalRecord> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    if total == 0 {
        return Vec::new();
    }
    // Single-run merges (one participating shard) are a straight copy.
    if runs.len() == 1 {
        return runs[0].to_vec();
    }
    let parts = parts.max(1).min(total);
    if parts == 1 || total < PARALLEL_THRESHOLD {
        return sequential_merge(runs);
    }
    // Even cross-diagonals: segment p covers output [total*p/parts,
    // total*(p+1)/parts), every segment within one record of total/parts.
    let boundaries: Vec<Vec<usize>> =
        (0..=parts).map(|p| partition(runs, total * p / parts)).collect();
    let mut out = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let segments: Vec<_> = boundaries
            .windows(2)
            .map(|pair| {
                let (from, to) = (&pair[0], &pair[1]);
                let slices: Vec<&[EvalRecord]> = runs
                    .iter()
                    .zip(from.iter().zip(to))
                    .map(|(run, (&f, &t))| &run[f..t])
                    .collect();
                scope.spawn(move || sequential_merge(&slices))
            })
            .collect();
        for segment in segments {
            out.extend_from_slice(&segment.join().expect("merge segments never panic"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: usize) -> EvalRecord {
        EvalRecord { index, speedup: index as f64, cores: 1.0, area: 1.0 }
    }

    fn runs_of(indices: &[&[usize]]) -> Vec<Vec<EvalRecord>> {
        indices.iter().map(|run| run.iter().map(|&i| rec(i)).collect()).collect()
    }

    fn check(indices: &[&[usize]], parts: usize) {
        let owned = runs_of(indices);
        let runs: Vec<&[EvalRecord]> = owned.iter().map(|r| r.as_slice()).collect();
        let want = sequential_merge(&runs);
        let got = merge_runs(&runs, parts);
        assert_eq!(got, want, "runs {indices:?} parts {parts}");
    }

    #[test]
    fn partition_splits_every_diagonal_consistently() {
        let owned = runs_of(&[&[0, 2, 4, 6, 8], &[1, 3, 5], &[], &[7, 9, 10, 11]]);
        let runs: Vec<&[EvalRecord]> = owned.iter().map(|r| r.as_slice()).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let want = sequential_merge(&runs);
        for d in 0..=total {
            let offsets = partition(&runs, d);
            assert_eq!(offsets.iter().sum::<usize>(), d);
            // The prefix defined by the offsets merges to the reference's
            // d-prefix.
            let prefix: Vec<&[EvalRecord]> =
                runs.iter().zip(&offsets).map(|(run, &o)| &run[..o]).collect();
            assert_eq!(sequential_merge(&prefix), want[..d].to_vec(), "diagonal {d}");
        }
    }

    #[test]
    fn tied_keys_split_stably_across_runs() {
        // Duplicate indices across runs: stability means run order wins.
        let owned = runs_of(&[&[1, 5, 5, 9], &[5, 5, 7], &[5]]);
        let mut tagged = owned.clone();
        // Tag each record's speedup with its (run, slot) so bit-identity
        // detects any reordering among equal keys.
        for (run_index, run) in tagged.iter_mut().enumerate() {
            for (slot, record) in run.iter_mut().enumerate() {
                record.speedup = (run_index * 100 + slot) as f64;
            }
        }
        let runs: Vec<&[EvalRecord]> = tagged.iter().map(|r| r.as_slice()).collect();
        let want = sequential_merge(&runs);
        for parts in 1..=8 {
            let total: usize = runs.iter().map(|r| r.len()).sum();
            let boundaries: Vec<Vec<usize>> =
                (0..=parts).map(|p| partition(&runs, total * p / parts)).collect();
            let mut pieced = Vec::new();
            for pair in boundaries.windows(2) {
                let slices: Vec<&[EvalRecord]> = runs
                    .iter()
                    .zip(pair[0].iter().zip(&pair[1]))
                    .map(|(run, (&f, &t))| &run[f..t])
                    .collect();
                pieced.extend(sequential_merge(&slices));
            }
            assert_eq!(pieced, want, "parts {parts}");
        }
    }

    #[test]
    fn merge_runs_handles_degenerate_shapes() {
        check(&[], 4);
        check(&[&[]], 4);
        check(&[&[], &[], &[]], 3);
        check(&[&[42]], 2);
        check(&[&[], &[7], &[]], 5);
        check(&[&[0, 1, 2], &[3, 4, 5]], 2);
        check(&[&[3, 4, 5], &[0, 1, 2]], 2);
        // Heavily skewed sizes.
        let big: Vec<usize> = (0..500).map(|i| i * 2).collect();
        check(&[&big, &[1], &[999, 1001]], 7);
    }

    #[test]
    fn large_merges_cross_the_parallel_threshold_bit_identically() {
        // Interleaved disjoint bands large enough to take the threaded path.
        let a: Vec<usize> = (0..PARALLEL_THRESHOLD).map(|i| i * 3).collect();
        let b: Vec<usize> = (0..PARALLEL_THRESHOLD / 2).map(|i| i * 3 + 1).collect();
        let c: Vec<usize> = (0..PARALLEL_THRESHOLD / 4).map(|i| i * 3 + 2).collect();
        check(&[&a, &b, &c], 8);
    }
}
