//! Large-allocation memory hints.
//!
//! The sweep's two big flat allocations — the memoisation cache's slot
//! tables and the record vector — are tens of megabytes of first-touch
//! memory per run. On hosts where transparent huge pages are in `madvise`
//! mode (the common distro default), asking for huge pages collapses
//! thousands of 4 KiB first-touch faults into a handful of 2 MiB ones,
//! which is a measurable slice of a cold sweep's wall clock. The hint is
//! best-effort: failures (and non-Linux targets) are ignored.

/// Advise the kernel to back `[ptr, ptr + len)` with transparent huge pages.
/// No-op for small regions, on errors and on non-Linux targets.
#[cfg(target_os = "linux")]
pub(crate) fn advise_huge_pages<T>(ptr: *mut T, len_bytes: usize) {
    const MADV_HUGEPAGE: i32 = 14;
    const PAGE: usize = 4096;
    extern "C" {
        fn madvise(addr: *mut std::ffi::c_void, length: usize, advice: i32) -> i32;
    }
    if len_bytes < 2 * 1024 * 1024 {
        return;
    }
    // `madvise` wants a page-aligned start; align inward so the hint never
    // covers bytes outside the allocation.
    let addr = ptr as usize;
    let aligned = addr.next_multiple_of(PAGE);
    let end = addr + len_bytes;
    if end > aligned {
        // SAFETY: the range lies inside a live allocation owned by the
        // caller; MADV_HUGEPAGE never changes memory contents or validity.
        unsafe {
            madvise(aligned as *mut std::ffi::c_void, end - aligned, MADV_HUGEPAGE);
        }
    }
}

/// Advise the kernel to back `[ptr, ptr + len)` with transparent huge pages.
/// No-op for small regions, on errors and on non-Linux targets.
#[cfg(not(target_os = "linux"))]
pub(crate) fn advise_huge_pages<T>(_ptr: *mut T, _len_bytes: usize) {}
