//! # mp-dse — parallel, cache-aware design-space exploration
//!
//! The paper's design-space study sweeps a handful of hand-picked chip
//! designs. This crate turns that into a subsystem that evaluates *millions*
//! of (application × machine × strategy) scenarios fast:
//!
//! * [`scenario`] — [`ScenarioSpace`]: cartesian grids and explicit lists
//!   over application parameters, chip budgets, core sizes (symmetric and
//!   asymmetric), growth functions, core performance models, reduction
//!   strategies and NoC topologies, decoded lazily from flat indices.
//! * [`backend`] — the pluggable [`EvalBackend`] trait with four
//!   implementations: the analytic extended model ([`AnalyticBackend`]), the
//!   measured-calibration model ([`MeasuredBackend`], fed by
//!   `mp_model::calibrate`), the communication-aware model ([`CommBackend`])
//!   and the trace-driven `mp-cmpsim` timing simulation ([`SimBackend`]).
//! * [`engine`] — [`Engine`]: a sharded work queue fanning batches out over
//!   an [`mp_par::ThreadPool`]; contiguous batches share every axis but the
//!   design, so backends stream through the columnar prepared path, and
//!   results land in deterministic index order.
//! * [`tables`] — [`SpaceTables`]: per-sweep columnar (SoA) precomputation
//!   of every design-axis quantity (geometry, `perf(r)`, growth samples),
//!   feeding the backends' zero-allocation batch kernels.
//! * [`cache`] — [`EvalCache`]: lock-free, sharded, open-addressed
//!   memoisation keyed on canonicalised scenario bits; cached and uncached
//!   sweeps are bit-identical, large sweeps reserve their size up front so
//!   the table never rehashes mid-run, and the cache serialises to JSON for
//!   cross-process warm starts.
//! * [`merge`] — Merge-Path even-partition merging of index-sorted record
//!   runs: per-shard band results recombine in parallel, bit-identical to a
//!   stable sequential k-way merge.
//! * [`analysis`] — top-k designs, per-axis optima and 2-D Pareto frontiers
//!   of speedup against cores or area.
//! * [`export`] — streaming JSON / CSV writers.
//! * [`curves`] — drop-in replacements for the `mp_model::explore` figure
//!   sweeps, routed through the engine so Figures 3, 4, 5 and 7 share the
//!   production evaluation path.
//!
//! ## Quick example
//!
//! ```
//! use mp_dse::prelude::*;
//! use mp_model::params::AppClass;
//!
//! // Sweep every Table III class over a fine symmetric grid.
//! let space = ScenarioSpace::new()
//!     .with_apps(AppClass::table3_all().iter().map(|c| c.params()).collect())
//!     .clear_designs()
//!     .add_symmetric_grid((0..256).map(|i| 1.0 + i as f64));
//!
//! let engine = Engine::new(2);
//! let result = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
//! assert_eq!(result.records.len(), space.len());
//!
//! let best = top_k(&result.records, 3);
//! let frontier = pareto_frontier(&result.records, CostAxis::Cores);
//! assert!(!best.is_empty() && !frontier.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod backend;
pub mod cache;
pub mod curves;
pub mod engine;
pub mod export;
#[cfg(feature = "fault")]
pub mod fault;
mod mem;
pub mod merge;
pub mod scenario;
pub mod tables;
pub mod units;

/// Commonly used items.
pub mod prelude {
    pub use crate::analysis::{
        dominates, pareto_frontier, per_axis_optima, top_k, AxisOptimum, CostAxis,
    };
    pub use crate::backend::{
        AnalyticBackend, CommBackend, DseError, EvalBackend, MeasuredBackend, SimBackend,
    };
    pub use crate::cache::{CacheLoadError, CacheStats, EvalCache};
    pub use crate::curves::{figure_curves, Figure};
    pub use crate::engine::{
        Engine, EvalRecord, RangeCursor, SweepConfig, SweepHandle, SweepResult, SweepStats,
    };
    pub use crate::export::{write_csv, write_json};
    pub use crate::merge::{merge_runs, sequential_merge};
    pub use crate::scenario::{
        CanonicalKeyPrefix, ChipSpec, Scenario, ScenarioIndex, ScenarioSpace,
    };
    pub use crate::tables::{DesignGeometry, SpaceTables};
}

pub use prelude::*;
