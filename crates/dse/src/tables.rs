//! Columnar (structure-of-arrays) precomputation over a [`ScenarioSpace`].
//!
//! The sweep's index order puts the design axis innermost, so every
//! contiguous batch walks the design list under fixed shared axes. Everything
//! about a design that does not depend on the application — its geometry
//! under each budget, its core performance under each perf model, its growth
//! samples under each (growth, budget) pair — can therefore be computed
//! *once per sweep* instead of once per scenario. [`SpaceTables`] holds those
//! columns; the backends' prepared batch paths stream through them with plain
//! slice indexing and no allocation.
//!
//! Every column is filled with exactly the arithmetic the per-scenario path
//! performs ([`ChipSpec::cores`], [`PerfModel::perf`],
//! [`GrowthFunction::eval`] at the design's thread count), so results read
//! from the tables are bit-identical to results derived on the fly.
//!
//! [`GrowthFunction::eval`]: mp_model::growth::GrowthFunction::eval
//!
//! Sizes are tiny: the columns scale with the *axis lengths*
//! (`designs · budgets · (1 + growths)` plus `designs · perfs` entries), not
//! with the product that is the scenario count — the 214k-scenario `repro
//! dse` space needs a few dozen kilobytes of tables.

use mp_model::chip::ChipBudget;
use mp_model::perf::PerfModel;

use crate::scenario::{ChipSpec, ScenarioSpace};

/// Geometry of one design under one budget.
#[derive(Debug, Clone, Copy)]
pub struct DesignGeometry {
    /// Whether the design fits the budget ([`ChipSpec::fits`]); everything
    /// else is meaningful only when this is true.
    pub fits: bool,
    /// Core count (== merging-thread count for both organisations).
    pub cores: f64,
    /// Small-core count of an asymmetric design (`0.0` for symmetric ones).
    pub small_cores: f64,
}

/// A maximal run of consecutive designs of one organisation. Lane kernels
/// operate on homogeneous segments: symmetric and asymmetric designs use
/// different key-suffix layouts and speedup formulas, so mixed runs split at
/// every organisation boundary.
#[derive(Debug, Clone, Copy)]
pub struct DesignSegment {
    /// First design index of the segment.
    pub start: usize,
    /// Number of designs in the segment.
    pub len: usize,
    /// Whether the segment's designs are asymmetric.
    pub asym: bool,
}

/// Structure-of-arrays precomputation shared by every batch of one sweep.
#[derive(Debug)]
pub struct SpaceTables {
    designs: usize,
    /// Swept-axis area per design ([`ChipSpec::area`]).
    area: Vec<f64>,
    /// `[budget][design]` geometry.
    geometry: Vec<DesignGeometry>,
    /// `[perf][design]` performance of the small/symmetric core,
    /// `perf(r)`; `NaN` where the perf model rejects the area.
    perf_small: Vec<f64>,
    /// `[perf][design]` performance of the large core, `perf(rl)` (equals
    /// `perf_small` entries for symmetric designs, unused there).
    perf_large: Vec<f64>,
    /// `[growth][budget][design]` growth samples at the design's thread
    /// count.
    growth: Vec<f64>,
    /// `[budget][design]` fit masks for lane blends: all-ones bits where the
    /// design fits the budget, zero where it does not.
    fits_bits: Vec<u64>,
    /// `[budget][design]` small-core counts as a flat column (SoA mirror of
    /// [`DesignGeometry::small_cores`], loadable four lanes at a time).
    small_cores: Vec<f64>,
    /// Per-design small/symmetric core area `r` (the symmetric kernel's only
    /// per-design model input).
    design_r: Vec<f64>,
    /// Per-design canonical key bits of `r` (`-0.0` folded to `0.0`, exactly
    /// as [`mp_model::fingerprint::Fnv64::write_f64`] canonicalises), for the
    /// lane key hasher.
    key_r_bits: Vec<u64>,
    /// Per-design canonical key bits of `rl` (asymmetric designs only;
    /// zero-filled for symmetric ones, which never read it).
    key_rl_bits: Vec<u64>,
    /// Maximal homogeneous organisation runs over the design axis.
    segments: Vec<DesignSegment>,
}

impl SpaceTables {
    /// Precompute every design-axis column of `space`.
    pub fn new(space: &ScenarioSpace) -> Self {
        let designs = space.designs();
        let d = designs.len();

        let area: Vec<f64> = designs.iter().map(|spec| spec.area()).collect();

        let mut geometry = Vec::with_capacity(space.budgets().len() * d);
        for &budget_bce in space.budgets() {
            let budget = ChipBudget::new(budget_bce);
            for spec in designs {
                let fits = spec.fits(budget);
                let cores = spec.cores(budget);
                let small_cores = match spec {
                    ChipSpec::Symmetric { .. } => 0.0,
                    ChipSpec::Asymmetric { r, rl } => ((budget.total_bce() - rl) / r).max(0.0),
                };
                geometry.push(DesignGeometry { fits, cores, small_cores });
            }
        }

        let perf_or_nan = |perf: &PerfModel, r: f64| perf.perf(r).unwrap_or(f64::NAN);
        let mut perf_small = Vec::with_capacity(space.perfs().len() * d);
        let mut perf_large = Vec::with_capacity(space.perfs().len() * d);
        for perf in space.perfs() {
            for spec in designs {
                match *spec {
                    ChipSpec::Symmetric { r } => {
                        let p = perf_or_nan(perf, r);
                        perf_small.push(p);
                        perf_large.push(p);
                    }
                    ChipSpec::Asymmetric { r, rl } => {
                        perf_small.push(perf_or_nan(perf, r));
                        perf_large.push(perf_or_nan(perf, rl));
                    }
                }
            }
        }

        // Growth samples are taken at the same thread counts the analytic
        // designs report: `SymmetricDesign::threads() == cores` and
        // `AsymmetricDesign::threads() == small_cores + 1 == cores`.
        let mut growth = Vec::with_capacity(space.growths().len() * geometry.len());
        for g in space.growths() {
            for geo in &geometry {
                growth.push(g.eval(geo.cores));
            }
        }

        let fits_bits: Vec<u64> =
            geometry.iter().map(|geo| if geo.fits { u64::MAX } else { 0 }).collect();
        let small_cores: Vec<f64> = geometry.iter().map(|geo| geo.small_cores).collect();

        let canonical_bits = |v: f64| if v == 0.0 { 0.0f64 } else { v }.to_bits();
        let mut design_r = Vec::with_capacity(d);
        let mut key_r_bits = Vec::with_capacity(d);
        let mut key_rl_bits = Vec::with_capacity(d);
        let mut segments: Vec<DesignSegment> = Vec::new();
        for (i, spec) in designs.iter().enumerate() {
            let (r, rl_bits, asym) = match *spec {
                ChipSpec::Symmetric { r } => (r, 0, false),
                ChipSpec::Asymmetric { r, rl } => (r, canonical_bits(rl), true),
            };
            design_r.push(r);
            key_r_bits.push(canonical_bits(r));
            key_rl_bits.push(rl_bits);
            match segments.last_mut() {
                Some(seg) if seg.asym == asym => seg.len += 1,
                _ => segments.push(DesignSegment { start: i, len: 1, asym }),
            }
        }

        SpaceTables {
            designs: d,
            area,
            geometry,
            perf_small,
            perf_large,
            growth,
            fits_bits,
            small_cores,
            design_r,
            key_r_bits,
            key_rl_bits,
            segments,
        }
    }

    /// Number of designs each column run covers.
    pub fn designs(&self) -> usize {
        self.designs
    }

    /// Per-design swept areas.
    pub fn area(&self) -> &[f64] {
        &self.area
    }

    /// The design-geometry run of one budget-axis index.
    pub fn geometry(&self, budget_index: usize) -> &[DesignGeometry] {
        let start = budget_index * self.designs;
        &self.geometry[start..start + self.designs]
    }

    /// The small/symmetric-core performance run of one perf-axis index.
    pub fn perf_small(&self, perf_index: usize) -> &[f64] {
        let start = perf_index * self.designs;
        &self.perf_small[start..start + self.designs]
    }

    /// The large-core performance run of one perf-axis index.
    pub fn perf_large(&self, perf_index: usize) -> &[f64] {
        let start = perf_index * self.designs;
        &self.perf_large[start..start + self.designs]
    }

    /// The growth-sample run of one (growth, budget) axis-index pair.
    pub fn growth(&self, growth_index: usize, budget_index: usize) -> &[f64] {
        let budgets = self.geometry.len() / self.designs.max(1);
        let start = (growth_index * budgets + budget_index) * self.designs;
        &self.growth[start..start + self.designs]
    }

    /// The fit-mask run of one budget-axis index: all-ones where the design
    /// fits, zero where it does not (ready for a lane blend to `NaN`).
    pub fn fits_bits(&self, budget_index: usize) -> &[u64] {
        let start = budget_index * self.designs;
        &self.fits_bits[start..start + self.designs]
    }

    /// The small-core-count run of one budget-axis index (SoA mirror of the
    /// geometry column's `small_cores`).
    pub fn small_cores(&self, budget_index: usize) -> &[f64] {
        let start = budget_index * self.designs;
        &self.small_cores[start..start + self.designs]
    }

    /// Per-design small/symmetric core areas `r`.
    pub fn design_r(&self) -> &[f64] {
        &self.design_r
    }

    /// Per-design canonical key bits of `r` (`-0.0` → `0.0`).
    pub fn key_r_bits(&self) -> &[u64] {
        &self.key_r_bits
    }

    /// Per-design canonical key bits of `rl` (meaningful on asymmetric
    /// designs only).
    pub fn key_rl_bits(&self) -> &[u64] {
        &self.key_rl_bits
    }

    /// Maximal homogeneous organisation runs over the design axis.
    pub fn segments(&self) -> &[DesignSegment] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_model::growth::GrowthFunction;
    use mp_model::params::AppParams;

    fn space() -> ScenarioSpace {
        ScenarioSpace::new()
            .with_apps(vec![AppParams::table2_kmeans()])
            .with_budgets(vec![64.0, 256.0])
            .with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic])
            .with_perfs(vec![PerfModel::Pollack, PerfModel::Linear])
            .clear_designs()
            .add_symmetric_grid([1.0, 4.0, 100.0])
            .add_asymmetric_grid([1.0, 2.0], [4.0, 64.0])
    }

    #[test]
    fn columns_match_the_per_scenario_derivations_bitwise() {
        let space = space();
        let tables = SpaceTables::new(&space);
        for index in 0..space.len() {
            let ix = space.decode(index);
            let scenario = space.scenario(index);
            let geo = tables.geometry(ix.budget)[ix.design];
            assert_eq!(geo.fits, scenario.design.fits(scenario.budget), "index {index}");
            assert_eq!(geo.cores.to_bits(), scenario.cores().to_bits(), "index {index}");
            assert_eq!(
                tables.area()[ix.design].to_bits(),
                scenario.area().to_bits(),
                "index {index}"
            );
            let sample = tables.growth(ix.growth, ix.budget)[ix.design];
            assert_eq!(
                sample.to_bits(),
                scenario.growth.eval(scenario.cores()).to_bits(),
                "index {index}"
            );
            match scenario.design {
                ChipSpec::Symmetric { r } => {
                    let expect = scenario.perf.perf(r).unwrap_or(f64::NAN);
                    assert_eq!(
                        tables.perf_small(ix.perf)[ix.design].to_bits(),
                        expect.to_bits(),
                        "index {index}"
                    );
                }
                ChipSpec::Asymmetric { r, rl } => {
                    let small = scenario.perf.perf(r).unwrap_or(f64::NAN);
                    let large = scenario.perf.perf(rl).unwrap_or(f64::NAN);
                    assert_eq!(tables.perf_small(ix.perf)[ix.design].to_bits(), small.to_bits());
                    assert_eq!(tables.perf_large(ix.perf)[ix.design].to_bits(), large.to_bits());
                    // small_cores must reproduce AsymmetricDesign::small_cores.
                    let expect = ((scenario.budget.total_bce() - rl) / r).max(0.0);
                    assert_eq!(geo.small_cores.to_bits(), expect.to_bits());
                }
            }
        }
    }

    #[test]
    fn runs_have_one_entry_per_design() {
        let space = space();
        let tables = SpaceTables::new(&space);
        assert_eq!(tables.designs(), space.designs().len());
        for b in 0..space.budgets().len() {
            assert_eq!(tables.geometry(b).len(), tables.designs());
            for g in 0..space.growths().len() {
                assert_eq!(tables.growth(g, b).len(), tables.designs());
            }
        }
        for p in 0..space.perfs().len() {
            assert_eq!(tables.perf_small(p).len(), tables.designs());
        }
    }
}
