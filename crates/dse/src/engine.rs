//! The sweep engine: fans a [`ScenarioSpace`] out over an
//! [`mp_par::ThreadPool`] in cache-friendly batches.
//!
//! The space is cut into contiguous index batches (the design axis varies
//! fastest, so a batch shares the application/growth/perf axes and the
//! backend's batched path can hoist model construction). Worker jobs pull
//! batches from a shared atomic cursor — a work queue with no per-scenario
//! synchronisation — and write results into disjoint slices of one
//! preallocated record vector, so the output is deterministic and ordered
//! regardless of scheduling.
//!
//! With memoisation enabled, each batch first probes the [`EvalCache`] by
//! canonical scenario fingerprint; only the misses are evaluated (and
//! back-filled into the cache). Because the cache stores raw `f64` bit
//! patterns, cached and uncached sweeps produce bit-identical records.

use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use mp_obs::hist::Histogram;
use mp_obs::metrics::Counter;
use mp_obs::profile::{thread_lane, Profiler};
use mp_par::ThreadPool;
use serde::{Deserialize, Serialize};

use crate::backend::EvalBackend;
use crate::cache::EvalCache;
use crate::scenario::{Scenario, ScenarioSpace};
use crate::tables::SpaceTables;

/// Process-wide engine metrics in the global mp-obs registry (see the
/// README's observability catalogue). Handles are cached in `OnceLock`s so
/// the hot path pays one acquire load plus a relaxed sharded `fetch_add`
/// per *batch*, never a registry lookup.
fn obs_scenarios() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("dse_scenarios_evaluated"))
}

fn obs_cache_hits() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("cache_hits"))
}

fn obs_cache_misses() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::counter("cache_misses"))
}

fn obs_batch_ms() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::histogram_ms("dse_batch_ms"))
}

fn obs_table_build_ms() -> &'static Histogram {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| mp_obs::histogram_ms("dse_table_build_ms"))
}

/// One evaluated scenario of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Flat index into the swept [`ScenarioSpace`].
    pub index: usize,
    /// Predicted speedup (`NaN` for designs that do not fit their budget or
    /// that the backend rejected).
    pub speedup: f64,
    /// Number of cores of the design.
    pub cores: f64,
    /// Swept-axis area of the design (`r` symmetric, `rl` asymmetric).
    pub area: f64,
}

impl EvalRecord {
    /// Whether the record carries a real evaluation.
    pub fn is_valid(&self) -> bool {
        self.speedup.is_finite()
    }
}

/// Tuning knobs of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Scenarios per work batch. Batches are contiguous index ranges, so this
    /// is also the granularity of the backend's model-hoisting fast path.
    pub batch_size: usize,
    /// Whether to consult and fill the engine's memoisation cache.
    pub use_cache: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { batch_size: 1024, use_cache: true }
    }
}

/// Bookkeeping of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Total scenarios submitted.
    pub scenarios: usize,
    /// Scenarios with a finite speedup.
    pub valid: usize,
    /// Scenario evaluations answered from the memoisation cache.
    pub cache_hits: u64,
    /// Scenario evaluations computed by the backend.
    pub cache_misses: u64,
    /// Cache entries already present when the sweep started (its warm-start
    /// budget; `0` for uncached or cold-cache sweeps).
    pub warm_entries: usize,
    /// Worker threads that participated.
    pub threads: usize,
    /// Whether this result was shared from a coalesced in-flight evaluation
    /// rather than evaluated for this subscriber alone. The engine itself
    /// never coalesces (`false` here); the serve-layer planner marks the
    /// stats it fans out to follower subscribers, so aggregators summing
    /// per-response stats can count each shared evaluation once.
    pub coalesced: bool,
    /// Wall-clock duration of the sweep in seconds.
    pub elapsed_seconds: f64,
}

/// The outcome of a sweep: one record per scenario, in index order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Evaluated records, ordered by scenario index.
    pub records: Vec<EvalRecord>,
    /// Sweep bookkeeping.
    pub stats: SweepStats,
}

/// A reusable sweep engine: a worker pool plus a memoisation cache.
pub struct Engine {
    pool: Option<ThreadPool>,
    threads: usize,
    cache: EvalCache,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads)
            .field("cache", &self.cache)
            .finish()
    }
}

impl Engine {
    /// An engine with `threads` workers (1 evaluates inline, no pool).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "engine needs at least one thread");
        Engine {
            pool: (threads > 1).then(|| ThreadPool::new(threads)),
            threads,
            cache: EvalCache::new(),
        }
    }

    /// An engine using every available hardware thread.
    pub fn with_all_cores() -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Engine::new(threads)
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's memoisation cache (for persistence or inspection).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Evaluate every scenario of `space` with `backend`.
    pub fn sweep(
        &self,
        space: &ScenarioSpace,
        backend: &dyn EvalBackend,
        config: &SweepConfig,
    ) -> SweepResult {
        let handle = SweepHandle::new(space);
        self.sweep_range(&handle, backend, config, 0..handle.len())
    }

    /// Evaluate the contiguous index sub-range `range` of a prepared sweep.
    ///
    /// This is the reusable core of [`Engine::sweep`]: the handle's
    /// [`SpaceTables`] are built once and shared across any number of calls
    /// (and engines), so a resident service can answer incremental or
    /// repeated queries without re-deriving the columnar precomputation.
    /// Records carry **global** flat indices into the handle's space, and a
    /// range sweep is bit-identical to the same slice of a full sweep — the
    /// per-scenario values are deterministic functions of the scenario and
    /// backend alone.
    pub fn sweep_range(
        &self,
        handle: &SweepHandle<'_>,
        backend: &dyn EvalBackend,
        config: &SweepConfig,
        range: std::ops::Range<usize>,
    ) -> SweepResult {
        assert!(config.batch_size > 0, "batch size must be positive");
        let space = handle.space();
        let tables = handle.tables();
        assert!(range.end <= space.len(), "sweep range {range:?} exceeds the space");
        let started = std::time::Instant::now();
        let n = range.len();
        // The batches cover `0..n` exactly once and overwrite every record,
        // so a `vec![placeholder; n]` would be a second full write pass over
        // tens of megabytes. The all-zero byte pattern is a valid
        // `EvalRecord` (index 0, +0.0 everywhere), so the vector comes from
        // a zeroed allocation instead: the kernel's lazily-mapped zero pages
        // make it near-free and every element is still initialised.
        let mut records: Vec<EvalRecord> = zeroed_records(n);
        crate::mem::advise_huge_pages(records.as_mut_ptr(), n * std::mem::size_of::<EvalRecord>());
        let cache = config.use_cache.then_some(&self.cache);
        // An empty cache cannot answer any probe, so the sweep skips the
        // guaranteed-miss lookups entirely and goes straight to the columnar
        // evaluation plus back-fill — this halves the cache's memory traffic
        // on a cold first pass. (A concurrently shared cache may gain entries
        // mid-sweep; skipping those probes merely recomputes deterministic
        // values, so records are unaffected.) Checked before `reserve`, which
        // would otherwise make the emptiness scan walk the grown tables.
        let cold_start = cache.is_some_and(|c| c.is_empty());
        // The cold-start scan already walked the tables, so the warm-start
        // entry count only pays a second walk on genuinely warm sweeps.
        let warm_entries = match cache {
            Some(cache) if !cold_start => cache.len(),
            _ => 0,
        };
        // The cache never rehashes mid-sweep, and the salt string is built
        // once instead of once per batch.
        if cache.is_some() {
            self.cache.reserve(n);
        }
        let salt = backend.cache_salt();
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);

        // Shrink the batch when the space is small relative to the worker
        // count, so every worker gets several batches to pull (load balance);
        // a floor keeps per-batch overheads amortised. Results are
        // batch-size-independent, so this only affects scheduling.
        let batch = if self.pool.is_some() {
            config.batch_size.min(n.div_ceil(self.threads * 4).max(64))
        } else {
            config.batch_size
        };
        let use_pool = self.pool.is_some() && n > batch;
        let mut workers = 1usize;
        if use_pool {
            let shared = SweepShared {
                space,
                tables,
                backend,
                cache,
                cold_start,
                salt: &salt,
                records: records.as_mut_ptr(),
                base: range.start,
                end: range.end,
                batch,
                cursor: AtomicUsize::new(0),
                hits: &hits,
                misses: &misses,
                panicked: AtomicBool::new(false),
                pending: Mutex::new(0),
                done: Condvar::new(),
            };
            let pool = self.pool.as_ref().expect("pool exists when use_pool");
            let jobs = self.threads.min(n.div_ceil(batch));
            workers = jobs;
            *shared.pending.lock().unwrap_or_else(|e| e.into_inner()) = jobs;
            // SAFETY: the jobs only live until `wait_pending` returns below —
            // the pending counter is decremented by a drop guard even on
            // panic — so every reference outlives every job. Disjoint record
            // ranges are handed out by the atomic cursor, so no slot is ever
            // written twice.
            let shared_ref: &'static SweepShared<'static> = unsafe { std::mem::transmute(&shared) };
            // The caller participates as the last worker instead of spinning
            // idle for the whole sweep, so exactly `jobs` threads do work.
            for _ in 0..jobs.saturating_sub(1) {
                pool.execute(move || shared_ref.run_worker());
            }
            shared.run_worker();
            shared.wait_pending();
            if shared.panicked.load(Ordering::Acquire) {
                panic!("a design-space evaluation backend panicked during the sweep");
            }
        } else {
            let mut scratch = BatchScratch::with_capacity(batch);
            let mut start = range.start;
            while start < range.end {
                let end = (start + batch).min(range.end);
                let out = &mut records[start - range.start..end - range.start];
                process_batch(
                    space,
                    tables,
                    backend,
                    cache,
                    cold_start,
                    &salt,
                    start..end,
                    out,
                    &hits,
                    &misses,
                    &mut scratch,
                );
                start = end;
            }
        }

        let valid = records.iter().filter(|r| r.is_valid()).count();
        SweepResult {
            records,
            stats: SweepStats {
                scenarios: n,
                valid,
                cache_hits: hits.load(Ordering::Relaxed),
                cache_misses: misses.load(Ordering::Relaxed),
                warm_entries,
                threads: workers,
                coalesced: false,
                elapsed_seconds: started.elapsed().as_secs_f64(),
            },
        }
    }

    /// Evaluate several **disjoint** index ranges of a prepared sweep and
    /// merge their records back into one index-ordered result via the
    /// Merge-Path partitioned merge ([`crate::merge::merge_runs`]) — the
    /// same recombination the serve layer applies to per-shard band results.
    /// Records are bit-identical to the corresponding slices of a full
    /// [`Engine::sweep_range`]; statistics sum across the ranges
    /// (`warm_entries` and `threads` take the per-range maximum — the cache
    /// is one table and the pool is one pool).
    pub fn sweep_ranges(
        &self,
        handle: &SweepHandle<'_>,
        backend: &dyn EvalBackend,
        config: &SweepConfig,
        ranges: &[std::ops::Range<usize>],
    ) -> SweepResult {
        let started = std::time::Instant::now();
        let partials: Vec<SweepResult> = ranges
            .iter()
            .map(|range| self.sweep_range(handle, backend, config, range.clone()))
            .collect();
        let runs: Vec<&[EvalRecord]> = partials.iter().map(|p| p.records.as_slice()).collect();
        let records = crate::merge::merge_runs(&runs, self.threads);
        let mut stats = SweepStats {
            scenarios: 0,
            valid: 0,
            cache_hits: 0,
            cache_misses: 0,
            warm_entries: 0,
            threads: 0,
            coalesced: false,
            elapsed_seconds: 0.0,
        };
        for partial in &partials {
            stats.scenarios += partial.stats.scenarios;
            stats.valid += partial.stats.valid;
            stats.cache_hits += partial.stats.cache_hits;
            stats.cache_misses += partial.stats.cache_misses;
            stats.warm_entries = stats.warm_entries.max(partial.stats.warm_entries);
            stats.threads = stats.threads.max(partial.stats.threads);
        }
        stats.elapsed_seconds = started.elapsed().as_secs_f64();
        SweepResult { records, stats }
    }
}

/// A reusable sweep snapshot: a scenario space plus its columnar
/// [`SpaceTables`], built once and shared across any number of
/// [`Engine::sweep_range`] calls.
///
/// [`SweepHandle::new`] borrows the space (what [`Engine::sweep`] uses — no
/// cloning on the one-shot path); [`SweepHandle::owned`] takes ownership, for
/// resident services that keep prepared sweeps alive across requests.
pub struct SweepHandle<'a> {
    space: Cow<'a, ScenarioSpace>,
    tables: SpaceTables,
    /// Content fingerprint of the space, computed lazily on first use (the
    /// one-shot sweep path never needs it) and cached — planner keys read
    /// it once per query, not once per serialisation.
    fingerprint: OnceLock<u64>,
}

impl<'a> SweepHandle<'a> {
    /// Prepare a sweep over a borrowed space.
    pub fn new(space: &'a ScenarioSpace) -> Self {
        SweepHandle {
            tables: build_tables(space),
            space: Cow::Borrowed(space),
            fingerprint: OnceLock::new(),
        }
    }

    /// Prepare a sweep that owns its space (`'static`: storable in caches).
    pub fn owned(space: ScenarioSpace) -> SweepHandle<'static> {
        SweepHandle {
            tables: build_tables(&space),
            space: Cow::Owned(space),
            fingerprint: OnceLock::new(),
        }
    }

    /// Content fingerprint of the prepared space
    /// ([`space_fingerprint`]), computed on first call and cached.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| space_fingerprint(self.space()))
    }

    /// The prepared space.
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// The precomputed design-axis columns.
    pub fn tables(&self) -> &SpaceTables {
        &self.tables
    }

    /// Number of scenarios in the prepared space.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// Whether the prepared space is empty.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// A resumable cursor over `range` of this prepared sweep, consumed in
    /// `step`-sized windows (see [`RangeCursor`]).
    pub fn cursor(&self, range: std::ops::Range<usize>, step: usize) -> RangeCursor {
        assert!(range.end <= self.len(), "cursor range {range:?} exceeds the space");
        RangeCursor::new(range, step)
    }
}

/// Content fingerprint of a space: FNV-64 over its canonical JSON form.
/// Axis *values* (bit-exact — the JSON printer is shortest-round-trip) and
/// axis order both contribute, matching [`ScenarioSpace`] equality. This is
/// the key the serve layer uses for its prepared-handle cache and the
/// planner's coalescing table.
pub fn space_fingerprint(space: &ScenarioSpace) -> u64 {
    let mut hasher = mp_model::fingerprint::Fnv64::new();
    hasher.write_str(&serde_json::to_string(space).expect("spaces always serialise"));
    hasher.finish()
}

/// Build the columnar tables for `space`, feeding the table-build timing
/// into the metrics registry (and the profiler when one is recording).
fn build_tables(space: &ScenarioSpace) -> SpaceTables {
    let profiler = Profiler::global();
    let _span = profiler
        .is_enabled()
        .then(|| profiler.span(&format!("table_build ({})", space.len()), "engine", thread_lane()));
    let started = std::time::Instant::now();
    let tables = SpaceTables::new(space);
    obs_table_build_ms().record(started.elapsed().as_secs_f64() * 1e3);
    tables
}

impl std::fmt::Debug for SweepHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepHandle").field("scenarios", &self.len()).finish()
    }
}

/// A resumable position inside one prepared sweep: the remaining part of a
/// `[start, end)` index range, consumed in `step`-sized windows.
///
/// This is what lets a resident service stream a large sweep **pull-based**:
/// each [`RangeCursor::next_window`] yields the next contiguous sub-range to
/// hand to [`Engine::sweep_range`], and the cursor can sit parked for as long
/// as the consumer (a slow socket, a paused client) needs — no partial
/// results are buffered, because none are computed until pulled. Windows are
/// always `step`-aligned relative to `start`, so the chunk boundaries of a
/// windowed sweep coincide with those of a one-shot sweep chunked at any
/// divisor of `step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeCursor {
    end: usize,
    step: usize,
    pos: usize,
}

impl RangeCursor {
    /// A cursor over `range`, advancing `step` scenarios per window.
    pub fn new(range: std::ops::Range<usize>, step: usize) -> Self {
        assert!(step > 0, "cursor step must be positive");
        assert!(range.start <= range.end, "cursor range must be ordered");
        RangeCursor { end: range.end, step, pos: range.start }
    }

    /// The next window (empty ranges never come back), or `None` once the
    /// whole range has been handed out.
    pub fn next_window(&mut self) -> Option<std::ops::Range<usize>> {
        if self.pos >= self.end {
            return None;
        }
        let start = self.pos;
        self.pos = (start + self.step).min(self.end);
        Some(start..self.pos)
    }

    /// First index not yet handed out.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Scenarios not yet handed out.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Whether every window has been handed out.
    pub fn is_done(&self) -> bool {
        self.pos >= self.end
    }

    /// The window size.
    pub fn step(&self) -> usize {
        self.step
    }
}

/// Shared state of one parallel sweep; handed to pool workers as a
/// lifetime-erased reference (see the safety comment at the transmute).
struct SweepShared<'a> {
    space: &'a ScenarioSpace,
    tables: &'a SpaceTables,
    backend: &'a dyn EvalBackend,
    cache: Option<&'a EvalCache>,
    cold_start: bool,
    salt: &'a str,
    /// Destination slot of global index `base` (the range's first scenario).
    records: *mut EvalRecord,
    /// First global scenario index of the swept range.
    base: usize,
    /// One past the last global scenario index of the swept range.
    end: usize,
    batch: usize,
    cursor: AtomicUsize,
    hits: &'a AtomicU64,
    misses: &'a AtomicU64,
    panicked: AtomicBool,
    pending: Mutex<usize>,
    done: Condvar,
}

// SAFETY: the raw record pointer is only dereferenced through disjoint index
// ranges handed out by the atomic cursor, and the caller blocks until every
// worker has finished before touching the records again.
unsafe impl Send for SweepShared<'_> {}
unsafe impl Sync for SweepShared<'_> {}

impl SweepShared<'_> {
    fn run_worker(&self) {
        // Decrement `pending` even if a batch panics so the caller never
        // deadlocks; remember the panic and re-raise it on the caller.
        struct Done<'a, 'b>(&'a SweepShared<'b>);
        impl Drop for Done<'_, '_> {
            fn drop(&mut self) {
                let mut pending = self.0.pending.lock().unwrap_or_else(|e| e.into_inner());
                *pending -= 1;
                if *pending == 0 {
                    self.0.done.notify_all();
                }
            }
        }
        let _done = Done(self);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // One scratch per worker, reused across every batch it pulls: the
            // per-batch working sets allocate only on the worker's first
            // batch (and never per scenario).
            let mut scratch = BatchScratch::with_capacity(self.batch);
            loop {
                let batch_index = self.cursor.fetch_add(1, Ordering::Relaxed);
                let offset = batch_index.saturating_mul(self.batch);
                if offset >= self.end - self.base {
                    break;
                }
                let start = self.base + offset;
                let end = (start + self.batch).min(self.end);
                // SAFETY: `start..end` ranges from the cursor never overlap.
                let out = unsafe {
                    std::slice::from_raw_parts_mut(self.records.add(offset), end - start)
                };
                process_batch(
                    self.space,
                    self.tables,
                    self.backend,
                    self.cache,
                    self.cold_start,
                    self.salt,
                    start..end,
                    out,
                    self.hits,
                    self.misses,
                    &mut scratch,
                );
            }
        }));
        if result.is_err() {
            self.panicked.store(true, Ordering::Release);
        }
    }

    fn wait_pending(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        while *pending != 0 {
            pending = self.done.wait(pending).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A record vector of `n` all-zero elements straight from a zeroed
/// allocation — no element-wise initialisation pass. Zero bytes are a valid
/// `EvalRecord` (`index` 0, `+0.0` in every float field).
fn zeroed_records(n: usize) -> Vec<EvalRecord> {
    if n == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<EvalRecord>(n).expect("record layout");
    // SAFETY: the pointer comes from the global allocator with exactly the
    // layout `Vec` will free it under (len == capacity == n), and all-zero
    // bytes initialise every `EvalRecord` field to a valid value.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut EvalRecord;
        assert!(!ptr.is_null(), "record allocation failed");
        Vec::from_raw_parts(ptr, n, n)
    }
}

/// Reusable per-worker working sets of one batch. Sized once (to the sweep's
/// batch size) and reused for every batch the worker pulls, so the steady
/// state of the sweep performs no per-batch — let alone per-scenario — heap
/// allocation.
struct BatchScratch {
    speedups: Vec<f64>,
    keys: Vec<(u64, u64)>,
    holes: Vec<bool>,
}

impl BatchScratch {
    fn with_capacity(batch: usize) -> Self {
        BatchScratch {
            speedups: Vec::with_capacity(batch),
            keys: Vec::with_capacity(batch),
            holes: Vec::with_capacity(batch),
        }
    }

    /// Reset for a batch of `len` scenarios.
    fn reset(&mut self, len: usize) {
        self.speedups.clear();
        self.speedups.resize(len, f64::NAN);
        self.keys.clear();
        self.keys.resize(len, (0, 0));
        self.holes.clear();
        self.holes.resize(len, false);
    }
}

/// Walk `range` as maximal runs of consecutive designs sharing every other
/// axis, handing each run's base scenario to `f` along with its offset and
/// length. The decode (and, for the cache path, the canonical-key prefix
/// hash) thus happens once per run instead of once per scenario. Built on
/// the same run decomposition the backends use
/// ([`crate::backend::for_each_design_run`]).
fn for_each_run(
    space: &ScenarioSpace,
    range: std::ops::Range<usize>,
    mut f: impl FnMut(usize, &Scenario<'_>, usize, usize, usize),
) {
    crate::backend::for_each_design_run(space, range, |index, offset, run| {
        let scenario = space.scenario(index);
        f(index, &scenario, index % space.designs().len(), offset, run);
    });
}

/// Evaluate one contiguous batch into `out`, going through the cache when one
/// is provided.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    space: &ScenarioSpace,
    tables: &SpaceTables,
    backend: &dyn EvalBackend,
    cache: Option<&EvalCache>,
    cold_start: bool,
    salt: &str,
    range: std::ops::Range<usize>,
    out: &mut [EvalRecord],
    hits: &AtomicU64,
    misses: &AtomicU64,
    scratch: &mut BatchScratch,
) {
    debug_assert_eq!(out.len(), range.len());
    let len = range.len();
    let profiler = Profiler::global();
    let _span = profiler.is_enabled().then(|| {
        profiler.span(&format!("batch {}..{}", range.start, range.end), "engine", thread_lane())
    });
    let batch_started = std::time::Instant::now();
    scratch.reset(len);

    match cache {
        None => {
            backend.evaluate_batch_prepared(
                space,
                tables,
                range.clone(),
                &mut scratch.speedups[..],
            );
            misses.fetch_add(len as u64, Ordering::Relaxed);
            obs_cache_misses().add(len as u64);
        }
        Some(cache) => {
            let missing = {
                let speedups = &mut scratch.speedups[..];
                let keys = &mut scratch.keys[..];
                let holes = &mut scratch.holes[..];
                // Hash the shared axes once per design run; per scenario only
                // the design itself is folded into the saved prefix — four
                // designs per step on the AVX2 lane folder, one at a time on
                // the scalar reference (bit-equal either way: the fold is
                // integer-exact).
                for_each_run(space, range.clone(), |_, scenario, design, offset, run| {
                    let prefix = scenario.canonical_key_prefix(salt);
                    crate::cache::fill_design_keys(
                        &prefix,
                        space.designs(),
                        tables,
                        design,
                        &mut keys[offset..offset + run],
                    );
                });
                if cold_start {
                    // The cache was empty when the sweep started: every probe
                    // would miss, so evaluate straight away and only pay the
                    // cache's memory traffic for the back-fill.
                    backend.evaluate_batch_prepared(space, tables, range.clone(), speedups);
                    misses.fetch_add(len as u64, Ordering::Relaxed);
                    obs_cache_misses().add(len as u64);
                    cache.record_bypassed_misses(len as u64);
                    cache.insert_batch(keys, speedups);
                    None
                } else {
                    // Pipelined probe walk: each step prefetches the home
                    // slot a fixed distance ahead, overlapping the batch's
                    // cacheline fetches with the dependent probes.
                    let missing = cache.get_batch(keys, speedups, holes);
                    hits.fetch_add((len - missing) as u64, Ordering::Relaxed);
                    obs_cache_hits().add((len - missing) as u64);
                    Some(missing)
                }
            };
            if let Some(missing) = missing {
                process_batch_holes(
                    space,
                    tables,
                    backend,
                    cache,
                    range.clone(),
                    missing,
                    scratch,
                    hits,
                    misses,
                );
            }
        }
    }

    obs_scenarios().add(len as u64);
    obs_batch_ms().record(batch_started.elapsed().as_secs_f64() * 1e3);

    // Records read their geometry from the precomputed columns — no
    // per-scenario decode, derivation or scenario materialisation. The
    // budget axis is the second-innermost of the decode order, so its index
    // falls out of the run's base index directly.
    let area = tables.area();
    let designs = space.designs().len();
    let budgets = space.budgets().len();
    crate::backend::for_each_design_run(space, range, |index, offset, run| {
        let design = index % designs;
        let geometry = tables.geometry(index / designs % budgets);
        for k in 0..run {
            out[offset + k] = EvalRecord {
                index: index + k,
                speedup: scratch.speedups[offset + k],
                cores: geometry[design + k].cores,
                area: area[design + k],
            };
        }
    });
}

/// The warm-cache tail of [`process_batch`]: fill the probe holes of a batch
/// whose keys and first-probe results are already in `scratch`.
#[allow(clippy::too_many_arguments)]
fn process_batch_holes(
    space: &ScenarioSpace,
    tables: &SpaceTables,
    backend: &dyn EvalBackend,
    cache: &EvalCache,
    range: std::ops::Range<usize>,
    missing: usize,
    scratch: &mut BatchScratch,
    hits: &AtomicU64,
    misses: &AtomicU64,
) {
    let len = range.len();
    let speedups = &mut scratch.speedups[..];
    let keys = &scratch.keys[..];
    let holes = &scratch.holes[..];
    if missing == len {
        // Cold batch: take the backend's columnar fast path.
        backend.evaluate_batch_prepared(space, tables, range.clone(), speedups);
        misses.fetch_add(len as u64, Ordering::Relaxed);
        obs_cache_misses().add(len as u64);
        cache.insert_batch(keys, speedups);
    } else if missing > 0 {
        // Mixed batch: evaluate only the first-probe holes. A hole's
        // key may have been filled since the first probe (a duplicate
        // scenario earlier in this batch, or another worker): take
        // the cached value then — counted as a hit, since no backend
        // evaluation happened — so every slot ends up populated.
        // `peek` keeps the re-probe itself out of the statistics.
        let mut peeked = 0u64;
        let mut evaluated = 0u64;
        for_each_run(space, range, |_, scenario, design, offset, run| {
            for k in 0..run {
                if !holes[offset + k] {
                    continue;
                }
                if let Some(speedup) = cache.peek(keys[offset + k]) {
                    speedups[offset + k] = speedup;
                    peeked += 1;
                    continue;
                }
                let candidate =
                    Scenario { design: space.designs()[design + k], ..scenario.clone() };
                let speedup = if candidate.design.fits(candidate.budget) {
                    backend.evaluate(&candidate).unwrap_or(f64::NAN)
                } else {
                    f64::NAN
                };
                speedups[offset + k] = speedup;
                cache.insert(keys[offset + k], speedup);
                evaluated += 1;
            }
        });
        hits.fetch_add(peeked, Ordering::Relaxed);
        misses.fetch_add(evaluated, Ordering::Relaxed);
        obs_cache_hits().add(peeked);
        obs_cache_misses().add(evaluated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use mp_model::params::{AppClass, AppParams};

    fn space() -> ScenarioSpace {
        ScenarioSpace::new()
            .with_apps(
                AppClass::table3_all().into_iter().map(|c| c.params()).collect::<Vec<AppParams>>(),
            )
            .clear_designs()
            .add_symmetric_grid((0..64).map(|i| 1.0 + i as f64 * 2.0))
            .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
    }

    #[test]
    fn parallel_and_inline_sweeps_agree_bitwise() {
        let space = space();
        let inline = Engine::new(1);
        let parallel = Engine::new(4);
        let config = SweepConfig { batch_size: 16, use_cache: false };
        let a = inline.sweep(&space, &AnalyticBackend, &config);
        let b = parallel.sweep(&space, &AnalyticBackend, &config);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.speedup.to_bits(), y.speedup.to_bits());
        }
    }

    #[test]
    fn cached_resweep_hits_every_scenario() {
        let space = space();
        let engine = Engine::new(2);
        let config = SweepConfig { batch_size: 32, use_cache: true };
        let first = engine.sweep(&space, &AnalyticBackend, &config);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, space.len() as u64);
        let second = engine.sweep(&space, &AnalyticBackend, &config);
        assert_eq!(second.stats.cache_hits, space.len() as u64);
        assert_eq!(second.stats.cache_misses, 0);
        for (x, y) in first.records.iter().zip(second.records.iter()) {
            assert_eq!(x.speedup.to_bits(), y.speedup.to_bits());
        }
    }

    #[test]
    fn unfit_designs_become_nan_records() {
        let space = ScenarioSpace::new()
            .with_budgets(vec![16.0])
            .clear_designs()
            .add_symmetric_grid([1.0, 16.0, 64.0]);
        let engine = Engine::new(1);
        let result = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
        assert_eq!(result.stats.scenarios, 3);
        assert_eq!(result.stats.valid, 2);
        assert!(result.records[2].speedup.is_nan());
    }

    #[test]
    fn stats_count_scenarios_and_threads() {
        let space = space();
        let engine = Engine::new(3);
        let result = engine.sweep(
            &space,
            &AnalyticBackend,
            &SweepConfig { batch_size: 8, use_cache: false },
        );
        assert_eq!(result.stats.scenarios, space.len());
        assert_eq!(result.stats.threads, 3);
        assert!(result.stats.valid > 0);
        assert!(result.stats.elapsed_seconds >= 0.0);
    }

    #[test]
    fn reconfigured_backend_does_not_read_stale_cache_entries() {
        use crate::backend::SimBackend;
        // A grid whose merge tables spill the L1 at the default operation
        // budget but not at a smaller one, so the two configurations truly
        // disagree.
        let space = ScenarioSpace::new()
            .with_apps(AppParams::table2_all())
            .clear_designs()
            .add_symmetric_grid([1.0, 2.0, 4.0]);
        let engine = Engine::new(1);
        let cached = SweepConfig { batch_size: 4, use_cache: true };
        let uncached = SweepConfig { batch_size: 4, use_cache: false };

        let big = SimBackend::new();
        let small = SimBackend::new().with_total_ops(1e5);
        let truth_small = engine.sweep(&space, &small, &uncached);
        let truth_big = engine.sweep(&space, &big, &uncached);
        assert!(
            truth_small
                .records
                .iter()
                .zip(truth_big.records.iter())
                .any(|(a, b)| a.speedup.to_bits() != b.speedup.to_bits()),
            "configurations must disagree for this test to be meaningful"
        );

        // Warm the cache with one configuration, then sweep the other: the
        // differently-configured backend must not hit the first one's salt.
        let first = engine.sweep(&space, &big, &cached);
        let second = engine.sweep(&space, &small, &cached);
        assert_eq!(second.stats.cache_hits, 0, "different config must not hit");
        for ((a, truth_a), (b, truth_b)) in first
            .records
            .iter()
            .zip(truth_big.records.iter())
            .zip(second.records.iter().zip(truth_small.records.iter()))
        {
            assert_eq!(a.speedup.to_bits(), truth_a.speedup.to_bits());
            assert_eq!(b.speedup.to_bits(), truth_b.speedup.to_bits());
        }
    }

    #[test]
    fn range_sweep_matches_the_same_slice_of_a_full_sweep_bitwise() {
        let space = space();
        let handle = SweepHandle::new(&space);
        let n = handle.len();
        let config = SweepConfig { batch_size: 16, use_cache: false };
        let engine = Engine::new(4);
        let full = engine.sweep(&space, &AnalyticBackend, &config);
        // Uneven thirds, including range boundaries that split design runs.
        let cuts = [0, n / 3 + 1, 2 * n / 3 + 5, n];
        for window in cuts.windows(2) {
            let (start, end) = (window[0], window[1]);
            let part = engine.sweep_range(&handle, &AnalyticBackend, &config, start..end);
            assert_eq!(part.stats.scenarios, end - start);
            assert_eq!(part.records.len(), end - start);
            for (record, truth) in part.records.iter().zip(&full.records[start..end]) {
                assert_eq!(record.index, truth.index, "records carry global indices");
                assert_eq!(record.speedup.to_bits(), truth.speedup.to_bits());
                assert_eq!(record.cores.to_bits(), truth.cores.to_bits());
                assert_eq!(record.area.to_bits(), truth.area.to_bits());
            }
        }
    }

    #[test]
    fn one_handle_serves_many_engines_and_warms_their_caches() {
        let space = space();
        let handle = SweepHandle::owned(space.clone());
        let config = SweepConfig { batch_size: 32, use_cache: true };
        let n = handle.len();
        // Two engines (distinct caches) share the handle; each answers its
        // second pass entirely from its own cache.
        for threads in [1usize, 2] {
            let engine = Engine::new(threads);
            let first = engine.sweep_range(&handle, &AnalyticBackend, &config, 0..n);
            assert_eq!(first.stats.warm_entries, 0, "cold cache reports no warm entries");
            let second = engine.sweep_range(&handle, &AnalyticBackend, &config, 0..n);
            assert_eq!(second.stats.cache_hits, n as u64);
            assert!(second.stats.warm_entries > 0, "warm sweep reports its warm-start budget");
            for (a, b) in first.records.iter().zip(second.records.iter()) {
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            }
        }
    }

    #[test]
    fn range_cursor_windows_tile_the_range_exactly_once() {
        let mut cursor = RangeCursor::new(3..20, 5);
        let windows: Vec<_> = std::iter::from_fn(|| cursor.next_window()).collect();
        assert_eq!(windows, vec![3..8, 8..13, 13..18, 18..20]);
        assert!(cursor.is_done());
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.next_window(), None, "exhausted cursors stay exhausted");

        let mut empty = RangeCursor::new(7..7, 4);
        assert!(empty.is_done());
        assert_eq!(empty.next_window(), None);
    }

    #[test]
    fn windowed_cursor_sweeps_are_bit_identical_to_one_shot_sweeps() {
        let space = space();
        let handle = SweepHandle::new(&space);
        let engine = Engine::new(2);
        let config = SweepConfig { batch_size: 16, use_cache: false };
        let full = engine.sweep(&space, &AnalyticBackend, &config);
        // A ragged window size that does not divide the range.
        let range = 5..handle.len() - 3;
        let mut cursor = handle.cursor(range.clone(), 37);
        let mut windowed = Vec::new();
        while let Some(window) = cursor.next_window() {
            assert_eq!(cursor.position(), window.end);
            windowed.extend(engine.sweep_range(&handle, &AnalyticBackend, &config, window).records);
        }
        assert_eq!(windowed.len(), range.len());
        for (record, truth) in windowed.iter().zip(&full.records[range]) {
            assert_eq!(record.index, truth.index);
            assert_eq!(record.speedup.to_bits(), truth.speedup.to_bits());
        }
    }

    #[test]
    fn duplicate_designs_in_a_partially_warm_batch_fill_every_slot() {
        // Two identical designs plus one already-cached design in a single
        // batch: the mixed-batch path must populate the second duplicate from
        // the value its twin just inserted, not leave the NaN placeholder.
        let engine = Engine::new(1);
        let config = SweepConfig { batch_size: 8, use_cache: true };
        let warm = ScenarioSpace::new().clear_designs().add_symmetric_grid([8.0]);
        engine.sweep(&warm, &AnalyticBackend, &config);

        let space = ScenarioSpace::new().clear_designs().add_symmetric_grid([4.0, 4.0, 8.0]);
        let result = engine.sweep(&space, &AnalyticBackend, &config);
        assert_eq!(result.stats.valid, 3, "every duplicate slot must be filled");
        assert_eq!(result.records[0].speedup.to_bits(), result.records[1].speedup.to_bits());
    }
}
