//! CLI validation tests: run the real `repro` binary and assert that bad
//! argument values fail fast, with a clear message, before any work starts.
//!
//! Regression tests for the class of bug where `--threads 0` (or an
//! overflowing / absurdly large count) was accepted by `usize::parse` and
//! only blew up — or silently misbehaved — deep inside the engine.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary runs")
}

fn assert_rejects(args: &[&str], needle: &str) {
    let output = repro(args);
    assert!(
        !output.status.success(),
        "`repro {}` should fail, got: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stdout),
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains(needle),
        "`repro {}` stderr should mention `{needle}`, got: {stderr}",
        args.join(" "),
    );
}

#[test]
fn dse_rejects_zero_and_oversized_counts() {
    assert_rejects(&["dse", "--threads", "0"], "--threads must be at least 1");
    assert_rejects(&["dse", "--threads", "1000000"], "--threads must be at most");
    assert_rejects(&["dse", "--top", "0"], "--top must be at least 1");
    assert_rejects(&["dse", "--top", "18446744073709551616"], "needs an integer");
    assert_rejects(&["dse", "--backend"], "--backend needs a value");
}

#[test]
fn calibrate_rejects_zero_and_oversized_counts() {
    assert_rejects(&["calibrate", "--threads", "0"], "--threads must be at least 1");
    assert_rejects(&["calibrate", "--threads", "99999999"], "--threads must be at most");
    assert_rejects(&["calibrate", "--top", "0"], "--top must be at least 1");
}

#[test]
fn serve_rejects_zero_shards_and_unknown_backends() {
    assert_rejects(&["serve", "--shards", "0"], "--shards must be at least 1");
    assert_rejects(&["serve", "--threads", "0"], "--threads must be at least 1");
    assert_rejects(&["serve", "--batch", "0"], "--batch must be at least 1");
    assert_rejects(&["serve", "--backend", "nope"], "unknown backend `nope`");
}

#[test]
fn load_rejects_zero_clients_and_requests() {
    assert_rejects(&["load", "--clients", "0"], "--clients must be at least 1");
    assert_rejects(&["load", "--requests", "0"], "--requests must be at least 1");
    assert_rejects(&["load", "--chunk", "0"], "--chunk must be at least 1");
    assert_rejects(&["load", "--backend", "nope"], "unknown backend `nope`");
    // --spawn launches its own server; silently ignoring a user-supplied
    // endpoint would report numbers for the wrong server.
    assert_rejects(&["load", "--spawn", "--addr", "10.0.0.1:7077"], "cannot be combined");
    assert_rejects(&["load", "--spawn", "--socket", "/tmp/x.sock"], "cannot be combined");
}

#[test]
fn unknown_experiments_and_flags_fail_with_usage() {
    assert_rejects(&["fig99"], "unknown experiment");
    assert_rejects(&["dse", "--bogus"], "unknown dse option");
    assert_rejects(&["serve", "--bogus"], "unknown serve option");
    assert_rejects(&["load", "--bogus"], "unknown load option");
}
