//! Timing-simulator benchmarks: throughput of the phase-level engine as the
//! simulated core count and program length grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mp_cmpsim::program::ReductionKind;
use mp_cmpsim::{fuzzy_program, hop_program, kmeans_program, simulate, Machine, WorkloadShape};

fn bench_simulator(c: &mut Criterion) {
    let kmeans = kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
    let fuzzy = fuzzy_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
    let hop = hop_program(&WorkloadShape::hop_default(), ReductionKind::SerialLinear, 4);

    let mut group = c.benchmark_group("cmpsim/simulate");
    for (name, program) in [("kmeans", &kmeans), ("fuzzy", &fuzzy), ("hop", &hop)] {
        for cores in [1usize, 16, 256] {
            group.bench_with_input(BenchmarkId::new(name, cores), &cores, |b, &cores| {
                let machine = Machine::table1(cores);
                b.iter(|| simulate(std::hint::black_box(program), &machine));
            });
        }
    }
    group.finish();

    // A long-running iterative program stresses the unrolled phase loop.
    let mut long = kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
    long.iterations = 2000;
    c.bench_function("cmpsim/simulate-2000-iterations", |b| {
        let machine = Machine::table1(16);
        b.iter(|| simulate(std::hint::black_box(&long), &machine));
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
