//! Merging-phase microbenchmarks (`reduce` target): the three reduction
//! strategies versus the number of partials (threads) and the number of
//! reduction elements, plus the phase-graph scheduler's instrumented
//! map-reduce path.
//!
//! This quantifies the paper's Section II-B/V-E discussion directly: the
//! serial linear merge grows with the thread count, the tree merge grows
//! logarithmically, and the privatised parallel merge keeps the computation
//! flat at the cost of touching every partial from every thread. The
//! scheduler benchmark measures what the `mp-runtime` instrumentation layer
//! adds on top of the raw fork-join + merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mp_par::reduce::{reduce_elementwise, ReductionStrategy};
use mp_runtime::{Control, PhaseExec, PhaseGraph, PhaseScheduler, PhasedWorkload};

fn make_partials(threads: usize, elements: usize) -> Vec<Vec<f64>> {
    (0..threads)
        .map(|t| (0..elements).map(|e| (t * elements + e) as f64 * 0.25).collect())
        .collect()
}

fn bench_reduction_strategies(c: &mut Criterion) {
    // The kmeans merge has C·D + C ≈ 80 elements; hop's group table is larger.
    for elements in [80usize, 2048] {
        let mut group = c.benchmark_group(format!("reduction/x={elements}"));
        for threads in [2usize, 4, 8, 16, 32] {
            let partials = make_partials(threads, elements);
            for strategy in ReductionStrategy::all() {
                group.bench_with_input(
                    BenchmarkId::new(strategy.name(), threads),
                    &threads,
                    |b, &t| {
                        b.iter(|| reduce_elementwise(std::hint::black_box(&partials), strategy, t));
                    },
                );
            }
        }
        group.finish();
    }
}

/// A minimal map-reduce phased workload: per-thread element-wise partials
/// over a slice, merged with the configured strategy.
struct MapReduce {
    items: usize,
    elements: usize,
    strategy: ReductionStrategy,
}

impl PhasedWorkload for MapReduce {
    type State = Vec<f64>;
    type Output = Vec<f64>;

    fn name(&self) -> &str {
        "bench-map-reduce"
    }

    fn graph(&self) -> PhaseGraph {
        PhaseGraph::builder(1)
            .parallel("map")
            .reduction("merge")
            .serial("store")
            .build()
            .expect("bench graph is valid")
    }

    fn init(&self, _exec: &PhaseExec<'_>) -> Vec<f64> {
        Vec::new()
    }

    fn iteration(&self, state: &mut Vec<f64>, exec: &PhaseExec<'_>, _iter: usize) -> Control {
        let elements = self.elements;
        let partials = exec.parallel("map", self.items, |_ctx, range| {
            let mut partial = vec![0.0f64; elements];
            for i in range {
                partial[i % elements] += i as f64;
            }
            partial
        });
        let (merged, _stats) = exec.reduce("merge", &partials, self.strategy);
        exec.serial("store", || *state = merged);
        Control::Break
    }

    fn finalize(&self, state: Vec<f64>, _exec: &PhaseExec<'_>) -> Vec<f64> {
        state
    }
}

fn bench_scheduler_map_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce/scheduler");
    for threads in [1usize, 4, 8] {
        let workload =
            MapReduce { items: 100_000, elements: 80, strategy: ReductionStrategy::SerialLinear };
        let scheduler = PhaseScheduler::new(threads);
        group.bench_with_input(BenchmarkId::new("instrumented", threads), &threads, |b, _| {
            b.iter(|| {
                let profiler = mp_profile::Profiler::new("bench", threads);
                scheduler.run(std::hint::black_box(&workload), &profiler)
            });
        });
        group.bench_with_input(BenchmarkId::new("uninstrumented", threads), &threads, |b, _| {
            b.iter(|| scheduler.run_uninstrumented(std::hint::black_box(&workload)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction_strategies, bench_scheduler_map_reduce);
criterion_main!(benches);
