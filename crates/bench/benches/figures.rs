//! Figure-generation benchmarks: one Criterion group per reproduced table or
//! figure, timing the full data-series generation (simulation sweeps plus
//! model evaluation). These are the `cargo bench` entry points matching the
//! experiment index in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};

use mp_bench::figures;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figures/table1", |b| b.iter(figures::table1_machine_config));
    c.bench_function("figures/fig2a", |b| b.iter(figures::fig2a_scalability));
    c.bench_function("figures/fig2b", |b| b.iter(figures::fig2b_serial_growth));
    c.bench_function("figures/fig2d", |b| b.iter(figures::fig2d_model_accuracy));
    c.bench_function("figures/table2", |b| b.iter(figures::table2_extracted_parameters));
    c.bench_function("figures/fig3", |b| b.iter(figures::fig3_scalability_prediction));
    c.bench_function("figures/table3", |b| b.iter(figures::table3_application_classes));
    c.bench_function("figures/fig4", |b| b.iter(figures::fig4_symmetric_design_space));
    c.bench_function("figures/fig5", |b| b.iter(figures::fig5_asymmetric_design_space));
    c.bench_function("figures/fig6", |b| b.iter(figures::fig6_reduction_split));
    c.bench_function("figures/fig7", |b| b.iter(figures::fig7_communication_model));
    c.bench_function("figures/table4", |b| b.iter(figures::table4_dataset_sensitivity));

    // Figure 2(c) runs the real workloads; benchmark the reduced-size variant
    // at two thread counts only so `cargo bench` stays tractable.
    let mut group = c.benchmark_group("figures/fig2c");
    group.sample_size(10);
    group
        .bench_function("reduced", |b| b.iter(|| figures::fig2c_real_serial_growth(&[1, 2], true)));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
