//! Analytical-model benchmarks: cost of evaluating the speedup expressions and
//! of the full design-space sweeps that generate Figures 3–5 and 7.

use criterion::{criterion_group, criterion_main, Criterion};

use mp_model::explore;
use mp_model::prelude::*;

fn bench_model_eval(c: &mut Criterion) {
    let budget = ChipBudget::paper_default();
    let params = AppParams::table2_kmeans();
    let model = ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
    let design = SymmetricDesign::new(budget, 4.0).unwrap();
    let comm = CommModel::paper_figure7(params).unwrap();

    c.bench_function("model/extended-symmetric-point", |b| {
        b.iter(|| model.speedup_symmetric(std::hint::black_box(&design)).unwrap())
    });

    c.bench_function("model/comm-symmetric-point", |b| {
        b.iter(|| comm.speedup_symmetric(std::hint::black_box(&design)).unwrap())
    });

    c.bench_function("model/best-symmetric-sweep", |b| {
        b.iter(|| explore::best_symmetric(&model, budget).unwrap())
    });

    c.bench_function("model/best-asymmetric-sweep", |b| {
        b.iter(|| explore::best_asymmetric(&model, budget).unwrap())
    });

    c.bench_function("model/unit-core-curve-256", |b| {
        b.iter(|| explore::unit_core_curve(&model, 256).unwrap())
    });
}

criterion_group!(benches, bench_model_eval);
criterion_main!(benches);
