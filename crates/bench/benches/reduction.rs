//! Merging-phase microbenchmarks: the three reduction strategies versus the
//! number of partials (threads) and the number of reduction elements.
//!
//! This quantifies the paper's Section II-B/V-E discussion directly: the
//! serial linear merge grows with the thread count, the tree merge grows
//! logarithmically, and the privatised parallel merge keeps the computation
//! flat at the cost of touching every partial from every thread.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mp_par::reduce::{reduce_elementwise, ReductionStrategy};

fn make_partials(threads: usize, elements: usize) -> Vec<Vec<f64>> {
    (0..threads)
        .map(|t| (0..elements).map(|e| (t * elements + e) as f64 * 0.25).collect())
        .collect()
}

fn bench_reduction_strategies(c: &mut Criterion) {
    // The kmeans merge has C·D + C ≈ 80 elements; hop's group table is larger.
    for elements in [80usize, 2048] {
        let mut group = c.benchmark_group(format!("reduction/x={elements}"));
        for threads in [2usize, 4, 8, 16, 32] {
            let partials = make_partials(threads, elements);
            for strategy in ReductionStrategy::all() {
                group.bench_with_input(
                    BenchmarkId::new(strategy.name(), threads),
                    &threads,
                    |b, &t| {
                        b.iter(|| reduce_elementwise(std::hint::black_box(&partials), strategy, t));
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_reduction_strategies);
criterion_main!(benches);
