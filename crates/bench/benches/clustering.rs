//! End-to-end clustering benchmarks across thread counts.
//!
//! This is the wall-clock analogue of the paper's Figure 2(a): the speedup of
//! kmeans, fuzzy c-means and HOP as the thread count grows. Criterion reports
//! the absolute times; dividing the single-thread time by each multi-thread
//! time reproduces the scalability curve on the benchmarking host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mp_workloads::data::DatasetSpec;
use mp_workloads::runner::{ClusteringWorkload, WorkloadKind};

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= max).collect()
}

fn bench_clustering(c: &mut Criterion) {
    // Reduced data sets keep a full criterion run in minutes; the shapes
    // (points : clusters : dims ratios) match the paper's base data sets.
    let cluster_spec = DatasetSpec::new(6000, 9, 8, 0x5EED);
    let hop_spec = DatasetSpec::new(8000, 3, 16, 0x401);

    for kind in WorkloadKind::all() {
        let job = match kind {
            WorkloadKind::KMeans => ClusteringWorkload::kmeans(cluster_spec.generate()),
            WorkloadKind::Fuzzy => ClusteringWorkload::fuzzy(cluster_spec.generate()),
            WorkloadKind::Hop => ClusteringWorkload::hop(hop_spec.generate()),
            WorkloadKind::KdTree => ClusteringWorkload::kdtree(hop_spec.generate()),
        };
        let mut group = c.benchmark_group(format!("fig2a/{}", kind.name()));
        group.sample_size(10);
        for &threads in &thread_counts() {
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
                b.iter(|| job.run_uninstrumented(t));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
